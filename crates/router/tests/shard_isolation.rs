//! Snapshot isolation across shards (extends the single-engine guarantees
//! of `crates/core/tests/ingest_isolation.rs` to the scatter-gather
//! router): while every shard ingests and publishes concurrently, a
//! cross-shard query observes **one whole published epoch per touched
//! shard** — never a torn read, never an epoch the shard's writer did not
//! publish, and per-shard epochs never go backwards between queries.

use hris::{EngineConfig, HrisParams, QueryOutcome};
use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{RouteKind, ShardPlan, ShardedEngine};
use hris_traj::{ArchiveWriter, GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};
use std::thread;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 16,
        blocks_y: 16,
        block_m: 300.0,
        seed: 31,
        ..NetworkConfig::default()
    }))
}

/// A short trip random-walking near `(x, y)` (deterministic per seed).
fn trip(x: f64, y: f64, seed: u64) -> Trajectory {
    let n = 3 + (seed % 4) as usize;
    Trajectory::new(
        TrajId(0),
        (0..n)
            .map(|i| {
                let k = (seed.wrapping_mul(2_654_435_761).wrapping_add(i as u64 * 97)) % 1000;
                GpsPoint::new(
                    Point::new(x + (k as f64 - 500.0), y + ((k / 7) as f64 - 70.0)),
                    i as f64 * 45.0,
                )
            })
            .collect(),
    )
}

#[test]
fn cross_shard_queries_observe_whole_epochs_per_shard() {
    let net = net();
    let params = HrisParams::default();
    // Margin φ + 900: seam-straddling pairs are partition-respecting, so
    // the seam query below reliably scatters across both shards.
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 900.0);
    let seam_x = plan.core(0).max.x;
    let cy = plan.bounds().center().y;

    let mut writers: Vec<ArchiveWriter> = (0..2)
        .map(|_| ArchiveWriter::new(TrajectoryArchive::empty()))
        .collect();
    let readers = writers.iter().map(ArchiveWriter::reader).collect();
    let engine = Arc::new(ShardedEngine::live(
        Arc::clone(&net),
        readers,
        params,
        EngineConfig::default(),
        plan,
    ));

    // Every epoch each shard's writer actually publishes, with its size
    // (epoch 0 is the initial empty archive).
    let published: Arc<Vec<Mutex<HashMap<u64, usize>>>> = Arc::new(
        (0..2)
            .map(|_| Mutex::new(HashMap::from([(0u64, 0usize)])))
            .collect(),
    );
    // One ingest thread per shard: append near the shard's side of the
    // seam, publish, record the published epoch.
    let mut threads = Vec::new();
    for (s, mut writer) in writers.drain(..).enumerate() {
        let published = Arc::clone(&published);
        let x = if s == 0 {
            seam_x - 2_000.0
        } else {
            seam_x + 2_000.0
        };
        threads.push(thread::spawn(move || {
            for round in 0..60u64 {
                writer
                    .append(trip(x, cy, s as u64 * 1_000 + round))
                    .unwrap();
                let snap = writer.publish();
                published[s]
                    .lock()
                    .unwrap()
                    .insert(snap.epoch(), snap.num_trajectories());
                thread::yield_now();
            }
        }));
    }

    // Seam query: pairs straddle the seam within the margin slack, so the
    // router scatters it across both shards every time.
    let q = Trajectory::new(
        TrajId(99),
        [
            seam_x - 1_200.0,
            seam_x - 500.0,
            seam_x + 500.0,
            seam_x + 1_200.0,
        ]
        .iter()
        .enumerate()
        .map(|(i, &x)| GpsPoint::new(Point::new(x, cy), i as f64 * 130.0))
        .collect(),
    );

    // Observations: (shard, epoch) per query, checked after the writers
    // finish (the published maps only grow, so membership is stable).
    let mut observations: Vec<Vec<(usize, u64)>> = Vec::new();
    let mut last_epoch = [0u64; 2];
    for _ in 0..50 {
        let (r, trace) = engine.infer_query_traced(&q, 2);
        assert!(
            matches!(
                r.outcome,
                QueryOutcome::Ok | QueryOutcome::Repaired { .. } | QueryOutcome::Degraded { .. }
            ),
            "live sharded query failed mid-ingest: {:?}",
            r.outcome
        );
        assert_eq!(trace.kind, RouteKind::Scatter, "seam query must scatter");

        // Exactly one epoch per touched shard — the no-torn-read contract.
        let touched: HashSet<usize> = trace.pair_shards.iter().copied().collect();
        assert_eq!(trace.epochs.len(), touched.len(), "one epoch per shard");
        for &(s, e) in &trace.epochs {
            assert!(touched.contains(&s));
            assert!(
                e >= last_epoch[s],
                "shard {s}: epoch went backwards ({e} after {})",
                last_epoch[s]
            );
            last_epoch[s] = e;
        }
        observations.push(trace.epochs);
        thread::yield_now();
    }
    for t in threads {
        t.join().expect("ingest thread panicked");
    }

    // Every epoch any query observed is one its shard's writer published.
    assert!(!observations.is_empty());
    for epochs in &observations {
        for &(s, e) in epochs {
            assert!(
                published[s].lock().unwrap().contains_key(&e),
                "shard {s}: query observed unpublished epoch {e}"
            );
        }
    }
    // Both shards were exercised beyond their initial epoch.
    assert!(
        last_epoch.iter().all(|&e| e > 0),
        "ingest advanced both shards"
    );
}
