//! Router fault-injection suite: shard faults must surface as
//! [`QueryOutcome::Degraded`] or [`QueryOutcome::Rejected`] — never a
//! panic, and never a silently wrong answer from a *healthy* shard.
//!
//! Covers: the 100-case seeded dirty-query corpus routed through a sharded
//! engine, administrative shard quarantine (the corrupt-archive path: a
//! tolerant load that drops records flags the shard), staleness-based
//! auto-quarantine of live shards, and total unavailability.

use hris::{EngineConfig, EngineHandle, HrisParams, QueryOutcome, RejectReason};
use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{RouteKind, ShardHealth, ShardPlan, ShardedEngine};
use hris_traj::{
    encode_trips, fault_corpus, resample_to_interval, ArchiveWriter, FaultInjector, GpsPoint,
    SimConfig, Simulator, TolerantLoadOptions, TrajId, Trajectory, TrajectoryArchive,
};
use std::sync::Arc;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 16,
        blocks_y: 16,
        block_m: 300.0,
        seed: 23,
        ..NetworkConfig::default()
    }))
}

fn scenario(net: &RoadNetwork) -> (TrajectoryArchive, Vec<Trajectory>) {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 120,
            num_od_patterns: 9,
            min_trip_dist_m: 600.0,
            seed: 14,
            ..SimConfig::default()
        },
    );
    let (archive, routes) = sim.generate_archive();
    let mut queries = Vec::new();
    for (i, r) in routes.iter().step_by(routes.len() / 4).take(4).enumerate() {
        let pts = hris_traj::simulator::drive_route(net, r, 0.0, 20.0, 0.8).unwrap();
        queries.push(resample_to_interval(
            &Trajectory::new(TrajId(i as u32), pts),
            240.0,
        ));
    }
    (archive, queries)
}

fn sharded(
    net: &Arc<RoadNetwork>,
    archive: &TrajectoryArchive,
    nx: usize,
    ny: usize,
) -> ShardedEngine {
    let params = HrisParams::default();
    let plan = ShardPlan::grid(net, nx, ny, params.phi_m);
    ShardedEngine::build(
        Arc::clone(net),
        archive,
        params,
        EngineConfig::default(),
        plan,
    )
}

/// A 4-point query confined to shard `s`'s core cell.
fn query_in_core(engine: &ShardedEngine, s: usize, id: u32) -> Trajectory {
    let c = engine.plan().core(s);
    let cx = c.center().x;
    let cy = c.center().y;
    let r = 0.3 * c.width().min(c.height());
    Trajectory::new(
        TrajId(id),
        (0..4)
            .map(|i| {
                GpsPoint::new(
                    Point::new(cx - r + i as f64 * (2.0 * r / 3.0), cy + i as f64 * 30.0),
                    i as f64 * 120.0,
                )
            })
            .collect(),
    )
}

/// The 100-case dirty-query corpus through a 2×2 sharded engine: a verdict
/// for every case, no panics, deterministic on a re-run, and every query
/// the router delegates single-shard is byte-identical to the global
/// engine even under fault load.
#[test]
fn hundred_case_fault_corpus_through_router() {
    let net = net();
    let (archive, clean) = scenario(&net);
    let engine = sharded(&net, &archive, 2, 2);
    let global = EngineHandle::new(Arc::clone(&net), archive.clone(), HrisParams::default());

    let corpus = fault_corpus(42, &clean, 100);
    assert_eq!(corpus.len(), 100);

    let mut labels = Vec::new();
    for (kind, q) in &corpus {
        let (r, trace) = engine.infer_query_traced(q, 3);
        labels.push(r.outcome.label());
        if *kind == hris_traj::FaultKind::Empty {
            assert_eq!(
                r.outcome,
                QueryOutcome::Rejected {
                    reason: RejectReason::EmptyQuery
                }
            );
        }
        if matches!(r.outcome, QueryOutcome::Rejected { .. }) {
            assert!(r.globals.is_empty() && r.stats.is_empty());
        }
        // Single-shard dispatches answer exactly like the global engine,
        // dirty input or not (the shard re-runs the same repair ladder).
        if let RouteKind::Single(_) = trace.kind {
            let want = global.infer_query(q, 3);
            assert_eq!(r.outcome, want.outcome, "single-shard outcome parity");
            assert_eq!(r.globals.len(), want.globals.len());
            for (a, b) in r.globals.iter().zip(&want.globals) {
                assert_eq!(a.route, b.route);
                assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
            }
        }
    }

    // Fixed seed → identical outcome labels on a fresh engine.
    let engine2 = sharded(&net, &archive, 2, 2);
    let labels2: Vec<_> = corpus
        .iter()
        .map(|(_, q)| engine2.infer_query(q, 3).outcome.label())
        .collect();
    assert_eq!(labels, labels2, "fault corpus is deterministic");
}

/// Quarantining one shard degrades its queries (labelled, not silent) and
/// leaves the other shards' answers bit-for-bit untouched; quarantining
/// every shard rejects with `ShardUnavailable`; recovery restores the
/// original answers exactly.
#[test]
fn unhealthy_shard_degrades_and_healthy_shards_are_untouched() {
    let net = net();
    let (archive, _) = scenario(&net);
    let engine = sharded(&net, &archive, 2, 1);

    let q0 = query_in_core(&engine, 0, 900);
    let q1 = query_in_core(&engine, 1, 901);
    let base0 = engine.infer_query(&q0, 3);
    let base1 = engine.infer_query(&q1, 3);

    engine.set_shard_health(0, ShardHealth::Unhealthy);
    assert!(!engine.shard_is_servable(0));

    // Shard-0 queries still answer — served elsewhere, demoted to Degraded.
    let (deg, trace) = engine.infer_query_traced(&q0, 3);
    match deg.outcome {
        QueryOutcome::Degraded {
            pairs_fell_back, ..
        } => assert!(pairs_fell_back > 0, "rerouted pairs are accounted"),
        other => panic!("expected Degraded under shard fault, got {other:?}"),
    }
    assert_eq!(
        trace.kind,
        RouteKind::Single(1),
        "rerouted to the healthy shard"
    );

    // The healthy shard's answers are byte-identical to before the fault.
    let still1 = engine.infer_query(&q1, 3);
    assert_eq!(still1.outcome, base1.outcome);
    assert_eq!(still1.globals.len(), base1.globals.len());
    for (a, b) in still1.globals.iter().zip(&base1.globals) {
        assert_eq!(a.route, b.route);
        assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
    }

    // No healthy shard left → explicit rejection, not a wrong answer.
    engine.set_shard_health(1, ShardHealth::Unhealthy);
    let down = engine.infer_query(&q0, 3);
    assert_eq!(
        down.outcome,
        QueryOutcome::Rejected {
            reason: RejectReason::ShardUnavailable
        }
    );
    assert!(down.globals.is_empty());

    // Recovery restores byte-identical service.
    engine.set_shard_health(0, ShardHealth::Healthy);
    engine.set_shard_health(1, ShardHealth::Healthy);
    let back0 = engine.infer_query(&q0, 3);
    assert_eq!(back0.outcome, base0.outcome);
    assert_eq!(back0.globals.len(), base0.globals.len());
    for (a, b) in back0.globals.iter().zip(&base0.globals) {
        assert_eq!(a.route, b.route);
        assert_eq!(a.log_score.to_bits(), b.log_score.to_bits());
    }
}

/// The corrupt-archive path end-to-end: a shard whose archive blob was
/// truncated in transit loads tolerantly with dropped records; the load
/// report drives quarantine, and the router degrades instead of serving
/// the incomplete shard.
#[test]
fn truncated_archive_blob_quarantines_the_shard() {
    let net = net();
    let (archive, _) = scenario(&net);
    let engine = sharded(&net, &archive, 2, 1);

    // Simulate shard 0's archive segment arriving truncated.
    let trips: Vec<Trajectory> = archive.trajectories().to_vec();
    let blob = encode_trips(&trips);
    let truncated = FaultInjector::new(7).truncate_blob(&blob);
    let (partial, report) =
        TrajectoryArchive::from_bytes_tolerant(truncated, &TolerantLoadOptions::default());
    let lossy = report.truncated
        || report.trajectories_quarantined > 0
        || partial.num_trajectories() < trips.len();
    assert!(
        lossy,
        "truncation must lose data for this test to be meaningful"
    );

    // Operator policy: a lossy load quarantines the shard.
    engine.set_shard_health(0, ShardHealth::Unhealthy);

    let q0 = query_in_core(&engine, 0, 902);
    let r = engine.infer_query(&q0, 3);
    assert!(
        matches!(
            r.outcome,
            QueryOutcome::Degraded { .. } | QueryOutcome::Rejected { .. }
        ),
        "faulted shard must degrade or reject, got {:?}",
        r.outcome
    );
}

/// Live shards whose snapshot exceeds the staleness bound are auto-excluded
/// from routing: queries degrade to fresh shards, and once every shard is
/// stale the router rejects rather than serving stale data.
#[test]
fn stale_live_shards_auto_degrade_then_reject() {
    let net = net();
    let params = HrisParams::default();
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m);
    let cfg = EngineConfig::builder()
        .staleness_bound_s(0.005)
        .build()
        .expect("valid config");

    let writer0 = ArchiveWriter::new(TrajectoryArchive::empty());
    let mut writer1 = ArchiveWriter::new(TrajectoryArchive::empty());
    let engine = ShardedEngine::live(
        Arc::clone(&net),
        vec![writer0.reader(), writer1.reader()],
        params,
        cfg,
        plan,
    );

    // Both snapshots age past the 5 ms bound.
    std::thread::sleep(std::time::Duration::from_millis(25));
    let q0 = query_in_core(&engine, 0, 903);
    assert!(!engine.shard_is_servable(0), "stale shard is not servable");
    let r = engine.infer_query(&q0, 3);
    assert_eq!(
        r.outcome,
        QueryOutcome::Rejected {
            reason: RejectReason::ShardUnavailable
        },
        "all shards stale → explicit rejection"
    );

    // Shard 1 publishes fresh data → it takes the traffic, degraded.
    // (A publish with nothing appended is a no-op, so append one trip.)
    writer1
        .append(Trajectory::new(
            TrajId(1),
            vec![
                GpsPoint::new(Point::new(100.0, 100.0), 0.0),
                GpsPoint::new(Point::new(400.0, 120.0), 60.0),
            ],
        ))
        .unwrap();
    writer1.publish();
    assert!(engine.shard_is_servable(1));
    let (r2, trace) = engine.infer_query_traced(&q0, 3);
    assert_eq!(
        trace.kind,
        RouteKind::Single(1),
        "rerouted to the fresh shard"
    );
    assert!(
        matches!(r2.outcome, QueryOutcome::Degraded { .. }),
        "stale-shard traffic is served degraded, got {:?}",
        r2.outcome
    );
}
