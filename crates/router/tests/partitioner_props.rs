//! Property tests pinning the partitioner invariants the sharded engine's
//! byte-identity argument rests on (DESIGN.md §5i):
//!
//! * **unique ownership** — segments and trajectories each have exactly one
//!   owning shard, and the owned sets partition the whole;
//! * **the documented replication rule, exactly** — shard `s` stores
//!   trajectory `t` iff `s` owns `t` or `region(s)` intersects `t`'s bbox,
//!   with strictly-increasing id maps and exact replica accounting;
//! * **coverage** — cores tile the bounds, every point lands in its own
//!   core, and a shard's extracted sub-network has no orphan nodes;
//! * **determinism** — the same inputs produce bit-identical plans and
//!   partitions.

use hris_geo::Point;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork, SegmentId};
use hris_router::ShardPlan;
use hris_traj::{partition_archive, GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

/// One shared mid-size network (~4.8 km square) for every case: the
/// properties vary the grid and margin, not the graph.
fn net() -> &'static RoadNetwork {
    static NET: OnceLock<RoadNetwork> = OnceLock::new();
    NET.get_or_init(|| {
        generator::generate(&NetworkConfig {
            blocks_x: 16,
            blocks_y: 16,
            block_m: 300.0,
            seed: 47,
            ..NetworkConfig::default()
        })
    })
}

/// A seeded archive of random-walk trajectories over the network extent,
/// including a few that wander past the boundary (the clamp/nearest-core
/// paths must hold for those too).
fn random_archive(seed: u64, n: usize) -> TrajectoryArchive {
    let b = net().bbox();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let trips = (0..n)
        .map(|i| {
            let mut x: f64 = b.min.x + rng.gen_range(0.0..1.0) * b.width();
            let mut y: f64 = b.min.y + rng.gen_range(0.0..1.0) * b.height();
            let pts = (0..2 + rng.gen_range(0usize..5))
                .map(|k| {
                    x += rng.gen_range(-400.0..400.0);
                    y += rng.gen_range(-400.0..400.0);
                    // Allow a 1 km overhang beyond the network bounds.
                    x = x.clamp(b.min.x - 1_000.0, b.max.x + 1_000.0);
                    y = y.clamp(b.min.y - 1_000.0, b.max.y + 1_000.0);
                    GpsPoint::new(Point::new(x, y), k as f64 * 30.0)
                })
                .collect();
            Trajectory::new(TrajId(i as u32), pts)
        })
        .collect();
    TrajectoryArchive::new(trips)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Segment ownership is a partition: every segment owned exactly once,
    /// owner == the cell holding its bbox center, and owned ⊆ replicated.
    #[test]
    fn segment_ownership_is_a_partition(
        nx in 1usize..5,
        ny in 1usize..5,
        margin in 0.0f64..900.0,
    ) {
        let net = net();
        let plan = ShardPlan::grid(net, nx, ny, margin);

        let mut owner_count = vec![0usize; net.num_segments()];
        for s in 0..plan.num_shards() {
            let owned = plan.owned_segments(s);
            prop_assert!(owned.windows(2).all(|w| w[0] < w[1]), "owned ids ascend");
            for &id in owned {
                owner_count[id.index()] += 1;
                prop_assert_eq!(plan.segment_owner(id), s);
                prop_assert!(
                    plan.replicated_segments(s).binary_search(&id).is_ok(),
                    "owner replicates its own segment"
                );
            }
        }
        prop_assert!(owner_count.iter().all(|&c| c == 1), "each segment owned once");

        // Owner is exactly the cell of the segment's bbox center.
        for seg in net.segments() {
            let c = seg.geometry.bbox().center();
            prop_assert_eq!(plan.segment_owner(seg.id), plan.shard_of_point(c));
        }
    }

    /// A shard replicates a segment iff its region intersects the segment's
    /// bbox — no more, no less — and every segment is replicated somewhere.
    #[test]
    fn segment_replication_matches_the_documented_rule(
        nx in 1usize..5,
        ny in 1usize..4,
        margin in 0.0f64..900.0,
    ) {
        let net = net();
        let plan = ShardPlan::grid(net, nx, ny, margin);
        let mut replicated_anywhere = vec![false; net.num_segments()];
        for s in 0..plan.num_shards() {
            let region = plan.region(s);
            let have: Vec<SegmentId> = plan.replicated_segments(s).to_vec();
            prop_assert!(have.windows(2).all(|w| w[0] < w[1]), "replicated ids ascend");
            let want: Vec<SegmentId> = net
                .segments()
                .iter()
                .filter(|seg| region.intersects(&seg.geometry.bbox()))
                .map(|seg| seg.id)
                .collect();
            prop_assert_eq!(have, want, "replication rule for shard {}", s);
            for &id in plan.replicated_segments(s) {
                replicated_anywhere[id.index()] = true;
            }
        }
        prop_assert!(replicated_anywhere.into_iter().all(|b| b));
    }

    /// Archive partitioning obeys the documented storage rule exactly:
    /// shard `s` stores `t` iff `s` owns `t` or `region(s)` intersects
    /// `t.bbox()`; id maps are strictly increasing renumberings; the
    /// replica count is exact.
    #[test]
    fn archive_partition_matches_the_documented_rule(
        nx in 1usize..5,
        ny in 1usize..4,
        margin in 0.0f64..900.0,
        seed in 0u64..1_000,
    ) {
        let net = net();
        let plan = ShardPlan::grid(net, nx, ny, margin);
        let archive = random_archive(seed, 60);
        let part = partition_archive(&archive, plan.cores(), plan.margin_m());

        prop_assert_eq!(part.shards.len(), plan.num_shards());
        prop_assert_eq!(part.owners.len(), archive.num_trajectories());

        // Ownership: the first core containing the first point, else the
        // nearest core (ties to the lowest index).
        for (t, traj) in archive.trajectories().iter().enumerate() {
            let p = traj.points[0].pos;
            let want = (0..plan.num_shards())
                .find(|&s| plan.core(s).contains_point(p))
                .unwrap_or_else(|| {
                    (0..plan.num_shards())
                        .min_by(|&a, &b| {
                            plan.core(a)
                                .min_dist(p)
                                .partial_cmp(&plan.core(b).min_dist(p))
                                .unwrap()
                        })
                        .unwrap()
                });
            prop_assert_eq!(part.owners[t], want, "owner of trajectory {}", t);
        }

        // Storage: exactly owner-or-region-intersects, order-preserving.
        let mut replicas = 0usize;
        for s in 0..plan.num_shards() {
            let map = &part.id_maps[s];
            prop_assert!(map.windows(2).all(|w| w[0] < w[1]), "id map ascends");
            prop_assert_eq!(part.shards[s].num_trajectories(), map.len());
            let region = plan.region(s);
            let want: Vec<TrajId> = archive
                .trajectories()
                .iter()
                .enumerate()
                .filter(|(t, traj)| part.owners[*t] == s || region.intersects(&traj.bbox()))
                .map(|(_, traj)| traj.id)
                .collect();
            prop_assert_eq!(map.clone(), want, "storage rule for shard {}", s);
            // The shard archive holds the same trajectories in the same
            // order, renumbered densely (the id map is the translation).
            for (local, traj) in part.shards[s].trajectories().iter().enumerate() {
                prop_assert_eq!(traj.id, TrajId(local as u32));
                let parent = &archive.trajectories()[map[local].index()];
                prop_assert_eq!(traj.points.len(), parent.points.len());
                prop_assert_eq!(traj.points[0].pos, parent.points[0].pos);
            }
            replicas += map.len();
        }
        prop_assert_eq!(replicas, part.replicas, "replica accounting is exact");
        prop_assert!(part.replicas >= archive.num_trajectories());
    }

    /// Coverage: cores tile the bounds with bit-exact shared edges, every
    /// sampled point lands inside the core `shard_of_point` names, and the
    /// sub-network extracted from any shard's replicated set has no orphan
    /// nodes.
    #[test]
    fn coverage_and_no_orphan_nodes(
        nx in 1usize..5,
        ny in 1usize..5,
        margin in 0.0f64..900.0,
        gx in 0.0f64..1.0,
        gy in 0.0f64..1.0,
    ) {
        let net = net();
        let plan = ShardPlan::grid(net, nx, ny, margin);
        let b = plan.bounds();

        // Cores tile: outer edges exact, row/column seams shared bit-for-bit.
        prop_assert_eq!(plan.core(0).min.x.to_bits(), b.min.x.to_bits());
        prop_assert_eq!(
            plan.core(plan.num_shards() - 1).max.y.to_bits(),
            b.max.y.to_bits()
        );
        for j in 0..ny {
            for i in 0..nx.saturating_sub(1) {
                let left = plan.core(j * nx + i);
                let right = plan.core(j * nx + i + 1);
                prop_assert_eq!(left.max.x.to_bits(), right.min.x.to_bits());
            }
        }

        // Any in-bounds point belongs to the core that claims it.
        let p = Point::new(b.min.x + gx * b.width(), b.min.y + gy * b.height());
        let s = plan.shard_of_point(p);
        prop_assert!(plan.core(s).contains_point(p));
        // Out-of-bounds points clamp to a valid shard instead of panicking.
        prop_assert!(plan.shard_of_point(Point::new(b.max.x + 1e7, f64::NEG_INFINITY)) < plan.num_shards());

        // Every node of the full network is covered by the region of the
        // shard its position maps to (regions ⊇ cores).
        let home = plan.shard_of_point(net.node(hris_roadnet::NodeId(0)));
        prop_assert!(plan.region(home).inflated(1e-9).contains_point(net.node(hris_roadnet::NodeId(0))));

        // Shard-local sub-networks are self-contained: no orphan nodes.
        let sub = net.extract_subnetwork(plan.replicated_segments(s));
        let mut incident = vec![false; sub.net.num_nodes()];
        for seg in sub.net.segments() {
            incident[seg.from.index()] = true;
            incident[seg.to.index()] = true;
        }
        prop_assert!(incident.into_iter().all(|x| x), "no orphan nodes in shard {}", s);
    }

    /// Determinism: the same network, grid and margin produce an identical
    /// plan, and the same archive partitions identically — there is no
    /// hidden iteration-order or randomness dependence.
    #[test]
    fn plans_and_partitions_are_deterministic(
        nx in 1usize..5,
        ny in 1usize..4,
        margin in 0.0f64..900.0,
        seed in 0u64..1_000,
    ) {
        let net = net();
        let a = ShardPlan::grid(net, nx, ny, margin);
        let b = ShardPlan::grid(net, nx, ny, margin);
        prop_assert_eq!(&a, &b);

        let archive = random_archive(seed, 40);
        let pa = partition_archive(&archive, a.cores(), a.margin_m());
        let pb = partition_archive(&archive, b.cores(), b.margin_m());
        prop_assert_eq!(&pa.id_maps, &pb.id_maps);
        prop_assert_eq!(&pa.owners, &pb.owners);
        prop_assert_eq!(pa.replicas, pb.replicas);
        for (x, y) in pa.shards.iter().zip(&pb.shards) {
            prop_assert_eq!(x.num_trajectories(), y.num_trajectories());
            for (t, u) in x.trajectories().iter().zip(y.trajectories()) {
                prop_assert_eq!(t.id, u.id);
                prop_assert_eq!(t.points.len(), u.points.len());
            }
        }
    }
}

/// The deterministic capstone: a 3×2 plan over the shared network has the
/// exact replication superset structure the docs promise (owned ⊆
/// replicated per shard, union of replicated = all segments).
#[test]
fn owned_is_a_subset_of_replicated_everywhere() {
    let net = net();
    let plan = ShardPlan::grid(net, 3, 2, 500.0);
    let mut covered = vec![false; net.num_segments()];
    for s in 0..plan.num_shards() {
        for &id in plan.owned_segments(s) {
            assert!(plan.replicated_segments(s).binary_search(&id).is_ok());
        }
        for &id in plan.replicated_segments(s) {
            covered[id.index()] = true;
        }
    }
    assert!(
        covered.into_iter().all(|b| b),
        "replication covers every segment"
    );
}
