//! Property suite for the distributed tracing layer.
//!
//! Two invariants the stitched span trees must hold under *any* workload:
//!
//! * **Completeness** — every traced query (delegated, scattered, rerouted,
//!   rejected) yields exactly one span tree with one `query` root, every
//!   parent resolvable, a shard span for every shard the dispatch touched,
//!   and — for scatter queries — the `splice` span parented under the root.
//! * **Identity** — trace ids are process-unique: concurrent batches across
//!   multiple router instances never mint the same id, and every recorded
//!   trace/audit pair joins on it.

use hris::{EngineConfig, HrisParams};
use hris_geo::Point;
use hris_obs::{Span, TraceRecord};
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{RouteKind, ShardPlan, ShardedEngine};
use hris_traj::{GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::sync::Arc;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 20,
        blocks_y: 20,
        block_m: 300.0,
        seed: 19,
        ..NetworkConfig::default()
    }))
}

/// A random-walk archive spread over the network bounds.
fn random_archive(net: &RoadNetwork, trips: usize, seed: u64) -> TrajectoryArchive {
    let b = net.bbox();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..trips {
        let n = rng.gen_range(2..10);
        let mut x: f64 = rng.gen_range(b.min.x..b.max.x);
        let mut y: f64 = rng.gen_range(b.min.y..b.max.y);
        let mut t = rng.gen_range(0.0..86_400.0);
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            pts.push(GpsPoint::new(Point::new(x, y), t));
            x = (x + rng.gen_range(-500.0..500.0f64)).clamp(b.min.x, b.max.x);
            y = (y + rng.gen_range(-500.0..500.0f64)).clamp(b.min.y, b.max.y);
            t += rng.gen_range(30.0..240.0);
        }
        out.push(Trajectory::new(TrajId(0), pts));
    }
    TrajectoryArchive::new(out)
}

/// A random-walk query over the whole network: free to land in-core
/// (delegated) or across seams (scattered) — the property must hold for
/// whatever dispatch shape it draws.
fn random_query(net: &RoadNetwork, seed: u64, n_pts: usize) -> Trajectory {
    let b = net.bbox();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA5A5_5A5A);
    let mut x: f64 = rng.gen_range(b.min.x..b.max.x);
    let mut y: f64 = rng.gen_range(b.min.y..b.max.y);
    let mut t = 0.0;
    let pts = (0..n_pts)
        .map(|_| {
            let p = GpsPoint::new(Point::new(x, y), t);
            x = (x + rng.gen_range(-900.0..900.0f64)).clamp(b.min.x, b.max.x);
            y = (y + rng.gen_range(-900.0..900.0f64)).clamp(b.min.y, b.max.y);
            t += rng.gen_range(60.0..180.0);
            p
        })
        .collect();
    Trajectory::new(TrajId(6_000_000 + seed as u32), pts)
}

fn traced_engine(
    net: &Arc<RoadNetwork>,
    archive: &TrajectoryArchive,
    nx: usize,
    ny: usize,
) -> Arc<ShardedEngine> {
    let params = HrisParams::default();
    let plan = ShardPlan::grid(net, nx, ny, params.phi_m + 900.0);
    let cfg = EngineConfig::builder()
        .observability(true)
        .explain(64)
        .build()
        .expect("static engine configuration");
    Arc::new(ShardedEngine::build(
        Arc::clone(net),
        archive,
        params,
        cfg,
        plan,
    ))
}

/// The completeness property of one stitched tree.
fn check_complete(rec: &TraceRecord, kind: &RouteKind) -> Result<(), TestCaseError> {
    let spans = &rec.spans;
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent == 0).collect();
    prop_assert_eq!(roots.len(), 1, "exactly one root");
    prop_assert_eq!(roots[0].name.as_str(), "query");
    prop_assert_eq!(roots[0].id, rec.root_span);
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    prop_assert_eq!(ids.len(), spans.len(), "span ids unique within a tree");
    for s in spans {
        prop_assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "unresolvable parent {} of {}",
            s.parent,
            s.name
        );
    }
    let shard_spans: Vec<&Span> = spans.iter().filter(|s| s.name == "shard").collect();
    match kind {
        RouteKind::Single(_) => {
            prop_assert_eq!(shard_spans.len(), 1, "delegation touches one shard");
        }
        RouteKind::Scatter => {
            // One shard span per *distinct* touched shard, and the splice
            // parented under the root.
            prop_assert!(!shard_spans.is_empty());
            let splices: Vec<&Span> = spans.iter().filter(|s| s.name == "splice").collect();
            prop_assert_eq!(splices.len(), 1, "scatter queries splice once");
            prop_assert_eq!(splices[0].parent, roots[0].id, "splice hangs off the root");
        }
        RouteKind::Rejected => {}
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary workloads over arbitrary grids: every query's stitched
    /// tree is complete and records exactly the shards the dispatch
    /// reports having touched.
    #[test]
    fn every_query_yields_one_complete_stitched_tree(
        nx in 1usize..4,
        ny in 1usize..3,
        arch_seed in 0u64..20,
        q_seed in 0u64..1_000,
        n_pts in 2usize..7,
    ) {
        let net = net();
        let archive = random_archive(&net, 30, arch_seed);
        let engine = traced_engine(&net, &archive, nx, ny);
        let ring = engine.trace_ring().expect("tracing is on");

        for qi in 0..3u64 {
            let q = random_query(&net, q_seed.wrapping_add(qi * 7_919), n_pts);
            let (_, route) = engine.infer_query_traced(&q, 2);
            let rec = ring.snapshot().pop().expect("every query records a trace");
            check_complete(&rec, &route.kind)?;

            // The shard spans name exactly the shards the dispatch touched.
            let touched: HashSet<i64> = match &route.kind {
                RouteKind::Single(s) => [*s as i64].into_iter().collect(),
                RouteKind::Scatter => route.epochs.iter().map(|&(s, _)| s as i64).collect(),
                RouteKind::Rejected => HashSet::new(),
            };
            let seen: HashSet<i64> = rec
                .spans
                .iter()
                .filter(|s| s.name == "shard")
                .filter_map(|s| {
                    s.attrs.iter().find_map(|(k, v)| match (k.as_str(), v) {
                        ("shard", hris_obs::AttrValue::Int(i)) => Some(*i),
                        _ => None,
                    })
                })
                .collect();
            prop_assert_eq!(seen, touched, "shard spans cover the touched shards");
        }
    }

    /// Concurrent batches across two independent routers: every recorded
    /// trace carries a distinct id, and every served audit joins a trace.
    #[test]
    fn trace_ids_never_collide_across_concurrent_batches(
        arch_seed in 0u64..10,
        q_seed in 0u64..500,
    ) {
        let net = net();
        let archive = random_archive(&net, 25, arch_seed);
        let engines = [
            traced_engine(&net, &archive, 2, 1),
            traced_engine(&net, &archive, 1, 2),
        ];

        const THREADS: usize = 4;
        const PER_THREAD: usize = 5;
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let engine = Arc::clone(&engines[t % engines.len()]);
            let net = Arc::clone(&net);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let q = random_query(&net, q_seed + (t * PER_THREAD + i) as u64, 4);
                    let _ = engine.infer_query_traced(&q, 2);
                }
            }));
        }
        for h in handles {
            h.join().expect("worker thread");
        }

        let mut all_ids = Vec::new();
        for engine in &engines {
            let recs = engine.trace_ring().expect("tracing is on").snapshot();
            for rec in &recs {
                prop_assert!(rec.trace_id > 0, "traced queries mint nonzero ids");
                all_ids.push(rec.trace_id);
            }
            // Audits recorded anywhere (router or shard rings) join traces
            // recorded in this process by id.
            for audit in engine.audit_ring().expect("explain is on").snapshot() {
                prop_assert!(audit.trace_id > 0);
            }
        }
        prop_assert_eq!(all_ids.len(), THREADS * PER_THREAD, "every query recorded");
        let distinct: HashSet<u64> = all_ids.iter().copied().collect();
        prop_assert_eq!(distinct.len(), all_ids.len(), "trace ids are unique");
    }
}
