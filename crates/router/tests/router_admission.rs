//! Admission control at the router: routed traffic is gated *before*
//! scatter (shards are pinned below `infer_query`, so the router gate is
//! the admission point), sheds surface as `Rejected { Overloaded }`, and
//! the router's own `hris_engine_shed_total` copy shows up in the
//! federated metrics snapshot alongside the shard-labelled engine copies.

use hris::{EngineConfig, HrisParams, QueryOutcome, RejectReason};
use hris_geo::Point;
use hris_obs::Admission;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{ShardPlan, ShardedEngine};
use hris_traj::{GpsPoint, TrajId, Trajectory, TrajectoryArchive};
use std::sync::Arc;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 12,
        blocks_y: 12,
        block_m: 300.0,
        seed: 9,
        ..NetworkConfig::default()
    }))
}

fn query() -> Trajectory {
    Trajectory::new(
        TrajId(0),
        (0..4)
            .map(|i| GpsPoint::new(Point::new(400.0 + i as f64 * 350.0, 500.0), i as f64 * 60.0))
            .collect(),
    )
}

#[test]
fn router_gate_sheds_routed_traffic_and_federates_the_counter() {
    let net = net();
    let params = HrisParams::default();
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 600.0);
    let cfg = EngineConfig::builder()
        .observability(true)
        .admission(1, 0)
        .build()
        .unwrap();
    let engine = ShardedEngine::build(
        Arc::clone(&net),
        &TrajectoryArchive::empty(),
        params,
        cfg,
        plan,
    );

    let gate = engine.admission_gate().expect("router gate configured");
    let permit = match gate.admit() {
        Admission::Admitted(p) => p,
        Admission::Shed => panic!("idle gate must admit"),
    };

    let (result, trace) = engine.infer_query_traced(&query(), 2);
    assert!(
        matches!(
            result.outcome,
            QueryOutcome::Rejected {
                reason: RejectReason::Overloaded
            }
        ),
        "router must shed while its gate is full, got {:?}",
        result.outcome
    );
    assert!(result.globals.is_empty());
    assert!(
        trace.epochs.is_empty(),
        "a shed query must not scatter to any shard"
    );

    // The unlabelled router copy federates next to the shard copies.
    let snap = engine.metrics_snapshot();
    assert_eq!(snap.counter("hris_engine_shed_total"), Some(1));

    // Slot freed: routed traffic flows again and the counter is stable.
    drop(permit);
    let (ok, _) = engine.infer_query_traced(&query(), 2);
    assert!(!matches!(
        ok.outcome,
        QueryOutcome::Rejected {
            reason: RejectReason::Overloaded
        }
    ));
    assert_eq!(
        engine.metrics_snapshot().counter("hris_engine_shed_total"),
        Some(1)
    );
    assert_eq!(gate.shed_total(), 1);
}

#[test]
fn router_without_admission_has_no_gate() {
    let net = net();
    let params = HrisParams::default();
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 600.0);
    let engine = ShardedEngine::build(
        Arc::clone(&net),
        &TrajectoryArchive::empty(),
        params,
        EngineConfig::builder().observability(true).build().unwrap(),
        plan,
    );
    assert!(engine.admission_gate().is_none());
    let (r, _) = engine.infer_query_traced(&query(), 2);
    assert!(!matches!(
        r.outcome,
        QueryOutcome::Rejected {
            reason: RejectReason::Overloaded
        }
    ));
}
