//! Distributed tracing and explain integration suite: a cross-shard
//! scatter-gather query against a **live** router [`MetricsServer`] must
//! yield exactly one stitched span tree — routing → per-shard local
//! inference → gather → splice — assembled under one trace id, and the
//! explain layer must serve that query's audit document from
//! `/debug/explain/<trace_id>`.
//!
//! The span tree is checked both in-process (through the router's trace
//! ring) and over real TCP (`/debug/traces`), alongside the new
//! `/debug/shards` topology endpoint and the per-shard health checks.

use hris::{EngineConfig, HrisParams, QueryOutcome};
use hris_geo::Point;
use hris_obs::{Span, TraceRecord};
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{RouteKind, ShardHealth, ShardPlan, ShardedEngine};
use hris_traj::{GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 20,
        blocks_y: 20,
        block_m: 300.0,
        seed: 19,
        ..NetworkConfig::default()
    }))
}

fn sim_archive(net: &RoadNetwork, trips: usize, seed: u64) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: trips,
            num_od_patterns: 7,
            min_trip_dist_m: 400.0,
            seed,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

/// A 4-point walk straddling `seam_x` left-to-right: with margin φ + 900 m
/// and `step` ≤ 900 m every pair is partition-respecting, so the query
/// scatters across both shards of a 2×1 grid.
fn seam_query(seam_x: f64, y: f64, step: f64) -> Trajectory {
    let xs = [
        seam_x - 2.0 * step,
        seam_x - step,
        seam_x + step,
        seam_x + 2.0 * step,
    ];
    Trajectory::new(
        TrajId(8_000_000),
        xs.iter()
            .enumerate()
            .map(|(i, &x)| GpsPoint::new(Point::new(x, y + i as f64 * 40.0), i as f64 * 120.0))
            .collect(),
    )
}

/// A short walk well inside shard `s`'s core, far from every seam, so the
/// router must delegate it whole.
fn core_query(engine: &ShardedEngine, s: usize) -> Trajectory {
    let c = engine.plan().core(s).center();
    Trajectory::new(
        TrajId(7_000_000 + s as u32),
        (0..4)
            .map(|i| {
                GpsPoint::new(
                    Point::new(c.x - 300.0 + i as f64 * 150.0, c.y + i as f64 * 80.0),
                    i as f64 * 90.0,
                )
            })
            .collect(),
    )
}

fn traced_engine(net: &Arc<RoadNetwork>, archive: &TrajectoryArchive) -> Arc<ShardedEngine> {
    let params = HrisParams::default();
    let plan = ShardPlan::grid(net, 2, 1, params.phi_m + 900.0);
    let cfg = EngineConfig::builder()
        .observability(true)
        .explain(16)
        .build()
        .expect("static engine configuration");
    Arc::new(ShardedEngine::build(
        Arc::clone(net),
        archive,
        params,
        cfg,
        plan,
    ))
}

/// Minimal HTTP/1.1 GET over a plain socket: status code + body.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Structural validation of a stitched cross-shard tree: exactly one root
/// named `query`, every parent resolvable, the pipeline stages present and
/// parented where the stitch puts them.
fn assert_stitched(rec: &TraceRecord, expect_shards: usize) {
    let spans = &rec.spans;
    assert!(!spans.is_empty(), "traced query must capture spans");
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span");
    assert_eq!(roots[0].name, "query");
    assert_eq!(roots[0].id, rec.root_span, "record points at the root");
    let root_id = roots[0].id;

    let find_ids = |name: &str| -> Vec<u64> {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.id)
            .collect()
    };
    // Every parent resolves inside the tree.
    for s in spans {
        assert!(
            s.parent == 0 || spans.iter().any(|p| p.id == s.parent),
            "span {} ({}) has unresolvable parent {}",
            s.id,
            s.name,
            s.parent
        );
    }
    // Stage spans, parented under the root.
    for stage in ["routing", "gather", "splice"] {
        let ids = find_ids(stage);
        assert_eq!(ids.len(), 1, "exactly one {stage} span");
        let s = spans.iter().find(|s| s.id == ids[0]).unwrap();
        assert_eq!(s.parent, root_id, "{stage} hangs off the root");
    }
    let shard_ids = find_ids("shard");
    assert_eq!(
        shard_ids.len(),
        expect_shards,
        "one shard span per touched shard"
    );
    for id in &shard_ids {
        let s = spans.iter().find(|s| s.id == *id).unwrap();
        assert_eq!(s.parent, root_id, "shard spans hang off the root");
    }
    // The stitch itself: the shards' own phase spans landed under the
    // router's shard spans.
    let phase_spans: Vec<&Span> = spans
        .iter()
        .filter(|s| s.name == "candidates" || s.name == "local")
        .collect();
    assert!(
        !phase_spans.is_empty(),
        "shard-side phase spans must ride along in the stitched tree"
    );
    for s in &phase_spans {
        assert!(
            shard_ids.contains(&s.parent),
            "phase span {} must be parented under a shard span",
            s.name
        );
    }
    // One shared clock origin: span offsets are sane and ordered.
    for s in spans {
        assert!(s.start_s >= 0.0 && s.duration_s >= 0.0);
    }
}

#[test]
fn scatter_query_stitches_one_span_tree_served_by_the_live_router() {
    let net = net();
    let archive = sim_archive(&net, 90, 12);
    let engine = traced_engine(&net, &archive);
    let seam_x = engine.plan().core(0).max.x;
    let q = seam_query(seam_x, net.bbox().center().y, 700.0);

    let (result, route) = engine.infer_query_traced(&q, 2);
    assert_eq!(route.kind, RouteKind::Scatter, "seam query must scatter");
    assert!(matches!(result.outcome, QueryOutcome::Ok));
    let touched: std::collections::HashSet<usize> = route.pair_shards.iter().copied().collect();
    assert_eq!(touched.len(), 2, "workload must touch both shards");

    // Exactly one record in the ring, structurally stitched.
    let ring = engine.trace_ring().expect("tracing is on");
    let recs = ring.snapshot();
    assert_eq!(recs.len(), 1, "one query, one stitched trace record");
    let rec = &recs[0];
    assert!(rec.trace_id > 0, "traced query minted a trace id");
    assert_eq!(rec.points, 4);
    assert_eq!(rec.pairs, 3);
    assert_eq!(rec.routes, result.globals.len());
    assert_stitched(rec, 2);

    // The same tree over real TCP, plus the shard topology endpoint and
    // the audit document under the same trace id.
    let server = engine.serve_metrics("127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let (code, traces) = http_get(addr, "/debug/traces");
    assert_eq!(code, 200);
    assert!(traces.contains(&format!("\"trace_id\":{}", rec.trace_id)));
    assert!(traces.contains("\"name\":\"splice\""));
    assert!(traces.contains("\"name\":\"gather\""));

    let (code, shards) = http_get(addr, "/debug/shards");
    assert_eq!(code, 200);
    let v: serde_json::Value = serde_json::from_str(&shards).expect("valid shard json");
    let arr = v.as_array().expect("array of shards");
    assert_eq!(arr.len(), 2);
    for (s, entry) in arr.iter().enumerate() {
        assert_eq!(entry.get("shard").and_then(|v| v.as_u64()), Some(s as u64));
        assert_eq!(
            entry.get("health").and_then(|v| v.as_str()),
            Some("healthy")
        );
        assert_eq!(entry.get("servable").and_then(|v| v.as_bool()), Some(true));
    }

    let (code, audit) = http_get(addr, &format!("/debug/explain/{}", rec.trace_id));
    assert_eq!(code, 200, "scatter audit served from the router ring");
    let a: serde_json::Value = serde_json::from_str(&audit).expect("valid audit json");
    assert_eq!(
        a.get("trace_id").and_then(|v| v.as_u64()),
        Some(rec.trace_id)
    );
    assert_eq!(a.get("outcome").and_then(|v| v.as_str()), Some("served"));
    assert_eq!(a.get("pairs").and_then(|v| v.as_u64()), Some(3));
    assert!(
        !a.get("routes")
            .and_then(|v| v.as_array())
            .expect("routes array")
            .is_empty(),
        "served audit explains its routes"
    );
    assert!(
        audit.contains("scatter: pair"),
        "audit events record the pair→shard assignment"
    );

    let (code, _) = http_get(addr, "/debug/explain/999999999");
    assert_eq!(code, 404, "unknown trace id is a 404");
    let (code, _) = http_get(addr, "/debug/explain/not-a-number");
    assert_eq!(code, 404, "garbage trace id is a 404");

    server.shutdown();
}

#[test]
fn delegated_query_audit_is_findable_under_the_router_trace_id() {
    let net = net();
    let archive = sim_archive(&net, 90, 12);
    let engine = traced_engine(&net, &archive);
    let q = core_query(&engine, 1);

    let (result, route) = engine.infer_query_traced(&q, 2);
    assert_eq!(route.kind, RouteKind::Single(1), "in-core query delegates");
    assert!(matches!(result.outcome, QueryOutcome::Ok));

    let rec = engine
        .trace_ring()
        .expect("tracing is on")
        .snapshot()
        .pop()
        .expect("delegated query still records a trace");
    // The delegated shard served under the router's trace id, so the
    // shard-side audit joins the router-side span tree.
    let audit = engine
        .find_audit(rec.trace_id)
        .expect("shard-side audit found through the router");
    assert!(audit.json.contains(&format!("\"trace_id\":{}", rec.trace_id)));
    assert!(audit.json.contains("\"outcome\":\"served\""));
    // It lives on the shard's ring, not the router's.
    assert!(
        engine
            .audit_ring()
            .expect("explain is on")
            .find(rec.trace_id)
            .is_none(),
        "delegated audits are shard-owned"
    );
    assert!(engine.shard(1).audit_ring().is_some());
}

#[test]
fn unhealthy_shard_reroute_becomes_span_events() {
    let net = net();
    let archive = sim_archive(&net, 60, 12);
    let engine = traced_engine(&net, &archive);
    engine.set_shard_health(0, ShardHealth::Unhealthy);

    let q = core_query(&engine, 0);
    let (result, route) = engine.infer_query_traced(&q, 2);
    assert!(matches!(route.kind, RouteKind::Single(1)));
    assert!(matches!(result.outcome, QueryOutcome::Degraded { .. }));

    let rec = engine
        .trace_ring()
        .expect("tracing is on")
        .snapshot()
        .pop()
        .expect("rerouted query records a trace");
    let names: Vec<&str> = rec.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"shard_unhealthy"), "health flip is an event");
    assert!(names.contains(&"reroute"), "reroute is an event");
    assert!(names.contains(&"degraded"), "demotion is an event");

    // The topology endpoint reports the quarantined shard.
    let server = engine.serve_metrics("127.0.0.1:0").expect("bind");
    let (code, shards) = http_get(server.addr(), "/debug/shards");
    assert_eq!(code, 200);
    let v: serde_json::Value = serde_json::from_str(&shards).expect("valid shard json");
    let shard0 = &v.as_array().expect("array of shards")[0];
    assert_eq!(
        shard0.get("health").and_then(|v| v.as_str()),
        Some("unhealthy")
    );
    assert_eq!(shard0.get("servable").and_then(|v| v.as_bool()), Some(false));
    // And the federated health check flips.
    let (code, body) = http_get(server.addr(), "/healthz");
    assert_eq!(code, 503, "unhealthy shard fails the health check");
    assert!(body.contains("shard_0"));
    server.shutdown();
}

#[test]
fn tracing_and_explain_leave_router_outputs_byte_identical() {
    let net = net();
    let archive = sim_archive(&net, 90, 12);
    let params = HrisParams::default();
    let plan = |n: &Arc<RoadNetwork>| ShardPlan::grid(n, 2, 1, params.phi_m + 900.0);
    let plain = ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params.clone(),
        EngineConfig::default(),
        plan(&net),
    );
    let traced = traced_engine(&net, &archive);

    let seam_x = traced.plan().core(0).max.x;
    let y = net.bbox().center().y;
    let mut workload = vec![
        seam_query(seam_x, y, 700.0),
        seam_query(seam_x, y + 500.0, 500.0),
        core_query(&traced, 0),
        core_query(&traced, 1),
    ];
    // A dirty-but-repairable query takes the degradation chain on both.
    let mut dirty = core_query(&traced, 0);
    dirty.points[1].pos = Point::new(f64::NAN, 0.0);
    workload.push(dirty);

    for (qi, q) in workload.iter().enumerate() {
        let (want, want_route) = plain.infer_query_traced(q, 3);
        let (got, got_route) = traced.infer_query_traced(q, 3);
        assert_eq!(got_route.kind, want_route.kind, "query {qi}: dispatch");
        assert_eq!(
            got_route.pair_shards, want_route.pair_shards,
            "query {qi}: pair routing"
        );
        assert_eq!(got.outcome, want.outcome, "query {qi}: outcome");
        assert_eq!(got.globals.len(), want.globals.len(), "query {qi}: top-K");
        for (i, (ga, gb)) in got.globals.iter().zip(&want.globals).enumerate() {
            assert_eq!(ga.route, gb.route, "query {qi}: route {i}");
            assert_eq!(
                ga.log_score.to_bits(),
                gb.log_score.to_bits(),
                "query {qi}: score bits {i}"
            );
        }
    }
}

#[test]
fn shed_and_rejected_queries_audit_without_routes() {
    let net = net();
    let engine = {
        let params = HrisParams::default();
        let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 900.0);
        let cfg = EngineConfig::builder()
            .observability(true)
            .explain(16)
            .admission(1, 0)
            .build()
            .expect("static engine configuration");
        Arc::new(ShardedEngine::build(
            Arc::clone(&net),
            &TrajectoryArchive::empty(),
            params,
            cfg,
            plan,
        ))
    };

    // An empty query is rejected at the router screen.
    let empty = Trajectory::new(TrajId(1), Vec::new());
    let (r, _) = engine.infer_query_traced(&empty, 2);
    assert!(matches!(r.outcome, QueryOutcome::Rejected { .. }));
    let audits = engine.audit_ring().expect("explain is on").snapshot();
    let rejected = audits
        .iter()
        .find(|a| a.json.contains("\"outcome\":\"rejected\""))
        .expect("rejection audited");
    assert!(rejected.json.contains("\"routes\":[]"));

    // A query shed at the gate audits as shed.
    let gate = engine.admission_gate().expect("gate configured");
    let permit = match gate.admit() {
        hris_obs::Admission::Admitted(p) => p,
        hris_obs::Admission::Shed => panic!("idle gate must admit"),
    };
    let q = core_query(&engine, 0);
    let (r, _) = engine.infer_query_traced(&q, 2);
    assert!(matches!(r.outcome, QueryOutcome::Rejected { .. }));
    drop(permit);
    let audits = engine.audit_ring().unwrap().snapshot();
    assert!(
        audits.iter().any(|a| a.json.contains("\"outcome\":\"shed\"")),
        "shed queries are audited"
    );
}
