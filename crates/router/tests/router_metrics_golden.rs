//! Router-level `/metrics` parity and structure golden.
//!
//! Two contracts of the federated scrape surface:
//!
//! * **Parity** — the live server's `/metrics` body is byte-identical to
//!   [`hris_obs::export::prometheus_text`] over
//!   [`ShardedEngine::metrics_snapshot`]: federation happens in the
//!   snapshot, not in the serving path.
//! * **Structure** — the set of series (names, label sets — including the
//!   per-shard `shard` labels — and `# HELP`/`# TYPE` headers) over a
//!   pinned workload is deterministic and matches a golden file. Values
//!   are scrubbed (wall-clock sums and gauges are host-dependent); the
//!   *shape* of the scrape surface is the API under test.
//!
//! To bless an intentional change:
//!
//! ```text
//! BLESS=1 cargo test -p hris-router --test router_metrics_golden
//! ```

use hris::{EngineConfig, HrisParams};
use hris_geo::Point;
use hris_obs::export::prometheus_text;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{ShardPlan, ShardedEngine};
use hris_traj::{GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const GOLDEN: &str = "tests/golden/router_metrics_structure.txt";

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 20,
        blocks_y: 20,
        block_m: 300.0,
        seed: 19,
        ..NetworkConfig::default()
    }))
}

fn sim_archive(net: &RoadNetwork) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 60,
            num_od_patterns: 7,
            min_trip_dist_m: 400.0,
            seed: 12,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

/// A pinned workload covering every router path that registers series:
/// delegation to both shards, a scatter across the seam, and a rejection.
fn run_workload(engine: &ShardedEngine, net: &RoadNetwork) {
    for s in 0..engine.num_shards() {
        let c = engine.plan().core(s).center();
        let q = Trajectory::new(
            TrajId(10 + s as u32),
            (0..4)
                .map(|i| {
                    GpsPoint::new(
                        Point::new(c.x - 300.0 + i as f64 * 150.0, c.y + i as f64 * 80.0),
                        i as f64 * 90.0,
                    )
                })
                .collect(),
        );
        let _ = engine.infer_query(&q, 2);
    }
    let seam_x = engine.plan().core(0).max.x;
    let y = net.bbox().center().y;
    let scatter = Trajectory::new(
        TrajId(20),
        [-1_400.0, -700.0, 700.0, 1_400.0]
            .iter()
            .enumerate()
            .map(|(i, dx)| {
                GpsPoint::new(Point::new(seam_x + dx, y + i as f64 * 40.0), i as f64 * 120.0)
            })
            .collect(),
    );
    let _ = engine.infer_query(&scatter, 2);
    let _ = engine.infer_query(&Trajectory::new(TrajId(30), Vec::new()), 2);
}

/// Minimal HTTP/1.1 GET over a plain socket: status code + body.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The scrape body with every sample value scrubbed to `V`: `# HELP` and
/// `# TYPE` lines verbatim, sample lines keep `name{labels}` only.
fn structure_of(scrape: &str) -> String {
    let mut out = String::new();
    for line in scrape.lines() {
        if line.starts_with('#') || line.is_empty() {
            out.push_str(line);
        } else {
            let series = line.rsplit_once(' ').map_or(line, |(s, _)| s);
            out.push_str(series);
            out.push_str(" V");
        }
        out.push('\n');
    }
    out
}

#[test]
fn federated_scrape_is_parity_with_the_snapshot_and_structurally_pinned() {
    let net = net();
    let archive = sim_archive(&net);
    let params = HrisParams::default();
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 900.0);
    let engine = Arc::new(ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params,
        EngineConfig::builder()
            .observability(true)
            .build()
            .expect("static engine configuration"),
        plan,
    ));
    run_workload(&engine, &net);

    // Parity: the endpoint renders exactly the federated snapshot.
    let server = engine.serve_metrics("127.0.0.1:0").expect("bind");
    let (code, body) = http_get(server.addr(), "/metrics");
    assert_eq!(code, 200);
    assert_eq!(
        body,
        prometheus_text(&engine.metrics_snapshot()),
        "/metrics must be byte-identical to the federated snapshot"
    );
    server.shutdown();

    // Shard labels are actually present before we pin the shape.
    assert!(body.contains("shard=\"0\""));
    assert!(body.contains("shard=\"1\""));

    // Structure golden: series names + label sets, values scrubbed.
    let got = structure_of(&body);
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN);
    if std::env::var("BLESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(golden_path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&golden_path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&golden_path).unwrap_or_else(|_| {
        panic!(
            "missing {GOLDEN}; run `BLESS=1 cargo test -p hris-router --test router_metrics_golden` once"
        )
    });
    if got != want {
        let got_set: std::collections::BTreeSet<&str> = got.lines().collect();
        let want_set: std::collections::BTreeSet<&str> = want.lines().collect();
        let added: Vec<&&str> = got_set.difference(&want_set).collect();
        let removed: Vec<&&str> = want_set.difference(&got_set).collect();
        panic!(
            "federated scrape structure changed.\n\nadded ({}):\n{}\n\nremoved ({}):\n{}\n\n\
             If intentional, regenerate with \
             `BLESS=1 cargo test -p hris-router --test router_metrics_golden` \
             and commit the golden file.",
            added.len(),
            added.iter().map(|s| format!("  {s}")).collect::<Vec<_>>().join("\n"),
            removed.len(),
            removed.iter().map(|s| format!("  {s}")).collect::<Vec<_>>().join("\n"),
        );
    }
}
