//! The router's zero-overhead-when-disabled contract, enforced at the
//! clock: with the default configuration (observability off, explain off)
//! a routed query — delegated or scatter-gathered — performs **zero**
//! counted-clock reads end to end. No trace id is minted, no collector is
//! created, and the shard engines run the uninstrumented fast path.
//!
//! Dedicated test binary: the read counter is process-global, so no test
//! here may construct an instrumented engine.

use hris::{EngineConfig, HrisParams, QueryOutcome};
use hris_geo::Point;
use hris_obs::clock;
use hris_roadnet::{generator, NetworkConfig, RoadNetwork};
use hris_router::{RouteKind, ShardPlan, ShardedEngine};
use hris_traj::{GpsPoint, SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};
use std::sync::Arc;

fn net() -> Arc<RoadNetwork> {
    Arc::new(generator::generate(&NetworkConfig {
        blocks_x: 20,
        blocks_y: 20,
        block_m: 300.0,
        seed: 19,
        ..NetworkConfig::default()
    }))
}

fn sim_archive(net: &RoadNetwork) -> TrajectoryArchive {
    let mut sim = Simulator::new(
        net,
        SimConfig {
            num_trips: 60,
            num_od_patterns: 7,
            min_trip_dist_m: 400.0,
            seed: 12,
            ..SimConfig::default()
        },
    );
    sim.generate_archive().0
}

#[test]
fn disabled_router_reads_the_clock_zero_times() {
    let net = net();
    let archive = sim_archive(&net);
    let params = HrisParams::default();
    let plan = ShardPlan::grid(&net, 2, 1, params.phi_m + 900.0);
    let seam_x = plan.core(0).max.x;
    let engine = ShardedEngine::build(
        Arc::clone(&net),
        &archive,
        params,
        EngineConfig::default(),
        plan,
    );
    assert!(engine.trace_ring().is_none(), "default config traces nothing");
    assert!(engine.audit_ring().is_none(), "default config audits nothing");

    // One delegated in-core query and one seam query that scatters across
    // both shards — the full routing surface.
    let c = engine.plan().core(1).center();
    let delegated = Trajectory::new(
        TrajId(1),
        (0..4)
            .map(|i| {
                GpsPoint::new(
                    Point::new(c.x - 300.0 + i as f64 * 150.0, c.y + i as f64 * 80.0),
                    i as f64 * 90.0,
                )
            })
            .collect(),
    );
    let y = net.bbox().center().y;
    let scatter = Trajectory::new(
        TrajId(2),
        [-1_400.0, -700.0, 700.0, 1_400.0]
            .iter()
            .enumerate()
            .map(|(i, dx)| {
                GpsPoint::new(Point::new(seam_x + dx, y + i as f64 * 40.0), i as f64 * 120.0)
            })
            .collect(),
    );

    let before = clock::reads();
    let (r, t) = engine.infer_query_traced(&delegated, 2);
    assert!(matches!(t.kind, RouteKind::Single(_)));
    assert!(!matches!(r.outcome, QueryOutcome::Rejected { .. }));
    let (r, t) = engine.infer_query_traced(&scatter, 2);
    assert_eq!(t.kind, RouteKind::Scatter);
    assert!(!matches!(r.outcome, QueryOutcome::Rejected { .. }));
    // A rejected query exercises the screen's early exit too.
    let (_, t) = engine.infer_query_traced(&Trajectory::new(TrajId(3), Vec::new()), 2);
    assert_eq!(t.kind, RouteKind::Rejected);
    assert_eq!(
        clock::reads() - before,
        0,
        "a disabled router must never read the clock"
    );
}
