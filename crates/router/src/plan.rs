//! Grid shard plans: a deterministic spatial partition of the road network.
//!
//! A [`ShardPlan`] cuts the network's bounding box into an `nx × ny` grid of
//! **core** cells, one shard per cell, and derives from each core a
//! **region** — the core inflated by the replication margin. Cores tile the
//! plane (every point maps to exactly one shard via
//! [`ShardPlan::shard_of_point`]); regions overlap on purpose: a shard can
//! answer a query exactly like the global engine whenever the query's
//! φ-inflated bounding box lies inside the shard's region, because the
//! shard's archive replicates every trajectory that touches the region (see
//! [`hris_traj::partition_archive`]).
//!
//! Segment assignment follows the same two-tier rule: a segment is **owned**
//! by the cell containing its bounding-box center (unique, used for capacity
//! accounting and sub-network extraction), and **replicated** to every shard
//! whose region intersects its bounding box (the set a shard needs to score
//! candidates near its seams).
//!
//! Construction is pure arithmetic over the network — no randomness, no
//! iteration-order dependence — so two plans built from the same network and
//! grid shape are identical. The partitioner proptests pin this.

use hris_geo::{BBox, Point};
use hris_roadnet::{RoadNetwork, SegmentId};

/// A deterministic `nx × ny` grid partition of a road network's extent.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    bounds: BBox,
    nx: usize,
    ny: usize,
    margin_m: f64,
    cores: Vec<BBox>,
    /// `seg_owner[seg.index()]` — owning shard of each segment.
    seg_owner: Vec<u32>,
    /// Per shard: owned segments, ascending id.
    owned: Vec<Vec<SegmentId>>,
    /// Per shard: segments whose bbox intersects the shard region
    /// (superset of `owned` for every segment inside the network bounds).
    replicated: Vec<Vec<SegmentId>>,
}

impl ShardPlan {
    /// Builds the `nx × ny` grid plan over `net.bbox()` with replication
    /// margin `margin_m` (metres). Shard `s` covers grid cell
    /// `(s % nx, s / nx)` — x-major, bottom row first.
    ///
    /// The margin should be at least the φ (reference-search radius) the
    /// engine will run with: then any query entirely inside one core cell is
    /// answerable by that single shard, byte-identically to the global
    /// engine. Smaller margins stay *correct* (the router falls back to
    /// scatter-gather more often) but route fewer queries to one shard.
    ///
    /// # Panics
    /// Panics if `nx` or `ny` is zero, the margin is negative/non-finite,
    /// or the network has no spatial extent.
    #[must_use]
    pub fn grid(net: &RoadNetwork, nx: usize, ny: usize, margin_m: f64) -> ShardPlan {
        assert!(nx >= 1 && ny >= 1, "grid must have at least one cell");
        assert!(
            margin_m.is_finite() && margin_m >= 0.0,
            "replication margin must be a non-negative finite number of metres"
        );
        let bounds = net.bbox();
        assert!(
            !bounds.is_empty(),
            "cannot shard a network with an empty bounding box"
        );

        let mut cores = Vec::with_capacity(nx * ny);
        for j in 0..ny {
            for i in 0..nx {
                cores.push(BBox::new(
                    Point::new(cell_edge(bounds.min.x, bounds.max.x, i, nx), {
                        cell_edge(bounds.min.y, bounds.max.y, j, ny)
                    }),
                    Point::new(
                        cell_edge(bounds.min.x, bounds.max.x, i + 1, nx),
                        cell_edge(bounds.min.y, bounds.max.y, j + 1, ny),
                    ),
                ));
            }
        }

        let mut plan = ShardPlan {
            bounds,
            nx,
            ny,
            margin_m,
            cores,
            seg_owner: Vec::with_capacity(net.num_segments()),
            owned: vec![Vec::new(); nx * ny],
            replicated: vec![Vec::new(); nx * ny],
        };
        for seg in net.segments() {
            let sb = seg.geometry.bbox();
            let owner = plan.shard_of_point(sb.center());
            plan.seg_owner.push(owner as u32);
            plan.owned[owner].push(seg.id);
            for s in 0..plan.num_shards() {
                if plan.region(s).intersects(&sb) {
                    plan.replicated[s].push(seg.id);
                }
            }
        }
        plan
    }

    /// Number of shards (`nx * ny`).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.cores.len()
    }

    /// The grid shape `(nx, ny)`.
    #[must_use]
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// The replication margin in metres.
    #[must_use]
    pub fn margin_m(&self) -> f64 {
        self.margin_m
    }

    /// The partitioned extent (the network bounding box at plan time).
    #[must_use]
    pub fn bounds(&self) -> BBox {
        self.bounds
    }

    /// Shard `s`'s core cell. Cores tile [`ShardPlan::bounds`] exactly.
    #[must_use]
    pub fn core(&self, s: usize) -> BBox {
        self.cores[s]
    }

    /// All core cells, in shard order.
    #[must_use]
    pub fn cores(&self) -> &[BBox] {
        &self.cores
    }

    /// Shard `s`'s replication region: the core inflated by the margin.
    /// Regions overlap; a shard holds every trajectory and segment touching
    /// its region.
    #[must_use]
    pub fn region(&self, s: usize) -> BBox {
        self.cores[s].inflated(self.margin_m)
    }

    /// The unique shard whose core cell covers `p`. Points outside the
    /// partitioned bounds clamp to the nearest cell, so the mapping is
    /// total. Points exactly on an interior cell edge belong to the
    /// higher-indexed cell (half-open cells), except on the outer boundary.
    #[must_use]
    pub fn shard_of_point(&self, p: Point) -> usize {
        let ix = cell_index(p.x, self.bounds.min.x, self.bounds.max.x, self.nx);
        let iy = cell_index(p.y, self.bounds.min.y, self.bounds.max.y, self.ny);
        iy * self.nx + ix
    }

    /// The owning shard of a segment (the cell holding its bbox center).
    #[must_use]
    pub fn segment_owner(&self, id: SegmentId) -> usize {
        self.seg_owner[id.index()] as usize
    }

    /// Segments owned by shard `s`, ascending id. Ownership is a partition
    /// of the network's segments.
    #[must_use]
    pub fn owned_segments(&self, s: usize) -> &[SegmentId] {
        &self.owned[s]
    }

    /// Segments replicated to shard `s` (bbox intersects the region),
    /// ascending id. This is the segment set to pass to
    /// [`hris_roadnet::RoadNetwork::extract_subnetwork`] for a shard-local
    /// network.
    #[must_use]
    pub fn replicated_segments(&self, s: usize) -> &[SegmentId] {
        &self.replicated[s]
    }

    /// The first shard (lowest index) whose **region** contains `b`, if
    /// any. This is the router's single-shard test: pass the query bbox
    /// already inflated by φ and the winning shard answers byte-identically
    /// to the global engine.
    #[must_use]
    pub fn home_shard(&self, b: &BBox) -> Option<usize> {
        (0..self.num_shards()).find(|&s| self.region(s).contains(b))
    }
}

/// Edge `i` of `n` equal cells spanning `[lo, hi]`. `cell_edge(.., 0, n) ==
/// lo` and `cell_edge(.., n, n) == hi` exactly, so cores tile the bounds
/// with no gaps from rounding.
fn cell_edge(lo: f64, hi: f64, i: usize, n: usize) -> f64 {
    if i == 0 {
        lo
    } else if i == n {
        hi
    } else {
        lo + (hi - lo) * (i as f64 / n as f64)
    }
}

/// Cell index of coordinate `v` on the `[lo, hi]` axis split into `n`
/// half-open cells, clamped into `0..n`. Non-finite coordinates (possible
/// only when validation is disabled) clamp to cell 0.
fn cell_index(v: f64, lo: f64, hi: f64, n: usize) -> usize {
    let w = (hi - lo) / n as f64;
    if !v.is_finite() || w <= 0.0 {
        return 0;
    }
    let raw = ((v - lo) / w).floor();
    if raw.is_nan() || raw < 0.0 {
        0
    } else {
        (raw as usize).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_roadnet::{generator, NetworkConfig};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig::small(6))
    }

    #[test]
    fn cores_tile_the_bounds_exactly() {
        let net = net();
        let plan = ShardPlan::grid(&net, 3, 2, 250.0);
        assert_eq!(plan.num_shards(), 6);
        let b = plan.bounds();
        // Outer edges are exact, adjacent cells share an edge bit-for-bit.
        assert_eq!(plan.core(0).min.x.to_bits(), b.min.x.to_bits());
        assert_eq!(plan.core(5).max.y.to_bits(), b.max.y.to_bits());
        for j in 0..2 {
            for i in 0..2 {
                let left = plan.core(j * 3 + i);
                let right = plan.core(j * 3 + i + 1);
                assert_eq!(left.max.x.to_bits(), right.min.x.to_bits());
            }
        }
    }

    #[test]
    fn every_point_maps_into_its_core() {
        let net = net();
        let plan = ShardPlan::grid(&net, 4, 4, 100.0);
        let b = plan.bounds();
        for (gx, gy) in [(0.1, 0.2), (0.5, 0.5), (0.73, 0.11), (0.99, 0.99)] {
            let p = Point::new(b.min.x + gx * b.width(), b.min.y + gy * b.height());
            let s = plan.shard_of_point(p);
            assert!(plan.core(s).contains_point(p), "core {s} must cover {p:?}");
        }
        // Outside points clamp to an edge cell rather than panicking.
        let far = Point::new(b.max.x + 1e6, b.min.y - 1e6);
        assert!(plan.shard_of_point(far) < plan.num_shards());
    }

    #[test]
    fn segment_ownership_partitions_the_network() {
        let net = net();
        let plan = ShardPlan::grid(&net, 2, 3, 150.0);
        let total: usize = (0..plan.num_shards())
            .map(|s| plan.owned_segments(s).len())
            .sum();
        assert_eq!(total, net.num_segments());
        for s in 0..plan.num_shards() {
            for &id in plan.owned_segments(s) {
                assert_eq!(plan.segment_owner(id), s);
                // Owned ⊆ replicated: the owner's region contains the
                // segment's center, hence intersects its bbox.
                assert!(plan.replicated_segments(s).contains(&id));
            }
        }
    }

    #[test]
    fn home_shard_requires_region_containment() {
        let net = net();
        let plan = ShardPlan::grid(&net, 2, 1, 300.0);
        let deep = plan.core(0).center();
        let qb = BBox::from_point(deep).inflated(200.0);
        assert_eq!(plan.home_shard(&qb), Some(0));
        // A box spanning the whole extent fits no single region.
        assert_eq!(plan.home_shard(&plan.bounds().inflated(400.0)), None);
    }

    #[test]
    fn construction_is_deterministic() {
        let net = net();
        let a = ShardPlan::grid(&net, 3, 3, 500.0);
        let b = ShardPlan::grid(&net, 3, 3, 500.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panic() {
        let _ = ShardPlan::grid(&net(), 0, 2, 10.0);
    }
}
