//! The sharded serving front: routes queries to per-shard engines and
//! scatter-gathers across shard seams.
//!
//! # Correctness model
//!
//! The HRIS pipeline touches the historical archive **only** through
//! φ-radius range queries around query points (reference search), and
//! reference search is stable under order-preserving archive subsetting.
//! So the router preserves the global engine's answers bit-for-bit in two
//! regimes:
//!
//! * **Single-shard** — the query's φ-inflated bounding box fits inside one
//!   shard's replication region. That shard's archive holds every
//!   trajectory any of the query's range queries can hit (the partitioner's
//!   replication rule), so the whole query is delegated verbatim and the
//!   answer — routes, scores, statistics, outcome — is byte-identical to a
//!   global engine over the unpartitioned archive.
//! * **Cross-shard, partition-respecting pairs** — every *pair* of
//!   consecutive query points has a φ-inflated bounding box inside some
//!   region. The router splits the query into maximal same-shard runs,
//!   collects each shard's phase-1/2 local inferences (pinning one snapshot
//!   per shard), remaps shard-local trajectory ids back to global ids, and
//!   runs the phase-3 K-GRI dynamic program itself over the concatenated
//!   locals. Each per-pair local result equals the global engine's (same
//!   range-query hits, same deterministic reference search), and the id
//!   remap makes the cross-pair transition-confidence intersections equal
//!   too, so the composed top-K is again byte-identical.
//!
//! A query with a *wild pair* (one whose φ-box fits no region — possible
//! only when the replication margin is smaller than φ) is still answered
//! deterministically: the pair is assigned to the shard owning its
//! midpoint, and the answer is best-effort rather than provably identical.
//!
//! # Faults
//!
//! Shards can be marked [`ShardHealth::Unhealthy`] (quarantined load,
//! corrupt archive) and live shards are additionally auto-checked against
//! the staleness bound. Work routed at an unhealthy shard is reassigned to
//! the nearest healthy shard and the outcome is demoted to
//! [`QueryOutcome::Degraded`] — degraded answers are *labelled*, never
//! silent. With no healthy shard left the query is rejected with
//! [`RejectReason::ShardUnavailable`]. The router never panics on a faulty
//! shard.

use crate::plan::ShardPlan;
use hris::{
    configured_scorer, ConfiguredScorer, EngineConfig, EngineHandle, HrisParams,
    LocalInferenceResult, PaperScorer, QueryAudit, QueryOutcome, QueryResult, RejectReason,
    RouteExplanation, RouteScorer, ScoringCtx,
};
use hris_geo::BBox;
use hris_obs::{
    next_trace_id, Admission, AdmissionGate, AttrValue, AuditRecord, AuditRing, Counter, Health,
    MetricsRegistry, MetricsServer, MetricsSnapshot, ServeState, SpanCollector, SpanGuard,
    TraceAssembler, TraceRecord, TraceRing,
};
use hris_roadnet::RoadNetwork;
use hris_traj::{
    partition_archive, sanitize_points, ArchiveSnapshot, PointRepairs, SnapshotReader, TrajId,
    Trajectory, TrajectoryArchive,
};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// The span handle the router threads through one traced query: the
/// query-owned collector (one clock origin for the whole stitched tree)
/// plus the span id the next stage should parent under.
type SpanCtx<'c> = Option<(&'c SpanCollector, u64)>;

/// Router-side health of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally.
    Healthy,
    /// Quarantined: the shard's data cannot be trusted (corrupt archive,
    /// failed load). Its work is rerouted and outcomes are demoted.
    Unhealthy,
}

/// How the router dispatched one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// Rejected before touching any shard.
    Rejected,
    /// Whole query delegated to the contained shard.
    Single(usize),
    /// Split into per-pair runs across several shards.
    Scatter,
}

/// Introspection record of one routed query (test pinning, debugging).
#[derive(Debug, Clone)]
pub struct RouteTrace {
    /// Dispatch shape.
    pub kind: RouteKind,
    /// Scatter only: the shard that served each consecutive-point pair,
    /// after health rerouting. Empty for single-shard and rejected queries.
    pub pair_shards: Vec<usize>,
    /// Scatter only: seam positions — each entry `i` means pairs `i` and
    /// `i + 1` ran on different shards, i.e. the gather splices at query
    /// point `i + 1`.
    pub splice_points: Vec<usize>,
    /// `(shard, epoch)` actually served, in first-touch order. One entry
    /// per touched shard: a query observes exactly one whole epoch per
    /// shard (snapshot isolation).
    pub epochs: Vec<(usize, u64)>,
    /// Pairs served away from their routed shard because it was unhealthy.
    pub rerouted_pairs: usize,
}

impl RouteTrace {
    fn rejected() -> RouteTrace {
        RouteTrace {
            kind: RouteKind::Rejected,
            pair_shards: Vec::new(),
            splice_points: Vec::new(),
            epochs: Vec::new(),
            rerouted_pairs: 0,
        }
    }
}

/// Router-side counters, all on the router's own registry.
struct RouterMetrics {
    queries: Counter,
    single: Counter,
    scatter: Counter,
    splices: Counter,
    rerouted: Counter,
    rejected: Counter,
    shed: Counter,
    /// Per shard, labelled `shard="<i>"`: queries (or sub-queries) served.
    shard_queries: Vec<Counter>,
    /// Per shard, labelled `shard="<i>"`: point pairs served.
    shard_pairs: Vec<Counter>,
}

impl RouterMetrics {
    fn new(reg: &MetricsRegistry, num_shards: usize) -> RouterMetrics {
        let mk = |name: &str, help: &str| {
            (0..num_shards)
                .map(|s| reg.counter_with_labels(name, help, &[("shard", &s.to_string())]))
                .collect()
        };
        RouterMetrics {
            queries: reg.counter("hris_router_queries_total", "Queries routed."),
            single: reg.counter(
                "hris_router_single_shard_total",
                "Queries delegated whole to one shard.",
            ),
            scatter: reg.counter(
                "hris_router_scatter_total",
                "Queries split across shard seams.",
            ),
            splices: reg.counter(
                "hris_router_splices_total",
                "Shard seams crossed by scattered queries.",
            ),
            rerouted: reg.counter(
                "hris_router_rerouted_pairs_total",
                "Pairs served away from an unhealthy shard.",
            ),
            rejected: reg.counter(
                "hris_router_rejected_total",
                "Queries rejected by the router (validation or no healthy shard).",
            ),
            // Same name as the engine-level counter: in the federated
            // snapshot the shard copies carry a `shard` label and this one
            // does not, so they sum cleanly.
            shed: reg.counter(
                "hris_engine_shed_total",
                "Queries shed by admission control (waiting room full).",
            ),
            shard_queries: mk(
                "hris_router_shard_queries_total",
                "Queries or sub-queries served by this shard.",
            ),
            shard_pairs: mk(
                "hris_router_shard_pairs_total",
                "Point pairs served by this shard.",
            ),
        }
    }
}

/// What validation/sanitization made of the incoming query.
enum Routable<'q> {
    /// Clean (or validation disabled on a well-formed query): route and
    /// serve the original.
    Clean(&'q Trajectory),
    /// Sanitized copy; serve this, report the repairs.
    Repaired(Trajectory, PointRepairs),
    /// Validation is off and the query is malformed (the engines accept it
    /// as-is, but it cannot be sliced): delegate whole.
    Opaque(&'q Trajectory),
}

impl Routable<'_> {
    fn query(&self) -> &Trajectory {
        match self {
            Routable::Clean(q) | Routable::Opaque(q) => q,
            Routable::Repaired(q, _) => q,
        }
    }

    fn repairs(&self) -> Option<PointRepairs> {
        match self {
            Routable::Repaired(_, r) => Some(*r),
            _ => None,
        }
    }
}

/// An N-shard HRIS engine behind a scatter-gather router.
///
/// Construction partitions the archive over a [`ShardPlan`] (boundary
/// replication included) and builds one [`EngineHandle`] per shard, each
/// with its own snapshot lifecycle, caches, and metrics registry. All
/// shards share one `Arc<RoadNetwork>`: the network-level quantities the
/// pipeline uses (speed bound, shortest-path oracle, candidate lookup) are
/// global and pure, so sharing them is both correct and cheap —
/// [`ShardPlan::replicated_segments`] +
/// [`hris_roadnet::RoadNetwork::extract_subnetwork`] exist for deployments
/// that need per-shard memory isolation instead.
pub struct ShardedEngine {
    net: Arc<RoadNetwork>,
    params: HrisParams,
    cfg: EngineConfig,
    plan: ShardPlan,
    shards: Vec<EngineHandle>,
    /// Fixed mode: shard-local → parent archive ids. Live mode: `None`,
    /// ids are namespaced per shard instead (see [`ShardedEngine::live`]).
    id_maps: Option<Vec<Vec<TrajId>>>,
    replication_factor: f64,
    health: Vec<AtomicU8>,
    shard_registries: Vec<Arc<MetricsRegistry>>,
    router_registry: Arc<MetricsRegistry>,
    m: RouterMetrics,
    /// Router-level admission gate (`cfg.admission`); sheds before any
    /// shard is touched. The per-shard handles carry their own gates for
    /// direct shard access, but the router's scatter path pins shards
    /// below their `infer_query` entrypoints, so this gate is the
    /// admission point for routed traffic.
    gate: Option<AdmissionGate>,
    /// Stitched cross-shard trace ring (`cfg.obs.enabled` with a nonzero
    /// `trace_capacity`); `None` is the zero-overhead gate: no collector,
    /// no clock reads, not even a trace-id increment.
    traces: Option<TraceRing>,
    /// Router-side explain/audit ring (`cfg.explain.enabled`); holds the
    /// audits of scatter-gathered queries (delegated queries audit on
    /// their shard, under the router's trace id).
    audits: Option<AuditRing>,
    /// Router-assigned query sequence for stitched trace records.
    next_query_id: AtomicU64,
}

impl ShardedEngine {
    /// Partitions `archive` over `plan` and builds the per-shard engines.
    ///
    /// Every shard gets `params` and `cfg` verbatim. With
    /// `cfg.obs.enabled` the shards instrument themselves onto per-shard
    /// registries that [`ShardedEngine::metrics_snapshot`] federates under
    /// a `shard` label; with it disabled the shards run the uninstrumented
    /// fast path — zero clock reads per query, test-enforced — and the
    /// federated snapshot carries the router's own series only. The plan's
    /// margin should be ≥ `params.phi_m` for single-shard routing to apply
    /// to every in-core query; see [`ShardPlan::grid`].
    #[must_use]
    pub fn build(
        net: Arc<RoadNetwork>,
        archive: &TrajectoryArchive,
        params: HrisParams,
        cfg: EngineConfig,
        plan: ShardPlan,
    ) -> ShardedEngine {
        let part = partition_archive(archive, plan.cores(), plan.margin_m());
        let replication_factor = part.replication_factor();
        let mut shards = Vec::with_capacity(plan.num_shards());
        let mut shard_registries = Vec::with_capacity(plan.num_shards());
        for shard_archive in part.shards {
            let reg = Arc::new(MetricsRegistry::new());
            let snap = Arc::new(ArchiveSnapshot::new(0, shard_archive));
            shards.push(if cfg.obs.enabled {
                EngineHandle::from_snapshot_with_registry(
                    Arc::clone(&net),
                    snap,
                    params.clone(),
                    cfg.clone(),
                    Arc::clone(&reg),
                )
            } else {
                EngineHandle::from_snapshot(Arc::clone(&net), snap, params.clone(), cfg.clone())
            });
            shard_registries.push(reg);
        }
        Self::assemble(
            net,
            params,
            cfg,
            plan,
            shards,
            Some(part.id_maps),
            replication_factor,
            shard_registries,
        )
    }

    /// A sharded engine over live per-shard ingestion: `readers[s]` is the
    /// published-snapshot reader of shard `s`'s [`ArchiveWriter`]
    /// (`hris_traj::ArchiveWriter`). Each query pins at most one epoch per
    /// touched shard.
    ///
    /// Live shards have no parent archive, so cross-seam id remapping is
    /// *namespaced* instead of translated: shard `s`'s trajectory `i`
    /// reports as id `s · 2²⁴ + i`. Seam transition confidence therefore
    /// conservatively sees disjoint reference sets across shards; feed
    /// partition-respecting workloads (or accept the deterministic
    /// best-effort seam) when running live.
    ///
    /// # Panics
    /// Panics unless `readers.len() == plan.num_shards()`, or with 2²⁴ or
    /// more shards.
    #[must_use]
    pub fn live(
        net: Arc<RoadNetwork>,
        readers: Vec<SnapshotReader>,
        params: HrisParams,
        cfg: EngineConfig,
        plan: ShardPlan,
    ) -> ShardedEngine {
        assert_eq!(
            readers.len(),
            plan.num_shards(),
            "one snapshot reader per shard"
        );
        assert!(plan.num_shards() < (1 << 8), "id namespace: < 256 shards");
        let mut shards = Vec::with_capacity(plan.num_shards());
        let mut shard_registries = Vec::with_capacity(plan.num_shards());
        for reader in readers {
            let reg = Arc::new(MetricsRegistry::new());
            shards.push(if cfg.obs.enabled {
                EngineHandle::live_with_registry(
                    Arc::clone(&net),
                    reader,
                    params.clone(),
                    cfg.clone(),
                    Arc::clone(&reg),
                )
            } else {
                EngineHandle::live(Arc::clone(&net), reader, params.clone(), cfg.clone())
            });
            shard_registries.push(reg);
        }
        Self::assemble(net, params, cfg, plan, shards, None, 1.0, shard_registries)
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        net: Arc<RoadNetwork>,
        params: HrisParams,
        cfg: EngineConfig,
        plan: ShardPlan,
        shards: Vec<EngineHandle>,
        id_maps: Option<Vec<Vec<TrajId>>>,
        replication_factor: f64,
        shard_registries: Vec<Arc<MetricsRegistry>>,
    ) -> ShardedEngine {
        let router_registry = Arc::new(MetricsRegistry::new());
        let m = RouterMetrics::new(&router_registry, plan.num_shards());
        let health = (0..plan.num_shards()).map(|_| AtomicU8::new(0)).collect();
        let gate = cfg
            .admission
            .enabled
            .then(|| AdmissionGate::new(cfg.admission.max_inflight, cfg.admission.max_queued));
        let traces = (cfg.obs.enabled && cfg.obs.trace_capacity > 0)
            .then(|| TraceRing::new(cfg.obs.trace_capacity));
        let audits = cfg
            .explain
            .enabled
            .then(|| AuditRing::new(cfg.explain.audit_capacity));
        ShardedEngine {
            net,
            params,
            cfg,
            plan,
            shards,
            id_maps,
            replication_factor,
            health,
            shard_registries,
            router_registry,
            m,
            gate,
            traces,
            audits,
            next_query_id: AtomicU64::new(0),
        }
    }

    /// The router's admission gate, when admission control is enabled.
    #[must_use]
    pub fn admission_gate(&self) -> Option<&AdmissionGate> {
        self.gate.as_ref()
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard plan.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Shard `s`'s engine handle (inspection, direct shard queries).
    #[must_use]
    pub fn shard(&self, s: usize) -> &EngineHandle {
        &self.shards[s]
    }

    /// Stored-copies-per-trajectory ratio of the partition (1.0 in live
    /// mode, where shards ingest independently).
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        self.replication_factor
    }

    /// Marks shard `s` (administratively) healthy or unhealthy.
    pub fn set_shard_health(&self, s: usize, health: ShardHealth) {
        self.health[s].store(
            match health {
                ShardHealth::Healthy => 0,
                ShardHealth::Unhealthy => 1,
            },
            Ordering::Release,
        );
    }

    /// The administrative health mark of shard `s` (does not include the
    /// automatic staleness check of [`ShardedEngine::shard_is_servable`]).
    #[must_use]
    pub fn shard_health(&self, s: usize) -> ShardHealth {
        if self.health[s].load(Ordering::Acquire) == 0 {
            ShardHealth::Healthy
        } else {
            ShardHealth::Unhealthy
        }
    }

    /// Whether the router would currently hand work to shard `s`: marked
    /// healthy, and — for live shards — the published snapshot is within
    /// the staleness bound (`cfg.obs.staleness_bound_s`). Fixed snapshots
    /// are pinned deliberately and never auto-stale.
    #[must_use]
    pub fn shard_is_servable(&self, s: usize) -> bool {
        self.shard_health(s) == ShardHealth::Healthy
            && (!self.shards[s].is_live()
                || self.shards[s].snapshot_age_seconds() <= self.cfg.obs.staleness_bound_s)
    }

    /// Federated metrics: the router's own series plus every shard's
    /// engine series, each stamped with its `shard` label. Deterministic
    /// ordering (export sorts by name, then labels).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::merged(
            std::iter::once(self.router_registry.snapshot()).chain(
                self.shard_registries
                    .iter()
                    .enumerate()
                    .map(|(s, reg)| reg.snapshot().with_labels(&[("shard", &s.to_string())])),
            ),
        )
    }

    /// The router's stitched-trace ring, when tracing is enabled
    /// (`cfg.obs.enabled` with a nonzero `trace_capacity`). The returned
    /// handle shares storage with the router's ring.
    #[must_use]
    pub fn trace_ring(&self) -> Option<TraceRing> {
        self.traces.clone()
    }

    /// The router's explain/audit ring, when
    /// [`ExplainOptions`](hris::ExplainOptions) enabled it. Holds the
    /// audits of scatter-gathered, shed and router-rejected queries;
    /// delegated queries audit on their shard (see
    /// [`ShardedEngine::find_audit`]).
    #[must_use]
    pub fn audit_ring(&self) -> Option<AuditRing> {
        self.audits.clone()
    }

    /// The audit document of one trace id, searching the router's ring
    /// first and then every shard's (a whole-query delegation audits on
    /// the shard that served it, under the router's trace id).
    #[must_use]
    pub fn find_audit(&self, trace_id: u64) -> Option<AuditRecord> {
        if let Some(rec) = self.audits.as_ref().and_then(|r| r.find(trace_id)) {
            return Some(rec);
        }
        self.shards
            .iter()
            .find_map(|s| s.audit_ring().and_then(|r| r.find(trace_id)))
    }

    /// Per-shard status as one JSON array: id, administrative health,
    /// whether the router would currently hand it work, source kind and
    /// the epoch it last served.
    #[must_use]
    pub fn shards_json(&self) -> String {
        let body = (0..self.num_shards())
            .map(|s| {
                format!(
                    "{{\"shard\":{s},\"health\":\"{}\",\"servable\":{},\"live\":{},\"epoch\":{}}}",
                    match self.shard_health(s) {
                        ShardHealth::Healthy => "healthy",
                        ShardHealth::Unhealthy => "unhealthy",
                    },
                    self.shard_is_servable(s),
                    self.shards[s].is_live(),
                    self.shards[s].epoch(),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{body}]")
    }

    /// Starts the router-level telemetry server on `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port).
    ///
    /// `/metrics` and `/varz` serve the **federated** snapshot
    /// ([`ShardedEngine::metrics_snapshot`]: router series plus every
    /// shard's, `shard`-labelled). `/debug/shards` reports per-shard
    /// health/servability/epoch. With tracing enabled, `/debug/traces`
    /// serves the stitched cross-shard span trees; with explain enabled,
    /// `/debug/explain/<trace_id>` serves the audit document of that query
    /// from the router's ring or any shard's. Every shard also contributes
    /// a named health check to `/healthz` (unhealthy when not servable).
    ///
    /// # Errors
    /// Whatever binding the listener returns.
    pub fn serve_metrics(
        self: &Arc<Self>,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<MetricsServer> {
        let on_snapshot = Arc::clone(self);
        let mut state = ServeState::new(Arc::clone(&self.router_registry))
            .snapshot_provider(move || on_snapshot.metrics_snapshot());
        if let Some(ring) = &self.traces {
            state = state.with_traces(ring.clone());
        }
        let on_shards = Arc::clone(self);
        state = state.debug_handler("/debug/shards", move |rest| {
            rest.is_empty().then(|| on_shards.shards_json())
        });
        let on_explain = Arc::clone(self);
        state = state.debug_handler("/debug/explain", move |rest| {
            let trace_id: u64 = rest.parse().ok()?;
            on_explain.find_audit(trace_id).map(|rec| rec.json)
        });
        for s in 0..self.num_shards() {
            let on_health = Arc::clone(self);
            state = state.health_check(&format!("shard_{s}"), move || {
                if on_health.shard_is_servable(s) {
                    Health::Ok
                } else {
                    Health::Unhealthy(format!("shard {s} is not servable"))
                }
            });
        }
        state.serve(addr)
    }

    /// Routes and answers one query. **Canonical entrypoint** — same
    /// contract as [`EngineHandle::infer_query`], byte-identical to it for
    /// partition-respecting queries (see the module docs).
    #[must_use]
    pub fn infer_query(&self, query: &Trajectory, k: usize) -> QueryResult {
        self.infer_query_traced(query, k).0
    }

    /// [`ShardedEngine::infer_query`] plus the [`RouteTrace`] describing
    /// how the query was dispatched (which shards, which epochs, which
    /// splice points).
    ///
    /// With tracing enabled (`cfg.obs.enabled` and a nonzero
    /// `trace_capacity`) the query additionally records one **stitched span
    /// tree** — routing → per-shard local inference → gather → splice →
    /// rerank, with health flips, reroutes and degraded/rejected outcomes
    /// as span events — into the router's trace ring, validated by a
    /// [`TraceAssembler`] (exactly one root, every parent resolvable).
    /// With explain enabled (`cfg.explain`) it records a
    /// [`QueryAudit`] under the same trace id. With both disabled this
    /// path is byte-identical to an untraced router and performs zero
    /// clock reads (test-enforced).
    #[must_use]
    pub fn infer_query_traced(&self, query: &Trajectory, k: usize) -> (QueryResult, RouteTrace) {
        self.m.queries.inc();
        // Identity is minted only when a consumer — the stitched trace
        // ring or the audit ring — is switched on; the disabled path skips
        // even the atomic increment.
        let trace_id = if self.traces.is_some() || self.audits.is_some() {
            next_trace_id()
        } else {
            0
        };

        // Stage 0 — admission. Shedding here costs a mutex lock and
        // nothing else: no validation, no shard is touched.
        let _permit = match self.gate.as_ref().map(AdmissionGate::admit) {
            Some(Admission::Shed) => {
                self.m.rejected.inc();
                self.m.shed.inc();
                self.push_event_audit(
                    trace_id,
                    query,
                    "shed",
                    "admission: waiting room full, query shed",
                );
                return (
                    QueryResult {
                        globals: Vec::new(),
                        stats: Vec::new(),
                        outcome: QueryOutcome::Rejected {
                            reason: RejectReason::Overloaded,
                        },
                    },
                    RouteTrace::rejected(),
                );
            }
            Some(Admission::Admitted(p)) => Some(p),
            None => None,
        };

        // One collector per traced query: every stage — routing, shard
        // batches, gather, splice — records into it, so the whole stitched
        // tree shares one clock origin and needs no cross-shard alignment.
        let collector = self.traces.as_ref().map(|_| SpanCollector::new());
        let root_guard = collector.as_ref().map(|c| c.root("query"));
        let root_id = root_guard.as_ref().map_or(0, SpanGuard::id);
        let spans = collector.as_ref().map(|c| (c, root_id));

        let (result, route) = self.dispatch(query, k, trace_id, spans);

        drop(root_guard);
        if let (Some(ring), Some(c)) = (&self.traces, collector) {
            let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed) + 1;
            let rec = TraceRecord {
                trace_id,
                query_id,
                points: query.points.len(),
                pairs: query.points.len().saturating_sub(1),
                routes: result.globals.len(),
                top_log_score: result.globals.first().map(|g| g.log_score),
                ..TraceRecord::default()
            };
            let mut asm = TraceAssembler::new(trace_id);
            asm.add_spans(c.into_spans());
            match asm.finish(rec) {
                Ok(rec) => {
                    let _ = ring.push(rec);
                }
                Err(e) => debug_assert!(false, "router span tree must stitch: {e}"),
            }
        }
        (result, route)
    }

    /// Validation + spatial dispatch, inside the `routing` span of a traced
    /// query. The `spans` context is `(collector, root span id)`.
    fn dispatch(
        &self,
        query: &Trajectory,
        k: usize,
        trace_id: u64,
        spans: SpanCtx<'_>,
    ) -> (QueryResult, RouteTrace) {
        // Stage 1 — mirror the engine's validation ladder so routing sees
        // the same points the shard engines will serve.
        let mut routing = spans.map(|(c, root)| c.child(root, "routing"));
        let routable = match self.screen(query) {
            Ok(r) => r,
            Err(reason) => {
                self.m.rejected.inc();
                if let (Some((c, _)), Some(rg)) = (spans, routing.as_ref()) {
                    let _ = c.event(
                        rg.id(),
                        "rejected",
                        vec![("reason".to_string(), AttrValue::Text(format!("{reason:?}")))],
                    );
                }
                self.push_event_audit(trace_id, query, "rejected", &format!("rejected: {reason:?}"));
                return (
                    QueryResult {
                        globals: Vec::new(),
                        stats: Vec::new(),
                        outcome: QueryOutcome::Rejected { reason },
                    },
                    RouteTrace::rejected(),
                );
            }
        };

        // Stage 2 — spatial dispatch on the (possibly repaired) points.
        let pts = &routable.query().points;
        let single_home = if matches!(routable, Routable::Opaque(_)) || pts.len() <= 1 {
            // Whole-query delegation: opaque queries cannot be sliced, and
            // ≤1-point queries have no pairs (any shard answers them from
            // the network alone).
            Some(pts.first().map_or(0, |p| self.plan.shard_of_point(p.pos)))
        } else {
            let qb = BBox::covering(pts.iter().map(|p| p.pos)).inflated(self.params.phi_m);
            self.plan.home_shard(&qb)
        };
        if let Some(g) = routing.as_mut() {
            g.attr("points", pts.len());
            g.attr(
                "kind",
                if single_home.is_some() {
                    "single"
                } else {
                    "scatter"
                },
            );
        }
        drop(routing);

        match single_home {
            Some(s) => self.run_single(query, k, s, trace_id, spans),
            None => self.run_scatter(&routable, k, trace_id, spans),
        }
    }

    /// Pushes a routes-free audit document (shed / router-side rejection)
    /// when the explain layer is on.
    fn push_event_audit(&self, trace_id: u64, query: &Trajectory, outcome: &str, event: &str) {
        let Some(ring) = &self.audits else { return };
        let mut audit = QueryAudit::new(trace_id, 0);
        audit.points = query.points.len();
        audit.pairs = query.points.len().saturating_sub(1);
        audit.outcome = outcome.to_string();
        audit.scorer = "none".to_string();
        audit.push_event(event);
        let _ = ring.push(audit.into_record());
    }

    /// The engine's validation screen, reproduced router-side: the router
    /// must know the *post-repair* points to route them, and must reject
    /// exactly when every shard engine would.
    fn screen<'q>(&self, query: &'q Trajectory) -> Result<Routable<'q>, RejectReason> {
        if !self.cfg.validation.enabled {
            return Ok(if query.validate().is_ok() {
                Routable::Clean(query)
            } else {
                Routable::Opaque(query)
            });
        }
        if query.is_empty() {
            return Err(RejectReason::EmptyQuery);
        }
        let lim = &self.cfg.validation.limits;
        let valid = query.validate().is_ok()
            && query.points.iter().all(|p| {
                p.pos.x.abs() <= lim.max_abs_coord_m
                    && p.pos.y.abs() <= lim.max_abs_coord_m
                    && p.t.abs() <= lim.max_abs_time_s
            });
        if valid {
            return Ok(Routable::Clean(query));
        }
        let mut pts = query.points.clone();
        let repairs = sanitize_points(&mut pts, lim);
        if pts.is_empty() {
            return Err(RejectReason::NoUsablePoints);
        }
        Ok(Routable::Repaired(Trajectory::new(query.id, pts), repairs))
    }

    /// Whole-query delegation to shard `s` — byte-identical path. If `s`
    /// is not servable the query moves whole to the nearest servable shard
    /// and the outcome is demoted to `Degraded`.
    ///
    /// The delegated shard serves under the router's trace id
    /// ([`EngineHandle::infer_query_with_trace`]), so its own trace record
    /// and audit are joinable with the router's `shard` span.
    fn run_single(
        &self,
        query: &Trajectory,
        k: usize,
        s: usize,
        trace_id: u64,
        spans: SpanCtx<'_>,
    ) -> (QueryResult, RouteTrace) {
        let n_pairs = query.points.len().saturating_sub(1);
        let (target, rerouted) = if self.shard_is_servable(s) {
            (s, 0)
        } else {
            if let Some((c, root)) = spans {
                let _ = c.event(
                    root,
                    "shard_unhealthy",
                    vec![("shard".to_string(), AttrValue::Int(s as i64))],
                );
            }
            let Some(t) = self.nearest_servable(BBox::covering(query.points.iter().map(|p| p.pos)))
            else {
                return self.reject_no_shard(query, trace_id, spans);
            };
            if let Some((c, root)) = spans {
                let _ = c.event(
                    root,
                    "reroute",
                    vec![
                        ("from".to_string(), AttrValue::Int(s as i64)),
                        ("to".to_string(), AttrValue::Int(t as i64)),
                    ],
                );
            }
            (t, n_pairs.max(1))
        };

        self.m.single.inc();
        self.m.shard_queries[target].inc();
        self.m.shard_pairs[target].add(n_pairs as u64);
        // The shard engine re-runs the same validation ladder on the
        // original query, so repairs/outcomes match the global engine.
        let mut shard_guard = spans.map(|(c, root)| c.child(root, "shard"));
        if let Some(g) = shard_guard.as_mut() {
            g.attr("shard", target);
            g.attr("pairs", n_pairs);
        }
        let mut result = self.shards[target].infer_query_with_trace(query, k, trace_id);
        drop(shard_guard);
        if rerouted > 0 {
            self.m.rerouted.add(rerouted as u64);
            result.outcome = demote_to_degraded(result.outcome, rerouted);
            if let Some((c, root)) = spans {
                let _ = c.event(
                    root,
                    "degraded",
                    vec![("pairs_fell_back".to_string(), AttrValue::Int(rerouted as i64))],
                );
            }
        }
        let trace = RouteTrace {
            kind: RouteKind::Single(target),
            pair_shards: Vec::new(),
            splice_points: Vec::new(),
            epochs: vec![(target, self.shards[target].epoch())],
            rerouted_pairs: rerouted,
        };
        (result, trace)
    }

    /// Scatter-gather: assign each pair to a shard, run maximal same-shard
    /// runs as sub-queries (one pinned epoch per shard), remap trajectory
    /// ids to the global namespace, and run K-GRI over the gathered locals.
    ///
    /// On a traced query, each touched shard's pinned batch records its
    /// phase spans under a router-side `shard` span, and the router-side
    /// K-GRI splice and (when configured) rerank get their own spans —
    /// together with `routing` and `gather` they form the stitched tree.
    fn run_scatter(
        &self,
        routable: &Routable<'_>,
        k: usize,
        trace_id: u64,
        spans: SpanCtx<'_>,
    ) -> (QueryResult, RouteTrace) {
        let q = routable.query();
        let phi = self.params.phi_m;
        let n_pairs = q.points.len() - 1;

        // Pair → shard. Pairs whose φ-box fits a region go there (lowest
        // index); wild pairs go to the shard owning their midpoint.
        let mut pair_shards: Vec<usize> = (0..n_pairs)
            .map(|i| {
                let pb = BBox::covering([q.points[i].pos, q.points[i + 1].pos]).inflated(phi);
                self.plan
                    .home_shard(&pb)
                    .unwrap_or_else(|| self.plan.shard_of_point(pb.center()))
            })
            .collect();

        // Health rerouting.
        let mut rerouted = 0usize;
        for (i, s) in pair_shards.iter_mut().enumerate() {
            if !self.shard_is_servable(*s) {
                let pb = BBox::covering([q.points[i].pos, q.points[i + 1].pos]);
                let Some(t) = self.nearest_servable(pb) else {
                    return self.reject_no_shard(q, trace_id, spans);
                };
                if let Some((c, root)) = spans {
                    let _ = c.event(
                        root,
                        "reroute",
                        vec![
                            ("pair".to_string(), AttrValue::Int(i as i64)),
                            ("from".to_string(), AttrValue::Int(*s as i64)),
                            ("to".to_string(), AttrValue::Int(t as i64)),
                        ],
                    );
                }
                *s = t;
                rerouted += 1;
            }
        }
        self.m.scatter.inc();
        if rerouted > 0 {
            self.m.rerouted.add(rerouted as u64);
        }

        // Maximal same-shard runs: (shard, first pair, last pair).
        let mut runs: Vec<(usize, usize, usize)> = Vec::new();
        for (i, &s) in pair_shards.iter().enumerate() {
            match runs.last_mut() {
                Some((rs, _, hi)) if *rs == s && *hi + 1 == i => *hi = i,
                _ => runs.push((s, i, i)),
            }
        }
        let splice_points: Vec<usize> = runs.iter().skip(1).map(|&(_, lo, _)| lo - 1).collect();
        self.m.splices.add(splice_points.len() as u64);

        // Execute one pinned batch per distinct shard (first-touch order),
        // so a query observes exactly one whole epoch per shard even when
        // its runs revisit a shard.
        let mut shard_runs: Vec<(usize, Vec<usize>)> = Vec::new();
        for (ri, &(s, _, _)) in runs.iter().enumerate() {
            match shard_runs.iter_mut().find(|(rs, _)| *rs == s) {
                Some((_, idxs)) => idxs.push(ri),
                None => shard_runs.push((s, vec![ri])),
            }
        }
        let mut run_locals: Vec<Vec<LocalInferenceResult>> =
            (0..runs.len()).map(|_| Vec::new()).collect();
        let mut epochs = Vec::with_capacity(shard_runs.len());
        for (s, run_idxs) in &shard_runs {
            let subs: Vec<Trajectory> = run_idxs
                .iter()
                .map(|&ri| {
                    let (_, lo, hi) = runs[ri];
                    Trajectory::new(q.id, q.points[lo..=hi + 1].to_vec())
                })
                .collect();
            self.m.shard_queries[*s].inc();
            self.m.shard_pairs[*s].add(subs.iter().map(|t| t.points.len() as u64 - 1).sum());
            // The shard's candidates/local/pair spans land in the router's
            // collector, parented under this shard span — the stitch.
            let mut shard_guard = spans.map(|(c, root)| c.child(root, "shard"));
            if let Some(g) = shard_guard.as_mut() {
                g.attr("shard", *s);
                g.attr("sub_queries", subs.len());
            }
            let shard_spans = spans
                .zip(shard_guard.as_ref())
                .map(|((c, _), g)| (c, g.id()));
            let (locals, epoch) = self.shards[*s].local_inference_pinned_batch_traced(&subs, shard_spans);
            if let Some(g) = shard_guard.as_mut() {
                g.attr("epoch", epoch as i64);
            }
            drop(shard_guard);
            epochs.push((*s, epoch));
            for (&ri, mut locals) in run_idxs.iter().zip(locals) {
                self.remap_sources(*s, &mut locals);
                run_locals[ri] = locals;
            }
        }

        // Gather: concatenate locals in pair order, then phase 3 exactly as
        // the engine runs it.
        let gather_guard = spans.map(|(c, root)| c.child(root, "gather"));
        let locals: Vec<LocalInferenceResult> = run_locals.into_iter().flatten().collect();
        debug_assert_eq!(locals.len(), n_pairs, "one local inference per pair");
        let stats = locals.iter().map(|l| l.stats.clone()).collect();
        drop(gather_guard);
        // The seam splice scores through the exact scorer the shard engines
        // were configured with — same `HrisParams`, same `RerankOptions` —
        // so a sharded deployment can never diverge from a single engine
        // under the same configuration.
        let scorer = configured_scorer(&self.params, &self.cfg.rerank);
        let sctx = ScoringCtx::new(&self.net, &locals, k);
        let globals = match spans {
            None => scorer.top_k(&sctx),
            // Traced: split the configured scorer into its two phases so
            // splice (the paper's K-GRI over the gathered locals) and
            // rerank get their own spans. `LearnedScorer::top_k` is
            // exactly `paper.top_k` + `rerank_in_place`, so the split is
            // byte-identical to the untraced call.
            Some((c, root)) => {
                let splice_guard = c.child(root, "splice");
                let mut globals = PaperScorer::from_params(&self.params).top_k(&sctx);
                drop(splice_guard);
                if let ConfiguredScorer::Learned(learned) = &scorer {
                    let mut rerank_guard = c.child(root, "rerank");
                    rerank_guard.attr("routes", globals.len());
                    let _ = learned.rerank_in_place(&sctx, &mut globals);
                }
                globals
            }
        };
        let outcome = if rerouted > 0 {
            if let Some((c, root)) = spans {
                let _ = c.event(
                    root,
                    "degraded",
                    vec![("pairs_fell_back".to_string(), AttrValue::Int(rerouted as i64))],
                );
            }
            QueryOutcome::Degraded {
                repairs: routable.repairs().unwrap_or_default(),
                pairs_fell_back: rerouted,
            }
        } else if let Some(repairs) = routable.repairs() {
            QueryOutcome::Repaired { repairs }
        } else {
            QueryOutcome::Ok
        };

        // Router-side audit: the shards only ran phases 1–2, so the
        // explain document of a scattered query is the router's to write.
        if let Some(ring) = &self.audits {
            let mut audit = QueryAudit::new(trace_id, 0);
            audit.points = q.points.len();
            audit.pairs = n_pairs;
            audit.outcome = match &outcome {
                QueryOutcome::Ok => "served".to_string(),
                QueryOutcome::Repaired { .. } => "repaired".to_string(),
                QueryOutcome::Degraded { .. } => "degraded".to_string(),
                QueryOutcome::Rejected { .. } => "rejected".to_string(),
            };
            audit.local_routes_per_pair = locals.iter().map(|l| l.routes.len()).collect();
            audit.scorer = scorer.name().to_string();
            for (i, s) in pair_shards.iter().enumerate() {
                audit.push_event(format!("scatter: pair {i} served by shard {s}"));
            }
            if rerouted > 0 {
                audit.push_event(format!(
                    "degraded: {rerouted} pairs rerouted away from unhealthy shards"
                ));
            }
            let rerank = match &scorer {
                ConfiguredScorer::Learned(_) => self.cfg.rerank.model.as_ref(),
                ConfiguredScorer::Paper(_) => None,
            };
            audit.routes = globals
                .iter()
                .take(self.cfg.explain.top_k_routes)
                .enumerate()
                .map(|(rank, g)| {
                    RouteExplanation::explain(
                        &sctx,
                        g,
                        rank,
                        self.params.entropy_floor,
                        self.params.popularity_model,
                        rerank,
                    )
                })
                .collect();
            let _ = ring.push(audit.into_record());
        }

        (
            QueryResult {
                globals,
                stats,
                outcome,
            },
            RouteTrace {
                kind: RouteKind::Scatter,
                pair_shards,
                splice_points,
                epochs,
                rerouted_pairs: rerouted,
            },
        )
    }

    /// Rejection because no servable shard remains: span event + audit +
    /// the counted rejection result.
    fn reject_no_shard(
        &self,
        query: &Trajectory,
        trace_id: u64,
        spans: SpanCtx<'_>,
    ) -> (QueryResult, RouteTrace) {
        if let Some((c, root)) = spans {
            let _ = c.event(
                root,
                "rejected",
                vec![(
                    "reason".to_string(),
                    AttrValue::Text("ShardUnavailable".to_string()),
                )],
            );
        }
        self.push_event_audit(trace_id, query, "rejected", "rejected: ShardUnavailable");
        self.reject_unavailable()
    }

    /// Shard-local → global trajectory ids, in place, on every reference's
    /// source list (the only place shard-local ids escape a shard — K-GRI's
    /// transition confidence intersects them across pairs).
    fn remap_sources(&self, s: usize, locals: &mut [LocalInferenceResult]) {
        for local in locals {
            for r in &mut local.refs.refs {
                for id in &mut r.sources {
                    *id = match &self.id_maps {
                        Some(maps) => maps[s][id.index()],
                        None => TrajId((s as u32) << 24 | (id.0 & 0x00FF_FFFF)),
                    };
                }
            }
        }
    }

    /// The servable shard whose region is nearest to `b`'s center (ties to
    /// the lowest index); `None` when every shard is down.
    fn nearest_servable(&self, b: BBox) -> Option<usize> {
        let c = b.center();
        (0..self.num_shards())
            .filter(|&s| self.shard_is_servable(s))
            .min_by(|&a, &bi| {
                self.plan
                    .region(a)
                    .min_dist(c)
                    .partial_cmp(&self.plan.region(bi).min_dist(c))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    fn reject_unavailable(&self) -> (QueryResult, RouteTrace) {
        self.m.rejected.inc();
        (
            QueryResult {
                globals: Vec::new(),
                stats: Vec::new(),
                outcome: QueryOutcome::Rejected {
                    reason: RejectReason::ShardUnavailable,
                },
            },
            RouteTrace::rejected(),
        )
    }
}

/// Demotes a delegated shard outcome to `Degraded`, preserving whatever
/// repairs the shard reported. A rejection stays a rejection.
fn demote_to_degraded(outcome: QueryOutcome, rerouted: usize) -> QueryOutcome {
    match outcome {
        QueryOutcome::Ok => QueryOutcome::Degraded {
            repairs: PointRepairs::default(),
            pairs_fell_back: rerouted,
        },
        QueryOutcome::Repaired { repairs } => QueryOutcome::Degraded {
            repairs,
            pairs_fell_back: rerouted,
        },
        QueryOutcome::Degraded {
            repairs,
            pairs_fell_back,
        } => QueryOutcome::Degraded {
            repairs,
            pairs_fell_back: pairs_fell_back.max(rerouted),
        },
        rejected @ QueryOutcome::Rejected { .. } => rejected,
    }
}
