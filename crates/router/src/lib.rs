//! Spatial sharding for the HRIS engine: shard plans, per-shard engines,
//! and a scatter-gather query router.
//!
//! The single-process [`EngineHandle`](hris::EngineHandle) serves a whole
//! city from one archive. This crate scales that out: a [`ShardPlan`] cuts
//! the network extent into grid cells with explicit boundary-replication
//! rules, [`hris_traj::partition_archive`] splits the historical archive
//! accordingly, and a [`ShardedEngine`] routes each query to the one shard
//! that can answer it exactly — falling back to scatter-gather across shard
//! seams, with splicing done by the same deterministic machinery the
//! single-shard engine uses.
//!
//! The headline property, enforced by the differential shard-equivalence
//! suite (`tests/shard_equivalence.rs` at the workspace root): for
//! partition-respecting workloads an N-shard engine returns **byte-identical**
//! results to the single-shard engine — same routes, same score bits, same
//! outcomes. See the [`engine`] module docs for the correctness argument,
//! and DESIGN.md §5i for the full sharding model.

#![warn(missing_docs)]

pub mod engine;
pub mod plan;

pub use engine::{RouteKind, RouteTrace, ShardHealth, ShardedEngine};
pub use plan::ShardPlan;
