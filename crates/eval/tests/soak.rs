//! Soak harness integration tests: the warm → overload → recover cycle
//! against a real engine with admission control and live telemetry.
//!
//! The quick smoke runs in a few seconds and is part of the default test
//! suite. The sustained sixty-second soak backs the CI `capacity` job and
//! the README capacity-planning numbers; run it explicitly with:
//!
//! ```text
//! cargo test -p hris-eval --test soak -- --ignored
//! ```

use hris::{EngineConfig, EngineHandle, HrisParams};
use hris_eval::{run_soak, Scenario, ScenarioConfig, SoakConfig, SoakReport};
use hris_obs::MetricsRegistry;
use hris_traj::{resample_to_interval, Trajectory};
use std::sync::Arc;

/// Engine + sparse replay queries on the quick scenario, with a
/// deliberately tiny gate so the overload phase saturates quickly.
fn soak_rig(max_inflight: usize, max_queued: usize) -> (Arc<EngineHandle>, Vec<Trajectory>) {
    let scenario = Scenario::build(ScenarioConfig::quick(23));
    let queries: Vec<Trajectory> = scenario
        .queries
        .iter()
        .map(|qc| resample_to_interval(&qc.dense, 240.0))
        .collect();
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = EngineConfig::builder()
        .observability(true)
        .admission(max_inflight, max_queued)
        .build()
        .unwrap();
    let handle = Arc::new(EngineHandle::from_snapshot_with_registry(
        Arc::new(scenario.net),
        Arc::new(hris_traj::ArchiveSnapshot::new(0, scenario.archive)),
        HrisParams::default(),
        cfg,
        registry,
    ));
    (handle, queries)
}

fn assert_soak_invariants(report: &SoakReport) {
    // Outcome partition: every offered arrival got exactly one outcome.
    for (label, phase) in [("warm", &report.warm), ("overload", &report.overload)] {
        assert_eq!(
            phase.ok + phase.repaired + phase.degraded + phase.rejected,
            phase.offered,
            "{label}: outcome partition must be exact"
        );
        assert!(phase.shed <= phase.rejected, "{label}: sheds are rejects");
    }
    // The waiting room is bounded by construction; the watermark proves
    // the bound held under pressure rather than merely being configured.
    assert!(
        report.queued_high_watermark <= report.max_queued,
        "waiting room exceeded its bound: {} > {}",
        report.queued_high_watermark,
        report.max_queued
    );
    // Shed accounting is consistent between the replay tallies (what
    // callers saw) and the gate counter (what the engine recorded).
    assert!(
        report.shed_total >= report.overload.shed as u64,
        "gate counter lost sheds: {} < {}",
        report.shed_total,
        report.overload.shed
    );
}

#[test]
fn soak_smoke_sheds_under_overload_and_recovers() {
    let (handle, queries) = soak_rig(1, 4);
    let report = run_soak(
        &handle,
        &queries,
        &SoakConfig {
            warm_qps: 10.0,
            warm_s: 0.5,
            overload_qps: 500.0,
            overload_s: 1.5,
            recover_timeout_s: 10.0,
            k: 2,
        },
    );
    assert_soak_invariants(&report);
    assert!(
        report.overload.shed > 0,
        "a 500 qps burst against a 1-slot gate must shed: {report:?}"
    );
    assert!(
        report.warm.shed == 0,
        "warm phase must not shed: {report:?}"
    );
    assert!(
        report.recovery_s.is_some(),
        "/healthz never recovered after the burst: {report:?}"
    );
}

/// The sustained soak behind the CI `capacity` job: ≥60 s of open-loop
/// replay, bounded resident-memory growth, health degradation observed
/// under overload and full recovery afterwards.
#[test]
#[ignore = "sustained 60s soak; run via: cargo test -p hris-eval --test soak -- --ignored"]
fn soak_sixty_seconds_sustained() {
    let (handle, queries) = soak_rig(2, 8);
    let report = run_soak(
        &handle,
        &queries,
        &SoakConfig {
            warm_qps: 20.0,
            warm_s: 10.0,
            overload_qps: 600.0,
            overload_s: 50.0,
            recover_timeout_s: 30.0,
            k: 2,
        },
    );
    assert_soak_invariants(&report);
    assert!(
        report.warm.wall_s + report.overload.wall_s >= 60.0,
        "soak must sustain at least 60s of offered load: {report:?}"
    );
    assert!(report.overload.shed > 0, "sustained burst must shed");
    assert!(
        report.saw_unhealthy_under_overload,
        "/healthz never reported pressure during a 50s saturating burst"
    );
    assert!(
        report.recovery_s.is_some(),
        "/healthz never recovered: {report:?}"
    );
    // Bounded memory growth: a leak proportional to ~30k queries would
    // blow well past this; steady-state serving must not accumulate.
    if report.resident_before.is_some() {
        let growth = report.resident_growth_bytes();
        assert!(
            growth < 256 * 1024 * 1024,
            "resident set grew {growth} bytes over the soak"
        );
    }
}
