//! Printable experiment tables (one per paper figure).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A labelled series table: an x column plus one y column per series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Figure/table identifier, e.g. "Figure 8a".
    pub id: String,
    /// What is being plotted.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// One label per series.
    pub series: Vec<String>,
    /// Rows: (x value, one y per series). `f64::NAN` marks a missing cell.
    pub rows: Vec<(f64, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, x_label: &str, series: Vec<String>) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            series,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the number of y values does not match the series count.
    pub fn push_row(&mut self, x: f64, ys: Vec<f64>) {
        assert_eq!(
            ys.len(),
            self.series.len(),
            "row width must match series count"
        );
        self.rows.push((x, ys));
    }

    /// A column by series name, as (x, y) pairs.
    #[must_use]
    pub fn column(&self, series: &str) -> Option<Vec<(f64, f64)>> {
        let idx = self.series.iter().position(|s| s == series)?;
        Some(self.rows.iter().map(|(x, ys)| (*x, ys[idx])).collect())
    }

    /// Serialises to CSV (header + rows).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (x, ys) in &self.rows {
            out.push_str(&format!("{x}"));
            for y in ys {
                out.push_str(&format!(",{y:.6}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        write!(f, "{:>12}", self.x_label)?;
        for s in &self.series {
            write!(f, " {s:>16}")?;
        }
        writeln!(f)?;
        for (x, ys) in &self.rows {
            write!(f, "{x:>12.2}")?;
            for y in ys {
                if y.is_nan() {
                    write!(f, " {:>16}", "-")?;
                } else {
                    write!(f, " {y:>16.4}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Figure 8a",
            "accuracy vs sampling interval",
            "SR(min)",
            vec!["HRIS".into(), "IVMM".into()],
        );
        t.push_row(3.0, vec![0.85, 0.75]);
        t.push_row(6.0, vec![0.80, 0.68]);
        t
    }

    #[test]
    fn csv_roundtrip_shape() {
        let t = sample();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "SR(min),HRIS,IVMM");
        assert!(lines[1].starts_with('3'));
    }

    #[test]
    fn column_extraction() {
        let t = sample();
        let col = t.column("IVMM").unwrap();
        assert_eq!(col, vec![(3.0, 0.75), (6.0, 0.68)]);
        assert!(t.column("nope").is_none());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = sample();
        t.push_row(9.0, vec![0.7]);
    }

    #[test]
    fn display_renders_nan_as_dash() {
        let mut t = sample();
        t.push_row(9.0, vec![f64::NAN, 0.6]);
        let s = t.to_string();
        assert!(s.contains('-'));
        assert!(s.contains("Figure 8a"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let u: Table = serde_json::from_str(&json).unwrap();
        assert_eq!(u.rows.len(), 2);
        assert_eq!(u.series, t.series);
    }
}
