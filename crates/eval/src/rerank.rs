//! Training and evaluation harness for the learned re-ranker.
//!
//! The simulator fleet gives exact ground truth for every archive trip, so
//! labelled training pairs come for free: resample an archive trip down to
//! the experiment's interval, run local inference + the paper's K-GRI over
//! it, and label each candidate global route by whether it is the most
//! accurate candidate of its top-K (and accurate enough in absolute terms).
//! The evaluation queries of a [`Scenario`] are generated *outside* the
//! archive, so the uplift numbers below are held-out.

use crate::metrics::accuracy_al;
use crate::scenario::Scenario;
use hris::{
    extract_features, train_logistic, Hris, HrisParams, LearnedScorer, PaperScorer, RerankModel,
    RouteFeatures, RouteScorer, ScoringCtx, SgdConfig,
};
use hris_traj::resample_to_interval;

/// Knobs of the training-pair generator.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Sampling interval the archive trips are thinned to, seconds.
    pub interval_s: f64,
    /// Candidates per trip: the paper's top-K that the model learns to
    /// re-rank. Larger than the serving `k3` so the model sees routes the
    /// DP ranked poorly.
    pub k: usize,
    /// Upper bound on archive trips used (spread deterministically over
    /// the archive). Keeps training tractable on the full fleet.
    pub max_trips: usize,
    /// A candidate only counts as positive if its `A_L` reaches this, so
    /// trips where every candidate is wrong contribute only negatives.
    pub min_positive_al: f64,
    /// SGD settings for [`train_logistic`].
    pub sgd: SgdConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            interval_s: 180.0,
            k: 8,
            max_trips: 80,
            min_positive_al: 0.8,
            sgd: SgdConfig::default(),
        }
    }
}

/// Labelled training pairs from the simulator fleet: one `(features,
/// is_best)` pair per top-K candidate of each sampled archive trip.
#[must_use]
pub fn training_pairs(
    s: &Scenario,
    params: &HrisParams,
    cfg: &TrainConfig,
) -> Vec<(RouteFeatures, bool)> {
    let hris = Hris::new(&s.net, s.archive.clone(), params.clone());
    let scorer = PaperScorer::from_params(params);
    let trips = s.archive.trajectories();
    let step = (trips.len() / cfg.max_trips.max(1)).max(1);
    let mut pairs = Vec::new();
    for (trip, truth) in trips
        .iter()
        .zip(&s.archive_truth)
        .step_by(step)
        .take(cfg.max_trips)
    {
        let query = resample_to_interval(trip, cfg.interval_s);
        if query.len() < 2 {
            continue;
        }
        let locals = hris.local_inference(&query);
        let sctx = ScoringCtx::new(&s.net, &locals, cfg.k);
        let globals = scorer.top_k(&sctx);
        if globals.len() < 2 {
            continue; // nothing to re-rank, no signal
        }
        let accs: Vec<f64> = globals
            .iter()
            .map(|g| accuracy_al(truth, &g.route, &s.net))
            .collect();
        let best = accs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if best < cfg.min_positive_al {
            continue; // all candidates wrong: ranking them is noise
        }
        for (g, &acc) in globals.iter().zip(&accs) {
            let features =
                extract_features(&sctx, g, params.entropy_floor, params.popularity_model);
            pairs.push((features, (best - acc).abs() < 1e-9));
        }
    }
    pairs
}

/// Trains a re-ranking model on the scenario's simulator fleet.
#[must_use]
pub fn train_reranker(s: &Scenario, params: &HrisParams, cfg: &TrainConfig) -> RerankModel {
    train_logistic(&training_pairs(s, params, cfg), &cfg.sgd)
}

/// Held-out uplift of learned re-ranking over the paper's top-1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpliftReport {
    /// Mean `A_L` of the paper's top-1 route.
    pub baseline_al: f64,
    /// Mean `A_L` of the re-ranked top-1 route.
    pub reranked_al: f64,
    /// Mean `A_L` of the best candidate in the top-K (the ceiling any
    /// re-ranker could reach).
    pub oracle_al: f64,
    /// Evaluation queries scored.
    pub queries: usize,
    /// Training pairs the model was fitted on.
    pub train_pairs: usize,
}

impl UpliftReport {
    /// Absolute uplift of re-ranking over the paper baseline.
    #[must_use]
    pub fn uplift(&self) -> f64 {
        self.reranked_al - self.baseline_al
    }

    /// Human-readable summary block.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "== Learned re-ranking (held-out, {} queries, {} training pairs) ==\n\
             paper top-1 A_L    : {:.4}\n\
             reranked top-1 A_L : {:.4}   (uplift {:+.4})\n\
             top-K oracle A_L   : {:.4}\n",
            self.queries,
            self.train_pairs,
            self.baseline_al,
            self.reranked_al,
            self.uplift(),
            self.oracle_al,
        )
    }

    /// The `"rerank"` JSON block of the metrics file.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"baseline_al\":{},\"reranked_al\":{},\"uplift\":{},\"oracle_al\":{},\
             \"queries\":{},\"train_pairs\":{}}}",
            self.baseline_al,
            self.reranked_al,
            self.uplift(),
            self.oracle_al,
            self.queries,
            self.train_pairs,
        )
    }
}

/// Scores the held-out evaluation queries with and without re-ranking.
///
/// Both arms rank the same paper top-K (`cfg.k` candidates); the baseline
/// takes the DP's first candidate, the learned arm takes the re-ranked
/// first candidate. `train_pairs` is carried into the report for context.
#[must_use]
pub fn evaluate_uplift(
    s: &Scenario,
    params: &HrisParams,
    model: &RerankModel,
    cfg: &TrainConfig,
    train_pairs: usize,
) -> UpliftReport {
    let hris = Hris::new(&s.net, s.archive.clone(), params.clone());
    let paper = PaperScorer::from_params(params);
    let learned = LearnedScorer::new(paper, model);
    let (mut base, mut rer, mut oracle) = (0.0, 0.0, 0.0);
    let mut n = 0usize;
    for q in &s.queries {
        let query = resample_to_interval(&q.dense, cfg.interval_s);
        if query.len() < 2 {
            continue;
        }
        let locals = hris.local_inference(&query);
        let sctx = ScoringCtx::new(&s.net, &locals, cfg.k);
        let mut globals = paper.top_k(&sctx);
        let Some(first) = globals.first() else {
            continue;
        };
        base += accuracy_al(&q.truth, &first.route, &s.net);
        oracle += globals
            .iter()
            .map(|g| accuracy_al(&q.truth, &g.route, &s.net))
            .fold(0.0f64, f64::max);
        let _ = learned.rerank_in_place(&sctx, &mut globals);
        rer += accuracy_al(&q.truth, &globals[0].route, &s.net);
        n += 1;
    }
    let denom = n.max(1) as f64;
    UpliftReport {
        baseline_al: base / denom,
        reranked_al: rer / denom,
        oracle_al: oracle / denom,
        queries: n,
        train_pairs,
    }
}

/// Trains on the fleet and evaluates on the held-out queries in one call.
#[must_use]
pub fn train_and_evaluate(s: &Scenario, params: &HrisParams, cfg: &TrainConfig) -> UpliftReport {
    let pairs = training_pairs(s, params, cfg);
    let model = train_logistic(&pairs, &cfg.sgd);
    evaluate_uplift(s, params, &model, cfg, pairs.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn tiny() -> Scenario {
        let mut cfg = ScenarioConfig::quick(23);
        cfg.sim.num_trips = 250;
        cfg.num_queries = 3;
        Scenario::build(cfg)
    }

    #[test]
    fn training_pairs_have_positives_and_negatives() {
        let s = tiny();
        let cfg = TrainConfig {
            max_trips: 30,
            ..TrainConfig::default()
        };
        let pairs = training_pairs(&s, &HrisParams::default(), &cfg);
        assert!(!pairs.is_empty(), "fleet must yield training pairs");
        assert!(pairs.iter().any(|(_, y)| *y), "no positive labels");
        assert!(pairs.iter().any(|(_, y)| !*y), "no negative labels");
        for (f, _) in &pairs {
            for v in f.to_array() {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn uplift_report_is_bounded_and_consistent() {
        let s = tiny();
        let cfg = TrainConfig {
            max_trips: 25,
            ..TrainConfig::default()
        };
        let report = train_and_evaluate(&s, &HrisParams::default(), &cfg);
        assert!(report.queries > 0);
        assert!((0.0..=1.0).contains(&report.baseline_al));
        assert!((0.0..=1.0).contains(&report.reranked_al));
        assert!((0.0..=1.0).contains(&report.oracle_al));
        // The oracle bounds both arms: re-ranking can only permute the
        // candidates the oracle maxes over.
        assert!(report.oracle_al >= report.baseline_al - 1e-9);
        assert!(report.oracle_al >= report.reranked_al - 1e-9);
        let json = report.to_json();
        for key in [
            "baseline_al",
            "reranked_al",
            "uplift",
            "oracle_al",
            "queries",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn zero_model_has_zero_uplift() {
        let s = tiny();
        let cfg = TrainConfig {
            max_trips: 10,
            ..TrainConfig::default()
        };
        let report = evaluate_uplift(&s, &HrisParams::default(), &RerankModel::zeroed(), &cfg, 0);
        assert_eq!(report.uplift(), 0.0, "zero model must not move top-1");
    }
}
