//! Scenario builder: synthetic city + taxi archive + query workload.
//!
//! Queries follow the paper's protocol (Section IV-B): each query starts
//! from a *high-sampling-rate* trajectory (20 s native interval, like
//! GeoLife) whose true route is known, and is re-sampled down to the
//! experiment's interval at evaluation time. The query's route is drawn
//! from the same travel-demand distribution as the archive (people drive
//! the same city), but the query's own GPS points are **not** part of the
//! archive.

use hris_roadnet::{generator, NetworkConfig, RoadNetwork, Route};
use hris_traj::simulator::drive_route;
use hris_traj::{SimConfig, Simulator, TrajId, Trajectory, TrajectoryArchive};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One evaluation case: a dense trajectory and its exact route.
#[derive(Debug, Clone)]
pub struct QueryCase {
    /// High-rate (≈20 s) noisy trajectory, to be resampled per experiment.
    pub dense: Trajectory,
    /// Exact ground-truth route.
    pub truth: Route,
}

/// Scenario parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// City generator settings.
    pub net: NetworkConfig,
    /// Fleet simulation settings (archive size, skew, noise, …).
    pub sim: SimConfig,
    /// Number of evaluation queries.
    pub num_queries: usize,
    /// Acceptable ground-truth route length band for queries, metres.
    pub query_len_m: (f64, f64),
    /// Native sampling interval of the dense query trajectories, seconds.
    pub query_interval_s: f64,
    /// GPS noise applied to query points, metres.
    pub query_noise_m: f64,
    /// Seed for query generation (independent of the archive seed).
    pub seed: u64,
}

impl ScenarioConfig {
    /// A laptop-fast scenario for tests and the default experiment mode:
    /// a ~14 km city with 10–14 km queries, long enough that even a 15 min
    /// sampling interval leaves ≥ 3 points per query.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        ScenarioConfig {
            net: NetworkConfig {
                blocks_x: 48,
                blocks_y: 48,
                block_m: 300.0,
                arterial_every: 6,
                seed: seed ^ 0x51,
                ..NetworkConfig::default()
            },
            sim: SimConfig {
                num_trips: 2500,
                num_od_patterns: 70,
                min_trip_dist_m: 6_000.0,
                route_skew: 2.2,
                pattern_trip_frac: 0.85,
                seed: seed ^ 0xA5A5,
                ..SimConfig::default()
            },
            num_queries: 12,
            query_len_m: (9_000.0, 14_000.0),
            query_interval_s: 20.0,
            query_noise_m: 15.0,
            seed,
        }
    }

    /// The paper-scale scenario: ~25 km city, thousands of trips, queries
    /// around 20 km (Table II's default `L`).
    #[must_use]
    pub fn full(seed: u64) -> Self {
        ScenarioConfig {
            net: NetworkConfig::large(seed ^ 0x17), // 64×64 blocks, 400 m
            sim: SimConfig {
                num_trips: 6000,
                num_od_patterns: 150,
                min_trip_dist_m: 8_000.0,
                route_skew: 2.2,
                pattern_trip_frac: 0.85,
                seed: seed ^ 0xBEEF,
                ..SimConfig::default()
            },
            num_queries: 30,
            query_len_m: (15_000.0, 25_000.0),
            query_interval_s: 20.0,
            query_noise_m: 15.0,
            seed,
        }
    }
}

/// A fully materialised experimental world.
pub struct Scenario {
    /// The synthetic city.
    pub net: RoadNetwork,
    /// The historical archive the system mines.
    pub archive: TrajectoryArchive,
    /// Ground-truth route of each archive trajectory (diagnostics only —
    /// HRIS never sees these).
    pub archive_truth: Vec<Route>,
    /// The evaluation queries.
    pub queries: Vec<QueryCase>,
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
}

impl Scenario {
    /// Builds the scenario deterministically from its configuration.
    #[must_use]
    pub fn build(config: ScenarioConfig) -> Self {
        let net = generator::generate(&config.net);
        let mut sim = Simulator::new(&net, config.sim.clone());
        let (archive, archive_truth) = sim.generate_archive();

        // Queries: sample routes from the same demand model by running the
        // simulator further (its RNG continues past the archive trips), then
        // re-drive each route densely.
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_mul(0x9E37_79B9));
        let mut queries = Vec::with_capacity(config.num_queries);
        let mut guard = 0usize;
        while queries.len() < config.num_queries && guard < config.num_queries * 200 {
            guard += 1;
            let Some(trip) = sim.generate_trips_n(1).into_iter().next() else {
                break;
            };
            let len = trip.route.length(&net);
            if len < config.query_len_m.0 || len > config.query_len_m.1 {
                continue;
            }
            let speed_factor = rng.gen_range(0.6..0.9);
            let Some(points) = drive_route(
                &net,
                &trip.route,
                trip.depart_t,
                config.query_interval_s,
                speed_factor,
            ) else {
                continue;
            };
            let dense = Trajectory::new(TrajId(queries.len() as u32), points);
            let noisy = hris_traj::add_gps_noise(&dense, config.query_noise_m, sim.rng());
            queries.push(QueryCase {
                dense: noisy,
                truth: trip.route,
            });
        }
        Scenario {
            net,
            archive,
            archive_truth,
            queries,
            config,
        }
    }

    /// Splits the archive for ingest-while-querying runs: a bulk-loaded
    /// seed archive holding roughly `seed_frac` of the trips, plus the
    /// remaining trips in arrival order, ready to stream through an
    /// [`ArchiveWriter`](hris_traj::ArchiveWriter). Deterministic.
    #[must_use]
    pub fn ingestion_split(&self, seed_frac: f64) -> (TrajectoryArchive, Vec<Trajectory>) {
        let trips = self.archive.trajectories();
        let cut = ((trips.len() as f64) * seed_frac.clamp(0.0, 1.0)).round() as usize;
        let cut = cut.min(trips.len());
        (
            TrajectoryArchive::new(trips[..cut].to_vec()),
            trips[cut..].to_vec(),
        )
    }

    /// A thinned copy of the archive keeping roughly `frac` of the trips
    /// (deterministic). Drives the reference-density sweep (Figure 10).
    #[must_use]
    pub fn thinned_archive(&self, frac: f64) -> TrajectoryArchive {
        let keep_every = (1.0 / frac.clamp(0.001, 1.0)).round().max(1.0) as usize;
        let trips: Vec<Trajectory> = self
            .archive
            .trajectories()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % keep_every == 0)
            .map(|(_, t)| t.clone())
            .collect();
        TrajectoryArchive::new(trips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        let mut cfg = ScenarioConfig::quick(3);
        cfg.sim.num_trips = 300;
        cfg.num_queries = 4;
        Scenario::build(cfg)
    }

    #[test]
    fn builds_requested_sizes() {
        let s = scenario();
        assert_eq!(s.archive.num_trajectories(), 300);
        assert_eq!(s.queries.len(), 4);
        assert_eq!(s.archive_truth.len(), 300);
    }

    #[test]
    fn queries_respect_length_band() {
        let s = scenario();
        for q in &s.queries {
            let len = q.truth.length(&s.net);
            assert!(len >= s.config.query_len_m.0 && len <= s.config.query_len_m.1);
            assert!(q.truth.is_connected(&s.net));
            // Dense sampling: ~query_interval_s cadence.
            assert!(q.dense.len() >= 10);
            assert!(q.dense.mean_interval() <= s.config.query_interval_s + 1.0);
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = scenario();
        let b = scenario();
        assert_eq!(a.queries.len(), b.queries.len());
        for (x, y) in a.queries.iter().zip(b.queries.iter()) {
            assert_eq!(x.truth, y.truth);
            assert_eq!(x.dense.points, y.dense.points);
        }
    }

    #[test]
    fn ingestion_split_preserves_every_trip_in_order() {
        let s = scenario();
        let (seed_archive, stream) = s.ingestion_split(0.5);
        assert_eq!(
            seed_archive.num_trajectories() + stream.len(),
            s.archive.num_trajectories()
        );
        assert!(seed_archive.num_trajectories() > 0 && !stream.is_empty());
        // Streaming trips keep archive order, so replaying them through a
        // writer reproduces the original archive's trajectory sequence.
        let replayed: Vec<_> = seed_archive
            .trajectories()
            .iter()
            .chain(stream.iter())
            .map(|t| t.points.clone())
            .collect();
        let original: Vec<_> = s
            .archive
            .trajectories()
            .iter()
            .map(|t| t.points.clone())
            .collect();
        assert_eq!(replayed, original);
    }

    #[test]
    fn thinned_archive_shrinks() {
        let s = scenario();
        let half = s.thinned_archive(0.5);
        assert!(half.num_trajectories() < s.archive.num_trajectories());
        assert!(half.num_trajectories() >= s.archive.num_trajectories() / 3);
        let full = s.thinned_archive(1.0);
        assert_eq!(full.num_trajectories(), s.archive.num_trajectories());
    }
}
