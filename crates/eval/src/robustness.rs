//! Dirty-data robustness pass: a seeded fault corpus through the tolerant
//! archive loader and the degraded-mode [`QueryEngine`], with all
//! quarantine/repair/degradation accounting on one shared metrics registry.
//!
//! The pass is deterministic for a fixed seed — the corpus, the load report
//! and every [`QueryOutcome`](hris::QueryOutcome) replay identically — so its numbers can be
//! asserted in tests and diffed across runs.

use crate::scenario::Scenario;
use hris::prelude::*;
use hris_obs::{MetricsRegistry, MetricsSnapshot};
use hris_traj::{
    encode_trips, fault_corpus, resample_to_interval, FaultInjector, LoadReport,
    TolerantLoadOptions, Trajectory, TrajectoryArchive,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Outcome of one robustness pass: per-outcome and per-fault-kind counts,
/// the archive quarantine report, and the registry snapshot carrying the
/// `hris_engine_*_total` / `hris_*_quarantined_total` counters.
#[derive(Debug, Clone)]
pub struct RobustnessReport {
    /// Corrupted queries pushed through the engine.
    pub cases: usize,
    /// [`QueryOutcome::label`](hris::QueryOutcome::label) → count over the whole corpus.
    pub outcome_counts: BTreeMap<&'static str, usize>,
    /// Fault kind name → ([`QueryOutcome::label`](hris::QueryOutcome::label) → count).
    pub by_fault: BTreeMap<&'static str, BTreeMap<&'static str, usize>>,
    /// Quarantine accounting of the corrupted-archive load.
    pub load_report: LoadReport,
    /// Registry state after the pass (engine + loader counters).
    pub snapshot: MetricsSnapshot,
}

impl RobustnessReport {
    /// Count for one outcome label ("ok", "repaired", "degraded",
    /// "rejected"); 0 when the label never occurred.
    #[must_use]
    pub fn count(&self, label: &str) -> usize {
        self.outcome_counts.get(label).copied().unwrap_or(0)
    }

    /// Human-readable end-of-pass summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Robustness — fault corpus ==");
        let _ = writeln!(
            out,
            "   cases {}   ok {}   repaired {}   degraded {}   rejected {}",
            self.cases,
            self.count("ok"),
            self.count("repaired"),
            self.count("degraded"),
            self.count("rejected"),
        );
        for (kind, counts) in &self.by_fault {
            let cells: Vec<String> = counts.iter().map(|(l, n)| format!("{l} {n}")).collect();
            let _ = writeln!(out, "   {kind:>24}: {}", cells.join("  "));
        }
        let _ = writeln!(
            out,
            "   archive: loaded {} quarantined {} points quarantined {} teleports removed {}",
            self.load_report.trajectories_loaded,
            self.load_report.trajectories_quarantined,
            self.load_report.points_quarantined,
            self.load_report.teleports_removed,
        );
        out
    }

    /// The report as one JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let counts_obj = |m: &BTreeMap<&'static str, usize>| {
            let cells: Vec<String> = m.iter().map(|(l, n)| format!("\"{l}\":{n}")).collect();
            format!("{{{}}}", cells.join(","))
        };
        let by_fault: Vec<String> = self
            .by_fault
            .iter()
            .map(|(k, m)| format!("\"{k}\":{}", counts_obj(m)))
            .collect();
        format!(
            "{{\"cases\":{},\"outcomes\":{},\"by_fault\":{{{}}},\"load_report\":{},\"registry\":{}}}",
            self.cases,
            counts_obj(&self.outcome_counts),
            by_fault.join(","),
            self.load_report.to_json(),
            self.snapshot.to_json(),
        )
    }
}

/// Runs the robustness pass: corrupts the scenario's query workload with
/// every fault kind, loads a truncated corrupted archive through the
/// tolerant loader, then answers the whole corpus with a degraded-mode
/// engine — loader and engine counting on the same registry.
#[must_use]
pub fn evaluate_robustness(
    scenario: &Scenario,
    params: &HrisParams,
    seed: u64,
    cases: usize,
) -> RobustnessReport {
    // Base trips: the scenario's own resampled queries — realistic on-map
    // inputs for the injector to corrupt.
    let base: Vec<Trajectory> = scenario
        .queries
        .iter()
        .map(|q| resample_to_interval(&q.dense, 180.0))
        .collect();
    let corpus = fault_corpus(seed, &base, cases);
    let registry = Arc::new(MetricsRegistry::new());

    // Archive leg: serialize the corrupted trips, truncate the blob, load it
    // tolerantly, and put the quarantine accounting on the shared registry.
    let corrupted: Vec<Trajectory> = corpus.iter().map(|(_, t)| t.clone()).collect();
    let blob = encode_trips(&corrupted);
    let cut = FaultInjector::new(seed ^ 0x9e37_79b9).truncate_blob(&blob);
    let (_salvaged, load_report) =
        TrajectoryArchive::from_bytes_tolerant(cut, &TolerantLoadOptions::default());
    load_report.record_on(&registry);

    // Query leg: the full corpus through the degraded-mode engine.
    let hris = Hris::new(&scenario.net, scenario.archive.clone(), params.clone());
    let engine = QueryEngine::with_registry(&hris, EngineConfig::default(), Arc::clone(&registry));
    let results = engine.infer_batch_detailed(&corrupted, params.k3.max(1));

    let mut outcome_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut by_fault: BTreeMap<&'static str, BTreeMap<&'static str, usize>> = BTreeMap::new();
    for ((kind, _), r) in corpus.iter().zip(&results) {
        let label = r.outcome.label();
        *outcome_counts.entry(label).or_insert(0) += 1;
        *by_fault
            .entry(kind.name())
            .or_default()
            .entry(label)
            .or_insert(0) += 1;
    }
    RobustnessReport {
        cases: results.len(),
        outcome_counts,
        by_fault,
        load_report,
        snapshot: registry.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use hris_traj::FaultKind;

    fn scenario() -> Scenario {
        let mut cfg = ScenarioConfig::quick(19);
        cfg.sim.num_trips = 150;
        cfg.num_queries = 3;
        Scenario::build(cfg)
    }

    #[test]
    fn robustness_pass_accounts_every_case() {
        let s = scenario();
        let report = evaluate_robustness(&s, &HrisParams::default(), 7, 24);
        assert_eq!(report.cases, 24);
        assert_eq!(report.outcome_counts.values().sum::<usize>(), 24);
        // 24 cases cycle all 8 fault kinds 3× each.
        assert_eq!(report.by_fault.len(), FaultKind::ALL.len());
        for counts in report.by_fault.values() {
            assert_eq!(counts.values().sum::<usize>(), 3);
        }
        // Injected empties must be rejected; injected NaNs never pass clean.
        assert!(report.count("rejected") >= 3, "{:?}", report.outcome_counts);
        assert!(
            report.count("repaired") + report.count("degraded") > 0,
            "{:?}",
            report.outcome_counts
        );
    }

    #[test]
    fn robustness_counters_land_on_the_shared_registry() {
        let s = scenario();
        let report = evaluate_robustness(&s, &HrisParams::default(), 7, 24);
        let snap = &report.snapshot;
        assert_eq!(snap.counter("hris_engine_queries_total"), Some(24));
        assert!(snap.counter("hris_engine_rejected_total").unwrap_or(0) >= 3);
        assert!(snap.counter("hris_engine_repaired_total").is_some());
        assert!(snap.counter("hris_engine_degraded_total").is_some());
        assert!(snap.counter("hris_records_quarantined_total").is_some());
        // The same counters appear in the Prometheus text exposition.
        let prom = snap.to_prometheus();
        assert!(prom.contains("hris_engine_degraded_total"));
        assert!(prom.contains("hris_records_quarantined_total"));
    }

    #[test]
    fn robustness_pass_is_deterministic_and_json_parses() {
        let s = scenario();
        let a = evaluate_robustness(&s, &HrisParams::default(), 7, 16);
        let b = evaluate_robustness(&s, &HrisParams::default(), 7, 16);
        assert_eq!(a.outcome_counts, b.outcome_counts);
        assert_eq!(a.by_fault, b.by_fault);
        assert_eq!(a.load_report, b.load_report);
        let parsed: serde_json::Value =
            serde_json::from_str(&a.to_json()).expect("robustness JSON parses");
        assert_eq!(parsed["cases"].as_i64(), Some(16));
        assert!(parsed["registry"].get("metrics").is_some());
        assert!(a.summary().contains("fault corpus"));
    }
}
