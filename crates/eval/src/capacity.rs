//! Replay-driven load generation and the sustained soak harness.
//!
//! ROADMAP item 2's serving half: prove the engine *survives* heavy
//! traffic, not just serves it. Three pieces:
//!
//! * [`run_replay`] — an open-loop load generator. Arrival times are
//!   precomputed (`t_i = i / qps`) and a worker pool much larger than the
//!   admission gate's capacity fires them on schedule, so — unlike a
//!   closed loop — arrivals do **not** slow down when the engine does.
//!   That is what makes overload reachable at all: a closed loop
//!   self-throttles and can never demonstrate shedding.
//! * [`run_soak`] — warm → overload → recover against a live
//!   [`EngineHandle`] with its real telemetry server: asserts nonzero
//!   shed accounting under overload, a bounded waiting room (the
//!   high-watermark never exceeds the configured depth), `/healthz`
//!   flipping 503 under pressure and back to 200 once the backlog
//!   drains, and bounded resident-memory growth.
//! * [`resident_memory_bytes`] — `/proc/self/statm` resident set, the
//!   number the memory-growth assertion and the `capacity` section of
//!   `BENCH_e2e.json` are based on (Linux only; `None` elsewhere).
//!
//! The harness exercises the same entrypoints production traffic would:
//! [`EngineHandle::infer_query`] behind the admission gate, and the HTTP
//! endpoints from `EngineHandle::serve_metrics`.

use hris::{EngineHandle, QueryOutcome, RejectReason};
use hris_traj::Trajectory;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one open-loop replay run.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Offered load, queries per second (arrival schedule `t_i = i / qps`).
    pub offered_qps: f64,
    /// How long to keep offering load, seconds.
    pub duration_s: f64,
    /// Worker threads firing arrivals. Must exceed the admission gate's
    /// `max_inflight + max_queued` for the run to reach the shed path;
    /// the soak harness sizes this automatically.
    pub workers: usize,
    /// Top-K requested per query.
    pub k: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            offered_qps: 50.0,
            duration_s: 2.0,
            workers: 8,
            k: 2,
        }
    }
}

/// Outcome tallies and latency summary of one replay run.
///
/// `ok + repaired + degraded + rejected == offered` (every arrival gets
/// exactly one outcome); `shed <= rejected` (a shed is one kind of
/// rejection).
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Arrivals fired.
    pub offered: usize,
    /// Queries answered `Ok`.
    pub ok: usize,
    /// Queries answered after input repair.
    pub repaired: usize,
    /// Queries answered through the degradation chain.
    pub degraded: usize,
    /// Queries rejected (all reasons, sheds included).
    pub rejected: usize,
    /// Queries shed by admission control (`Rejected{Overloaded}`).
    pub shed: usize,
    /// Wall time of the run, seconds.
    pub wall_s: f64,
    /// Completed arrivals per wall second.
    pub achieved_qps: f64,
    /// Mean per-query wall milliseconds (admitted and shed alike).
    pub mean_latency_ms: f64,
    /// Slowest single query, milliseconds.
    pub max_latency_ms: f64,
}

impl ReplayReport {
    /// Fraction of offered load that was shed.
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// Drives `fire` with open-loop arrivals at `cfg.offered_qps` for
/// `cfg.duration_s`, cycling through `queries`. Returns the outcome
/// tallies. Generic over the serving front so the same generator drives
/// an [`EngineHandle`], a sharded router, or a stub in tests.
pub fn run_replay<F>(queries: &[Trajectory], cfg: &ReplayConfig, fire: F) -> ReplayReport
where
    F: Fn(&Trajectory) -> QueryOutcome + Send + Sync,
{
    assert!(!queries.is_empty(), "replay needs at least one query");
    assert!(cfg.offered_qps > 0.0, "replay needs a positive rate");
    let total = (cfg.offered_qps * cfg.duration_s).ceil() as usize;
    let interval = Duration::from_secs_f64(1.0 / cfg.offered_qps);
    let next = AtomicUsize::new(0);
    let start = Instant::now();

    struct Tally {
        ok: usize,
        repaired: usize,
        degraded: usize,
        rejected: usize,
        shed: usize,
        lat_sum_ms: f64,
        lat_max_ms: f64,
    }
    let tally = std::sync::Mutex::new(Tally {
        ok: 0,
        repaired: 0,
        degraded: 0,
        rejected: 0,
        shed: 0,
        lat_sum_ms: 0.0,
        lat_max_ms: 0.0,
    });

    std::thread::scope(|s| {
        for _ in 0..cfg.workers.max(1) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    return;
                }
                // Open-loop: fire at the scheduled instant, not when the
                // previous query finished.
                let due = interval * i as u32;
                let now = start.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let t0 = Instant::now();
                let outcome = fire(&queries[i % queries.len()]);
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                let mut t = tally.lock().expect("replay tally");
                t.lat_sum_ms += ms;
                t.lat_max_ms = t.lat_max_ms.max(ms);
                match outcome {
                    QueryOutcome::Ok => t.ok += 1,
                    QueryOutcome::Repaired { .. } => t.repaired += 1,
                    QueryOutcome::Degraded { .. } => t.degraded += 1,
                    QueryOutcome::Rejected { reason } => {
                        t.rejected += 1;
                        if reason == RejectReason::Overloaded {
                            t.shed += 1;
                        }
                    }
                }
            });
        }
    });

    let wall_s = start.elapsed().as_secs_f64();
    let t = tally.into_inner().expect("replay tally");
    ReplayReport {
        offered: total,
        ok: t.ok,
        repaired: t.repaired,
        degraded: t.degraded,
        rejected: t.rejected,
        shed: t.shed,
        wall_s,
        achieved_qps: total as f64 / wall_s,
        mean_latency_ms: if total == 0 {
            0.0
        } else {
            t.lat_sum_ms / total as f64
        },
        max_latency_ms: t.lat_max_ms,
    }
}

/// Resident set size of this process in bytes, from `/proc/self/statm`.
/// `None` on platforms without procfs.
#[must_use]
pub fn resident_memory_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// Minimal HTTP/1.1 GET against a local endpoint; returns
/// `(status, body)`. The soak harness polls the engine's real `/healthz`
/// with this instead of peeking at internal state.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf)?;
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Configuration of the warm → overload → recover soak.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Offered load during the warm phase, qps.
    pub warm_qps: f64,
    /// Warm-phase length, seconds.
    pub warm_s: f64,
    /// Offered load during the overload burst, qps. Should be far above
    /// the engine's capacity so the waiting room saturates.
    pub overload_qps: f64,
    /// Overload-burst length, seconds.
    pub overload_s: f64,
    /// How long to wait for `/healthz` to recover after the burst.
    pub recover_timeout_s: f64,
    /// Top-K per query.
    pub k: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            warm_qps: 20.0,
            warm_s: 1.0,
            overload_qps: 400.0,
            overload_s: 2.0,
            recover_timeout_s: 10.0,
            k: 2,
        }
    }
}

/// What the soak observed. See [`run_soak`] for the pass criteria.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Warm-phase replay tallies.
    pub warm: ReplayReport,
    /// Overload-phase replay tallies.
    pub overload: ReplayReport,
    /// Gate shed counter after the run.
    pub shed_total: u64,
    /// Highest waiting-room occupancy observed (bounded by construction).
    pub queued_high_watermark: u64,
    /// The configured waiting-room bound, for the report's own record.
    pub max_queued: u64,
    /// `true` if `/healthz` returned 503 at least once during overload.
    pub saw_unhealthy_under_overload: bool,
    /// Seconds from end of burst until `/healthz` returned 200 again.
    pub recovery_s: Option<f64>,
    /// Resident bytes before the warm phase (`None` off-Linux).
    pub resident_before: Option<u64>,
    /// Resident bytes after recovery.
    pub resident_after: Option<u64>,
}

impl SoakReport {
    /// Resident-set growth across the soak, bytes (0 off-Linux).
    #[must_use]
    pub fn resident_growth_bytes(&self) -> u64 {
        match (self.resident_before, self.resident_after) {
            (Some(b), Some(a)) => a.saturating_sub(b),
            _ => 0,
        }
    }
}

/// Runs the full soak against `handle`, which must have observability
/// **and** admission control enabled (the harness serves its telemetry
/// over HTTP and drives the gate to saturation).
///
/// Phases: a warm replay at `warm_qps`, an overload burst at
/// `overload_qps` with a worker pool sized past the gate's total
/// capacity (polling `/healthz` throughout, expecting to catch a 503),
/// then a recovery wait polling `/healthz` until it reports 200 again.
///
/// # Panics
/// If the handle has no admission gate or telemetry cannot be served —
/// both are harness misconfiguration, not load behaviour.
pub fn run_soak(
    handle: &Arc<EngineHandle>,
    queries: &[Trajectory],
    cfg: &SoakConfig,
) -> SoakReport {
    let gate = handle
        .admission_gate()
        .expect("soak requires admission control enabled")
        .clone();
    let server = handle
        .serve_metrics("127.0.0.1:0")
        .expect("soak requires observability enabled");
    let addr = server.addr();

    let resident_before = resident_memory_bytes();

    // Phase 1 — warm.
    let warm = run_replay(
        queries,
        &ReplayConfig {
            offered_qps: cfg.warm_qps,
            duration_s: cfg.warm_s,
            workers: gate.max_inflight().max(2),
            k: cfg.k,
        },
        |q| handle.infer_query(q, cfg.k).outcome,
    );

    // Phase 2 — overload, with a health poller racing the burst.
    let overload_workers = gate.max_inflight() + gate.max_queued() + 8;
    let stop_polling = std::sync::atomic::AtomicBool::new(false);
    let mut saw_unhealthy = false;
    let mut overload = ReplayReport::default();
    std::thread::scope(|s| {
        let poller = s.spawn(|| {
            let mut saw = false;
            while !stop_polling.load(Ordering::Relaxed) {
                if let Ok((status, _)) = http_get(addr, "/healthz") {
                    saw |= status == 503;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            saw
        });
        overload = run_replay(
            queries,
            &ReplayConfig {
                offered_qps: cfg.overload_qps,
                duration_s: cfg.overload_s,
                workers: overload_workers,
                k: cfg.k,
            },
            |q| handle.infer_query(q, cfg.k).outcome,
        );
        stop_polling.store(true, Ordering::Relaxed);
        saw_unhealthy = poller.join().expect("health poller");
    });

    // Phase 3 — recovery: no load; poll until /healthz says 200.
    let t0 = Instant::now();
    let deadline = Duration::from_secs_f64(cfg.recover_timeout_s);
    let mut recovery_s = None;
    while t0.elapsed() < deadline {
        if let Ok((status, _)) = http_get(addr, "/healthz") {
            if status == 200 {
                recovery_s = Some(t0.elapsed().as_secs_f64());
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let resident_after = resident_memory_bytes();
    SoakReport {
        warm,
        overload,
        shed_total: gate.shed_total(),
        queued_high_watermark: gate.queued_high_watermark(),
        max_queued: gate.max_queued() as u64,
        saw_unhealthy_under_overload: saw_unhealthy,
        recovery_s,
        resident_before,
        resident_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn dummy_query() -> Trajectory {
        use hris_geo::Point;
        use hris_traj::{GpsPoint, TrajId};
        Trajectory::new(
            TrajId(0),
            (0..3)
                .map(|i| GpsPoint::new(Point::new(f64::from(i) * 100.0, 0.0), f64::from(i) * 30.0))
                .collect(),
        )
    }

    #[test]
    fn replay_offers_the_scheduled_load() {
        let fired = AtomicUsize::new(0);
        let queries = vec![dummy_query()];
        let report = run_replay(
            &queries,
            &ReplayConfig {
                offered_qps: 200.0,
                duration_s: 0.25,
                workers: 4,
                k: 1,
            },
            |_| {
                fired.fetch_add(1, Ordering::Relaxed);
                QueryOutcome::Ok
            },
        );
        assert_eq!(report.offered, 50);
        assert_eq!(fired.load(Ordering::Relaxed), 50);
        assert_eq!(report.ok, 50);
        assert_eq!(report.shed, 0);
        // Open-loop: the run takes at least the scheduled duration.
        assert!(report.wall_s >= 0.2, "wall {}", report.wall_s);
    }

    #[test]
    fn replay_partitions_outcomes() {
        let n = AtomicUsize::new(0);
        let queries = vec![dummy_query()];
        let report = run_replay(
            &queries,
            &ReplayConfig {
                offered_qps: 1000.0,
                duration_s: 0.1,
                workers: 4,
                k: 1,
            },
            |_| {
                // Every third query sheds, the rest answer.
                if n.fetch_add(1, Ordering::Relaxed).is_multiple_of(3) {
                    QueryOutcome::Rejected {
                        reason: RejectReason::Overloaded,
                    }
                } else {
                    QueryOutcome::Ok
                }
            },
        );
        assert_eq!(
            report.ok + report.repaired + report.degraded + report.rejected,
            report.offered
        );
        assert_eq!(report.shed, report.rejected);
        assert!(report.shed_rate() > 0.2 && report.shed_rate() < 0.5);
    }

    #[test]
    fn resident_memory_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = resident_memory_bytes().expect("procfs available");
            assert!(rss > 0);
        }
    }
}
