//! Inference-quality metric (Section IV-B).
//!
//! `A_L = LCR(R_G, R_I).length / max(R_G.length, R_I.length)` where `LCR`
//! is the *longest common road segments* of the ground-truth and inferred
//! routes. We implement LCR as the length-weighted longest common
//! subsequence of the two segment sequences: common segments must appear in
//! the same travel order to count, which penalises both missing roads and
//! hallucinated detours.

use hris_roadnet::{RoadNetwork, Route};

/// Length-weighted longest common subsequence of two segment sequences.
#[must_use]
pub fn lcr_length(a: &Route, b: &Route, net: &RoadNetwork) -> f64 {
    let sa = a.segments();
    let sb = b.segments();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    // Classic LCS DP over (n+1) × (m+1), weights = segment length.
    let m = sb.len();
    let mut prev = vec![0.0f64; m + 1];
    let mut cur = vec![0.0f64; m + 1];
    for &x in sa {
        for (j, &y) in sb.iter().enumerate() {
            cur[j + 1] = if x == y {
                prev[j] + net.segment(x).length
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// The paper's accuracy metric `A_L ∈ [0, 1]`.
///
/// Returns 1.0 when both routes are empty (vacuously perfect), 0.0 when
/// exactly one is empty.
#[must_use]
pub fn accuracy_al(ground: &Route, inferred: &Route, net: &RoadNetwork) -> f64 {
    let lg = ground.length(net);
    let li = inferred.length(net);
    let denom = lg.max(li);
    if denom <= 0.0 {
        return if ground.is_empty() == inferred.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    (lcr_length(ground, inferred, net) / denom).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_geo::Point;
    use hris_roadnet::{generator::RoadClass, NodeId, SegmentId};

    /// Straight two-way corridor of `n` 100 m segments; returns forward ids.
    fn corridor(n: usize) -> (RoadNetwork, Vec<SegmentId>) {
        let mut b = RoadNetwork::builder();
        let nodes: Vec<NodeId> = (0..=n)
            .map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        let mut fwd = Vec::new();
        for w in nodes.windows(2) {
            let shape = hris_geo::Polyline::straight(b.node(w[0]), b.node(w[1]));
            let (f, _) = b.add_two_way(w[0], w[1], shape, 10.0, RoadClass::Residential);
            fwd.push(f);
        }
        (b.build(), fwd)
    }

    #[test]
    fn identical_routes_score_one() {
        let (net, fwd) = corridor(5);
        let r = Route::new(fwd);
        assert!((accuracy_al(&r, &r, &net) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_routes_score_zero() {
        let (net, fwd) = corridor(6);
        let a = Route::new(vec![fwd[0], fwd[1]]);
        let b = Route::new(vec![fwd[4], fwd[5]]);
        assert_eq!(accuracy_al(&a, &b, &net), 0.0);
    }

    #[test]
    fn partial_overlap_scores_fraction() {
        let (net, fwd) = corridor(4);
        let ground = Route::new(fwd.clone()); // 400 m
        let inferred = Route::new(vec![fwd[0], fwd[1]]); // 200 m, fully common
        let a = accuracy_al(&ground, &inferred, &net);
        assert!((a - 0.5).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn metric_is_symmetric() {
        let (net, fwd) = corridor(6);
        let a = Route::new(vec![fwd[0], fwd[1], fwd[2], fwd[3]]);
        let b = Route::new(vec![fwd[1], fwd[2], fwd[4]]);
        assert!((accuracy_al(&a, &b, &net) - accuracy_al(&b, &a, &net)).abs() < 1e-12);
    }

    #[test]
    fn order_matters_for_lcr() {
        let (net, fwd) = corridor(4);
        let ground = Route::new(vec![fwd[0], fwd[1], fwd[2]]);
        // Same segment multiset, scrambled order: LCS < full overlap.
        let scrambled = Route::new(vec![fwd[2], fwd[0], fwd[1]]);
        let lcs = lcr_length(&ground, &scrambled, &net);
        assert!(
            (lcs - 200.0).abs() < 1e-9,
            "only [0,1] stays in order, got {lcs}"
        );
    }

    #[test]
    fn longer_inferred_route_is_penalised() {
        let (net, fwd) = corridor(6);
        let ground = Route::new(vec![fwd[0], fwd[1]]);
        let bloated = Route::new(fwd.clone());
        // Common = 200, denom = 600.
        let a = accuracy_al(&ground, &bloated, &net);
        assert!((a - 200.0 / 600.0).abs() < 1e-9);
    }

    #[test]
    fn empty_route_edge_cases() {
        let (net, fwd) = corridor(3);
        let r = Route::new(fwd);
        let e = Route::empty();
        assert_eq!(accuracy_al(&e, &e, &net), 1.0);
        assert_eq!(accuracy_al(&r, &e, &net), 0.0);
        assert_eq!(accuracy_al(&e, &r, &net), 0.0);
    }

    #[test]
    fn accuracy_bounded() {
        let (net, fwd) = corridor(8);
        // Inferred route revisiting segments cannot push accuracy above 1.
        let ground = Route::new(vec![fwd[0], fwd[1]]);
        let weird = Route::new(vec![fwd[0], fwd[1], fwd[0], fwd[1]]);
        let a = accuracy_al(&ground, &weird, &net);
        assert!((0.0..=1.0).contains(&a));
    }
}
