//! One experiment per figure of the paper's evaluation (Section IV-C).
//!
//! Every function regenerates the corresponding figure's series from a
//! [`Scenario`] and returns a printable [`Table`]. The `experiments` binary
//! wires them to the command line; `hris-bench` re-times the
//! performance-oriented ones under criterion.

use crate::runner::{evaluate_hris, evaluate_hris_topk, evaluate_matcher};
use crate::scenario::Scenario;
use crate::table::Table;
use hris::{Hris, HrisParams, LocalAlgorithm, PaperScorer, RouteScorer, ScoringCtx};
use hris_mapmatch::{IncrementalMatcher, IvmmMatcher, StMatcher};
use hris_traj::resample_to_interval;
use std::time::Instant;

/// Sampling intervals (minutes) used by the accuracy comparisons.
pub const SR_SWEEP_MIN: [f64; 5] = [3.0, 6.0, 9.0, 12.0, 15.0];
/// The three sampling intervals the per-parameter figures slice on.
pub const SR_SLICES_MIN: [f64; 3] = [3.0, 9.0, 15.0];

fn minutes(m: f64) -> f64 {
    m * 60.0
}

/// Table II — the parameter defaults, rendered for the report.
#[must_use]
pub fn table2() -> String {
    let p = HrisParams::default();
    format!(
        "== Table II — parameter defaults ==\n\
         phi (reference search radius)   : {} m\n\
         tau (hybrid density threshold)  : {} /km^2\n\
         lambda (λ-neighborhood radius)  : {}\n\
         k1 (K in TGI)                   : {}\n\
         k2 (k in NNI)                   : {}\n\
         alpha (NNI tolerance)           : {} m\n\
         beta (NNI detour ratio)         : {}\n\
         k3 (K in K-GRI)                 : {}\n",
        p.phi_m, p.tau_per_km2, p.lambda, p.k1, p.k2, p.alpha_m, p.beta, p.k3
    )
}

/// Figure 8a — accuracy vs sampling interval: HRIS vs the three baselines.
#[must_use]
pub fn fig8a(s: &Scenario) -> Table {
    let mut t = Table::new(
        "Figure 8a",
        "inference accuracy vs sampling interval",
        "SR(min)",
        vec![
            "HRIS".into(),
            "IVMM".into(),
            "ST-Matching".into(),
            "Incremental".into(),
        ],
    );
    let params = HrisParams::default();
    let ivmm = IvmmMatcher::default();
    let st = StMatcher::default();
    let inc = IncrementalMatcher::default();
    for sr in SR_SWEEP_MIN {
        let iv = evaluate_matcher(s, &ivmm, minutes(sr));
        let stm = evaluate_matcher(s, &st, minutes(sr));
        let im = evaluate_matcher(s, &inc, minutes(sr));
        let hr = evaluate_hris(s, &params, minutes(sr), None);
        t.push_row(
            sr,
            vec![
                hr.mean_accuracy,
                iv.mean_accuracy,
                stm.mean_accuracy,
                im.mean_accuracy,
            ],
        );
    }
    t
}

/// Figure 8b — accuracy vs query length, at the default 3-minute interval.
///
/// Queries of the scenario are bucketed by ground-truth route length;
/// `bucket_km` gives the bucket centres (± half the spacing).
#[must_use]
pub fn fig8b(s: &Scenario, bucket_km: &[f64]) -> Table {
    let mut t = Table::new(
        "Figure 8b",
        "inference accuracy vs query length (SR = 3 min)",
        "L(km)",
        vec![
            "HRIS".into(),
            "IVMM".into(),
            "ST-Matching".into(),
            "Incremental".into(),
        ],
    );
    let half = if bucket_km.len() >= 2 {
        (bucket_km[1] - bucket_km[0]) / 2.0
    } else {
        2.5
    };
    let params = HrisParams::default();
    let interval = minutes(3.0);
    for &centre in bucket_km {
        let idx: Vec<usize> = s
            .queries
            .iter()
            .enumerate()
            .filter(|(_, q)| {
                let km = q.truth.length(&s.net) / 1000.0;
                (km - centre).abs() <= half
            })
            .map(|(i, _)| i)
            .collect();
        if idx.is_empty() {
            t.push_row(centre, vec![f64::NAN; 4]);
            continue;
        }
        let sub = subset(s, &idx);
        let hr = evaluate_hris(&sub, &params, interval, None);
        let iv = evaluate_matcher(&sub, &IvmmMatcher::default(), interval);
        let st = evaluate_matcher(&sub, &StMatcher::default(), interval);
        let im = evaluate_matcher(&sub, &IncrementalMatcher::default(), interval);
        t.push_row(
            centre,
            vec![
                hr.mean_accuracy,
                iv.mean_accuracy,
                st.mean_accuracy,
                im.mean_accuracy,
            ],
        );
    }
    t
}

/// Figures 9a/9b — effect of the reference search radius `φ` on accuracy
/// and running time, per sampling-rate slice. Returns `(accuracy, time)`.
#[must_use]
pub fn fig9(s: &Scenario) -> (Table, Table) {
    let phis = [100.0, 300.0, 500.0, 700.0, 900.0];
    let series: Vec<String> = SR_SLICES_MIN.iter().map(|m| format!("SR={m}min")).collect();
    let mut acc = Table::new(
        "Figure 9a",
        "accuracy vs reference search range φ",
        "phi(m)",
        series.clone(),
    );
    let mut time = Table::new(
        "Figure 9b",
        "running time vs reference search range φ",
        "phi(m)",
        series,
    );
    for phi in phis {
        let mut accs = Vec::new();
        let mut times = Vec::new();
        for sr in SR_SLICES_MIN {
            let params = HrisParams {
                phi_m: phi,
                ..HrisParams::default()
            };
            let out = evaluate_hris(s, &params, minutes(sr), None);
            accs.push(out.mean_accuracy);
            times.push(out.mean_time_s);
        }
        acc.push_row(phi, accs);
        time.push_row(phi, times);
    }
    (acc, time)
}

/// Figures 10a/10b — TGI vs NNI accuracy and time as the reference-point
/// density varies (controlled through archive thinning).
///
/// The x column is the archive-wide GPS-point density (points/km² over the
/// city extent). The paper's ρ is measured over each pair's reference MBB,
/// but that quantity self-normalises under thinning — fewer references
/// also shrink the bounding box — so it cannot serve as a sweep axis here;
/// the archive-wide density is the controllable, monotone equivalent.
#[must_use]
pub fn fig10(s: &Scenario) -> (Table, Table) {
    let fracs = [0.05, 0.12, 0.25, 0.5, 1.0];
    let series = vec!["TGI".to_string(), "NNI".to_string()];
    let mut acc = Table::new(
        "Figure 10a",
        "accuracy vs reference density ρ (TGI vs NNI)",
        "rho(/km2)",
        series.clone(),
    );
    let mut time = Table::new(
        "Figure 10b",
        "running time vs reference density ρ (TGI vs NNI)",
        "rho(/km2)",
        series,
    );
    let interval = minutes(3.0);
    for frac in fracs {
        let archive = s.thinned_archive(frac);
        let tgi_params = HrisParams {
            local_algorithm: LocalAlgorithm::Tgi,
            ..HrisParams::default()
        };
        let nni_params = HrisParams {
            local_algorithm: LocalAlgorithm::Nni,
            ..HrisParams::default()
        };
        let tg = evaluate_hris(s, &tgi_params, interval, Some(&archive));
        let nn = evaluate_hris(s, &nni_params, interval, Some(&archive));
        let rho = archive.num_points() as f64 / hris_geo::area_km2(&s.net.bbox());
        acc.push_row(rho, vec![tg.mean_accuracy, nn.mean_accuracy]);
        time.push_row(rho, vec![tg.mean_time_s, nn.mean_time_s]);
    }
    (acc, time)
}

/// Figures 11a/11b — effect of `λ` on TGI accuracy (per SR slice) and on
/// TGI running time with vs without graph reduction.
#[must_use]
pub fn fig11(s: &Scenario) -> (Table, Table) {
    let lambdas = [2usize, 4, 6, 8];
    let series: Vec<String> = SR_SLICES_MIN.iter().map(|m| format!("SR={m}min")).collect();
    let mut acc = Table::new("Figure 11a", "TGI accuracy vs λ", "lambda", series);
    let mut time = Table::new(
        "Figure 11b",
        "TGI running time vs λ (SR = 3 min)",
        "lambda",
        vec!["with reduction".into(), "without reduction".into()],
    );
    for &lambda in &lambdas {
        let mut accs = Vec::new();
        for sr in SR_SLICES_MIN {
            let params = HrisParams {
                local_algorithm: LocalAlgorithm::Tgi,
                lambda,
                ..HrisParams::default()
            };
            accs.push(evaluate_hris(s, &params, minutes(sr), None).mean_accuracy);
        }
        acc.push_row(lambda as f64, accs);

        let with = HrisParams {
            local_algorithm: LocalAlgorithm::Tgi,
            lambda,
            tgi_use_reduction: true,
            ..HrisParams::default()
        };
        let without = HrisParams {
            tgi_use_reduction: false,
            ..with.clone()
        };
        time.push_row(
            lambda as f64,
            vec![
                evaluate_hris(s, &with, minutes(3.0), None).mean_time_s,
                evaluate_hris(s, &without, minutes(3.0), None).mean_time_s,
            ],
        );
    }
    (acc, time)
}

/// Figures 12a/12b — effect of `k₁` (TGI's K-shortest-path K).
#[must_use]
pub fn fig12(s: &Scenario) -> (Table, Table) {
    let k1s = [2usize, 4, 6, 8, 10];
    let series: Vec<String> = SR_SLICES_MIN.iter().map(|m| format!("SR={m}min")).collect();
    let mut acc = Table::new("Figure 12a", "accuracy vs k1 (TGI)", "k1", series);
    let mut time = Table::new(
        "Figure 12b",
        "TGI running time vs k1 (SR = 3 min)",
        "k1",
        vec!["with reduction".into(), "without reduction".into()],
    );
    for &k1 in &k1s {
        let mut accs = Vec::new();
        for sr in SR_SLICES_MIN {
            let params = HrisParams {
                local_algorithm: LocalAlgorithm::Tgi,
                k1,
                ..HrisParams::default()
            };
            accs.push(evaluate_hris(s, &params, minutes(sr), None).mean_accuracy);
        }
        acc.push_row(k1 as f64, accs);
        let with = HrisParams {
            local_algorithm: LocalAlgorithm::Tgi,
            k1,
            tgi_use_reduction: true,
            ..HrisParams::default()
        };
        let without = HrisParams {
            tgi_use_reduction: false,
            ..with.clone()
        };
        time.push_row(
            k1 as f64,
            vec![
                evaluate_hris(s, &with, minutes(3.0), None).mean_time_s,
                evaluate_hris(s, &without, minutes(3.0), None).mean_time_s,
            ],
        );
    }
    (acc, time)
}

/// Figures 13a/13b — effect of `k₂` (NNI's constrained-kNN fan-out).
/// The time table compares substructure sharing on/off and also reports the
/// kNN-search counts that explain the gap (Figure 5's cost model).
#[must_use]
pub fn fig13(s: &Scenario) -> (Table, Table) {
    let k2s = [2usize, 4, 6, 8];
    let series: Vec<String> = SR_SLICES_MIN.iter().map(|m| format!("SR={m}min")).collect();
    let mut acc = Table::new("Figure 13a", "accuracy vs k2 (NNI)", "k2", series);
    let mut time = Table::new(
        "Figure 13b",
        "NNI running time vs k2 (SR = 3 min)",
        "k2",
        vec![
            "time sharing".into(),
            "time no-sharing".into(),
            "kNN sharing".into(),
            "kNN no-sharing".into(),
        ],
    );
    for &k2 in &k2s {
        let mut accs = Vec::new();
        for sr in SR_SLICES_MIN {
            let params = HrisParams {
                local_algorithm: LocalAlgorithm::Nni,
                k2,
                ..HrisParams::default()
            };
            accs.push(evaluate_hris(s, &params, minutes(sr), None).mean_accuracy);
        }
        acc.push_row(k2 as f64, accs);
        let share = HrisParams {
            local_algorithm: LocalAlgorithm::Nni,
            k2,
            nni_share_substructures: true,
            ..HrisParams::default()
        };
        let noshare = HrisParams {
            nni_share_substructures: false,
            ..share.clone()
        };
        let a = evaluate_hris(s, &share, minutes(3.0), None);
        let b = evaluate_hris(s, &noshare, minutes(3.0), None);
        time.push_row(
            k2 as f64,
            vec![
                a.mean_time_s,
                b.mean_time_s,
                a.mean_knn_searches,
                b.mean_knn_searches,
            ],
        );
    }
    (acc, time)
}

/// Figure 14a — average and maximum accuracy of the top-`k₃` global routes.
#[must_use]
pub fn fig14a(s: &Scenario) -> Table {
    let mut t = Table::new(
        "Figure 14a",
        "top-k3 global route accuracy (SR = 3 min)",
        "k3",
        vec!["average".into(), "maximum".into()],
    );
    let params = HrisParams::default();
    for k3 in [1usize, 2, 3, 4, 6, 8] {
        let (avg, max) = evaluate_hris_topk(s, &params, minutes(3.0), k3);
        t.push_row(k3 as f64, vec![avg, max]);
    }
    t
}

/// Figure 14b — K-GRI vs brute-force running time as the query grows.
///
/// Uses a real query's local-inference output, truncated to `n` pairs, so
/// both algorithms rank identical inputs. Brute force is skipped (NaN) once
/// the combination count would exceed ~10⁷.
#[must_use]
pub fn fig14b(s: &Scenario) -> Table {
    let mut t = Table::new(
        "Figure 14b",
        "global inference time: K-GRI vs brute force (k3 = 2)",
        "pairs",
        vec!["K-GRI".into(), "brute force".into()],
    );
    let Some(query_case) = s.queries.first() else {
        return t;
    };
    let params = HrisParams {
        max_local_routes: 5,
        ..HrisParams::default()
    };
    let hris = Hris::new(&s.net, s.archive.clone(), params.clone());
    let query = resample_to_interval(&query_case.dense, 60.0);
    let locals = hris.local_inference(&query);
    let max_pairs = locals.len();
    for n in [2usize, 4, 6, 8, 10, 12] {
        if n > max_pairs {
            break;
        }
        let slice = &locals[..n];
        let scorer = PaperScorer::from_params(&params);
        let sctx = ScoringCtx::new(&s.net, slice, params.k3);
        let reps = 5;
        let t0 = Instant::now();
        for _ in 0..reps {
            let _ = scorer.top_k(&sctx);
        }
        let dp_time = t0.elapsed().as_secs_f64() / reps as f64;
        let combos: f64 = slice.iter().map(|l| l.routes.len() as f64).product();
        let bf_time = if combos <= 1e7 {
            let t0 = Instant::now();
            let _ = scorer.top_k_brute_force(&sctx);
            t0.elapsed().as_secs_f64()
        } else {
            f64::NAN
        };
        t.push_row(n as f64, vec![dp_time, bf_time]);
    }
    t
}

/// Ablation of the documented design deviations (DESIGN.md §5b): each row
/// disables one deviation and reports accuracy at two sampling rates.
#[must_use]
pub fn ablation(s: &Scenario) -> Table {
    use hris::PopularityModel;
    let mut t = Table::new(
        "Ablation",
        "accuracy impact of the documented deviations (D1–D3)",
        "variant",
        vec!["A_L @ 3min".into(), "A_L @ 9min".into()],
    );
    let variants: Vec<(&str, HrisParams)> = vec![
        ("0: full system (defaults)", HrisParams::default()),
        (
            "1: paper-literal popularity (no D1)",
            HrisParams {
                popularity_model: PopularityModel::PaperLiteral,
                ..HrisParams::default()
            },
        ),
        (
            "2: distance-only traverse weights (no D2)",
            HrisParams {
                tgi_popularity_weight: 0.0,
                ..HrisParams::default()
            },
        ),
        (
            "3: no detour bound (no D3)",
            HrisParams {
                max_detour_ratio: 1e9,
                ..HrisParams::default()
            },
        ),
        (
            "4: all paper-literal (no D1-D3)",
            HrisParams {
                popularity_model: PopularityModel::PaperLiteral,
                tgi_popularity_weight: 0.0,
                max_detour_ratio: 1e9,
                ..HrisParams::default()
            },
        ),
    ];
    for (i, (name, params)) in variants.iter().enumerate() {
        let a3 = evaluate_hris(s, params, minutes(3.0), None).mean_accuracy;
        let a9 = evaluate_hris(s, params, minutes(9.0), None).mean_accuracy;
        eprintln!("  ablation {name}: {a3:.4} / {a9:.4}");
        t.push_row(i as f64, vec![a3, a9]);
    }
    t
}

/// Extension experiment — time-aware reference search (the paper's future
/// work). Runs on a *diurnal* scenario where each OD pattern peaks at a
/// different hour: filtering references by time-of-day should recover
/// accuracy that time-blind inference loses to counter-peak flows.
#[must_use]
pub fn temporal(s: &Scenario) -> Table {
    let mut t = Table::new(
        "Extension: temporal",
        "time-aware reference search on diurnal demand",
        "SR(min)",
        vec!["time-blind".into(), "time-aware (±3h)".into()],
    );
    let blind = HrisParams::default();
    let aware = HrisParams {
        temporal_tolerance_s: Some(3.0 * 3600.0),
        ..HrisParams::default()
    };
    for sr in [3.0, 6.0, 9.0] {
        let b = evaluate_hris(s, &blind, minutes(sr), None).mean_accuracy;
        let a = evaluate_hris(s, &aware, minutes(sr), None).mean_accuracy;
        t.push_row(sr, vec![b, a]);
    }
    t
}

/// Extension experiment — network-free route inference (the paper's second
/// future-work item). Reports the mean symmetric deviation (metres) of the
/// inferred curve from the ground-truth route, for: naive straight-line
/// interpolation, free-space history-based inference (no road network!),
/// and — as the ceiling — full HRIS with the network.
#[must_use]
pub fn freespace(s: &Scenario) -> Table {
    use hris::freespace::{infer_polyline, FreespaceParams};
    let mut t = Table::new(
        "Extension: freespace",
        "route deviation without a road network (m, lower is better)",
        "SR(min)",
        vec![
            "straight-line".into(),
            "free-space HRIS".into(),
            "HRIS (with network)".into(),
        ],
    );
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let fs_params = FreespaceParams {
        v_max: s.net.max_speed(),
        ..FreespaceParams::default()
    };
    for sr in [3.0, 6.0, 9.0] {
        let (mut d_straight, mut d_free, mut d_net) = (0.0, 0.0, 0.0);
        let mut n = 0usize;
        for q in &s.queries {
            let query = resample_to_interval(&q.dense, minutes(sr));
            let Some(truth_pl) = q.truth.polyline(&s.net) else {
                continue;
            };
            let pts: Vec<hris_geo::Point> = query.points.iter().map(|p| p.pos).collect();
            if pts.len() < 2 {
                continue;
            }
            let straight = hris_geo::Polyline::new(pts);
            d_straight += hris_geo::mean_deviation(&truth_pl, &straight, 200);
            if let Some(free) = infer_polyline(&s.archive, &query, &fs_params) {
                d_free += hris_geo::mean_deviation(&truth_pl, &free, 200);
            }
            if let Some(top) = hris.infer_top1(&query) {
                if let Some(pl) = top.route.polyline(&s.net) {
                    d_net += hris_geo::mean_deviation(&truth_pl, &pl, 200);
                }
            }
            n += 1;
        }
        let n = n.max(1) as f64;
        t.push_row(sr, vec![d_straight / n, d_free / n, d_net / n]);
    }
    t
}

/// Extension experiment — learned re-ranking of the paper's top-K (the
/// `A_L`-uplift figure). For each sampling interval, a logistic re-ranker
/// is trained on the simulator fleet (whose ground truth is exact) and
/// evaluated on the held-out queries: paper top-1 vs re-ranked top-1, with
/// the top-K oracle as the ceiling any re-ranker could reach.
#[must_use]
pub fn rerank_uplift(s: &Scenario) -> Table {
    use crate::rerank::{train_and_evaluate, TrainConfig};
    let mut t = Table::new(
        "Extension: rerank",
        "learned re-ranking uplift over the paper top-1 (A_L)",
        "SR(min)",
        vec![
            "paper top-1".into(),
            "reranked top-1".into(),
            "top-K oracle".into(),
        ],
    );
    let params = HrisParams::default();
    for sr in [3.0, 6.0, 9.0] {
        let cfg = TrainConfig {
            interval_s: minutes(sr),
            ..TrainConfig::default()
        };
        let r = train_and_evaluate(s, &params, &cfg);
        eprintln!(
            "  rerank SR={sr}min: base {:.4} -> reranked {:.4} (oracle {:.4}, {} pairs)",
            r.baseline_al, r.reranked_al, r.oracle_al, r.train_pairs
        );
        t.push_row(sr, vec![r.baseline_al, r.reranked_al, r.oracle_al]);
    }
    t
}

/// A scenario view containing only the selected queries (shares the network
/// and archive by cloning; used for length bucketing).
fn subset(s: &Scenario, indices: &[usize]) -> Scenario {
    Scenario {
        net: s.net.clone(),
        archive: s.archive.clone(),
        archive_truth: s.archive_truth.clone(),
        queries: indices.iter().map(|&i| s.queries[i].clone()).collect(),
        config: s.config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    /// One tiny scenario shared by the smoke tests.
    fn tiny() -> Scenario {
        let mut cfg = ScenarioConfig::quick(19);
        cfg.sim.num_trips = 200;
        cfg.num_queries = 2;
        Scenario::build(cfg)
    }

    #[test]
    fn table2_mentions_all_parameters() {
        let s = table2();
        for needle in ["phi", "tau", "lambda", "k1", "k2", "alpha", "beta", "k3"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig14b_dp_beats_brute_force_shape() {
        let s = tiny();
        let t = fig14b(&s);
        assert!(!t.rows.is_empty());
        // Wherever brute force ran, K-GRI must not be dramatically slower.
        for (_, ys) in &t.rows {
            if !ys[1].is_nan() && ys[1] > 1e-4 {
                assert!(ys[0] <= ys[1] * 10.0, "dp {} vs bf {}", ys[0], ys[1]);
            }
        }
    }

    #[test]
    fn fig10_produces_both_series() {
        let s = tiny();
        let (acc, time) = fig10(&s);
        assert_eq!(acc.series.len(), 2);
        assert_eq!(acc.rows.len(), time.rows.len());
        for (rho, ys) in &acc.rows {
            assert!(*rho >= 0.0);
            for y in ys {
                assert!((0.0..=1.0).contains(y));
            }
        }
    }

    #[test]
    fn fig14a_max_dominates_average() {
        let s = tiny();
        let t = fig14a(&s);
        for (_, ys) in &t.rows {
            assert!(ys[1] >= ys[0] - 1e-9, "max {} < avg {}", ys[1], ys[0]);
        }
    }
}
