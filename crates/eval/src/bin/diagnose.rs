//! Per-query diagnostic tool: where does HRIS lose accuracy?

use hris::prelude::*;
use hris_eval::metrics::accuracy_al;
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_mapmatch::{IvmmMatcher, MapMatcher};
use hris_traj::resample_to_interval;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let s = Scenario::build(ScenarioConfig::quick(seed));
    eprintln!(
        "net {} nodes {} segs; archive {} trips; {} queries",
        s.net.num_nodes(),
        s.net.num_segments(),
        s.archive.num_trajectories(),
        s.queries.len()
    );
    let algo = std::env::args().nth(2).unwrap_or_default();
    let params = HrisParams {
        local_algorithm: match algo.as_str() {
            "tgi" => hris::LocalAlgorithm::Tgi,
            "nni" => hris::LocalAlgorithm::Nni,
            _ => hris::LocalAlgorithm::Hybrid,
        },
        ..HrisParams::default()
    };
    let hris = Hris::new(&s.net, s.archive.clone(), params);
    let ivmm = IvmmMatcher::default();
    let interval = 180.0;

    let focus: Option<usize> = std::env::args().nth(3).and_then(|v| v.parse().ok());
    let mut worst = (1.1, usize::MAX);
    for (qi, q) in s.queries.iter().enumerate() {
        let query = resample_to_interval(&q.dense, interval);
        let h_acc = hris
            .infer_top1(&query)
            .map(|r| accuracy_al(&q.truth, &r.route, &s.net))
            .unwrap_or(0.0);
        let i_acc = ivmm
            .match_trajectory(&s.net, &query)
            .map(|m| accuracy_al(&q.truth, &m.route, &s.net))
            .unwrap_or(0.0);
        println!(
            "q{qi}: pts {} truth {:.1} km | HRIS {h_acc:.3} IVMM {i_acc:.3}",
            query.len(),
            q.truth.length(&s.net) / 1000.0
        );
        if h_acc < worst.0 {
            worst = (h_acc, qi);
        }
    }

    // Pair-level drill-down on the worst query.
    let qi = focus.unwrap_or(worst.1);
    let q = &s.queries[qi];
    let query = resample_to_interval(&q.dense, interval);
    println!("\n--- worst query q{qi} (HRIS {:.3}) ---", worst.0);
    let locals = hris.local_inference(&query);
    for (i, l) in locals.iter().enumerate() {
        print!(
            "pair {i}: {} refs, dens {:.0}, algo {}, {} routes |",
            l.refs.len(),
            l.stats.density,
            l.stats.algorithm,
            l.routes.len()
        );
        println!();
        for (ri, r) in l.routes.iter().enumerate() {
            let pop = hris::local::route_popularity(r, &l.edge_index, 0.05);
            let ov = r.common_length(&q.truth, &s.net) / r.length(&s.net).max(1.0);
            println!(
                "    r{ri}: {} segs {:.2} km pop {:.1} overlap {:.2}",
                r.len(),
                r.length(&s.net) / 1000.0,
                pop,
                ov
            );
        }
    }
    let (globals, _) = hris.infer_routes_detailed(&query, 3);
    for (g, gr) in globals.iter().enumerate() {
        println!(
            "global {g}: score {:.2} len {:.1} km acc {:.3} idx {:?}",
            gr.log_score,
            gr.route.length(&s.net) / 1000.0,
            accuracy_al(&q.truth, &gr.route, &s.net),
            gr.local_indices
        );
    }
}
