//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [FIGURE ...] [--full] [--seed N] [--out DIR] [--metrics-out FILE]
//!             [--audit-out FILE]
//!
//! FIGURE: table2 fig8a fig8b fig9a fig9b fig10a fig10b fig11a fig11b
//!         fig12a fig12b fig13a fig13b fig14a fig14b ablation temporal
//!         freespace rerank all   (default: all)
//! --full : paper-scale scenario (~25 km city, thousands of trips);
//!          default is the laptop-quick scenario.
//! --out  : also write each figure's CSV into DIR.
//! --metrics-out : run an instrumented pass of the base workload, print the
//!          phase/cache summary, and write the full metrics + trace JSON
//!          (registry snapshot and per-query TraceRecords) to FILE.
//! --audit-out : run an explain-enabled pass of the base workload and write
//!          every query's audit document (candidate counts, top-K routes
//!          with score components and rerank attributions, events) to FILE
//!          as one JSON array.
//! ```
//!
//! Run with `cargo run --release -p hris-eval --bin experiments -- all`.

use hris_eval::experiments as ex;
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_eval::table::Table;
use std::collections::BTreeSet;

struct Args {
    figures: BTreeSet<String>,
    full: bool,
    seed: u64,
    out: Option<String>,
    metrics_out: Option<String>,
    audit_out: Option<String>,
}

fn parse_args() -> Args {
    let mut figures = BTreeSet::new();
    let mut full = false;
    let mut seed = 42u64;
    let mut out = None;
    let mut metrics_out = None;
    let mut audit_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            "--out" => out = Some(it.next().expect("--out needs a directory")),
            "--metrics-out" => {
                metrics_out = Some(it.next().expect("--metrics-out needs a file path"));
            }
            "--audit-out" => {
                audit_out = Some(it.next().expect("--audit-out needs a file path"));
            }
            other => {
                figures.insert(other.to_string());
            }
        }
    }
    if figures.is_empty() {
        figures.insert("all".to_string());
    }
    Args {
        figures,
        full,
        seed,
        out,
        metrics_out,
        audit_out,
    }
}

fn main() {
    let args = parse_args();
    let want = |name: &str| args.figures.contains("all") || args.figures.contains(name);

    let mut outputs: Vec<Table> = Vec::new();

    if want("table2") {
        println!("{}", ex::table2());
    }

    // Base scenario: queries around the default length.
    let needs_base = [
        "fig8a",
        "fig9a",
        "fig9b",
        "fig10a",
        "fig10b",
        "fig11a",
        "fig11b",
        "fig12a",
        "fig12b",
        "fig13a",
        "fig13b",
        "fig14a",
        "fig14b",
        "ablation",
        "freespace",
        "rerank",
    ]
    .iter()
    .any(|f| want(f))
        || args.metrics_out.is_some()
        || args.audit_out.is_some();

    let base: Option<Scenario> = if needs_base {
        let cfg = if args.full {
            ScenarioConfig::full(args.seed)
        } else {
            ScenarioConfig::quick(args.seed)
        };
        eprintln!(
            "building base scenario (full={}, seed={}) ...",
            args.full, args.seed
        );
        let s = Scenario::build(cfg);
        eprintln!(
            "  net: {} nodes / {} segments; archive: {} trips / {} points; {} queries",
            s.net.num_nodes(),
            s.net.num_segments(),
            s.archive.num_trajectories(),
            s.archive.num_points(),
            s.queries.len()
        );
        Some(s)
    } else {
        None
    };

    if let Some(s) = &base {
        if want("fig8a") {
            run(&mut outputs, || ex::fig8a(s));
        }
        if want("fig9a") || want("fig9b") {
            let (a, b) = ex::fig9(s);
            report(&mut outputs, a);
            report(&mut outputs, b);
        }
        if want("fig10a") || want("fig10b") {
            let (a, b) = ex::fig10(s);
            report(&mut outputs, a);
            report(&mut outputs, b);
        }
        if want("fig11a") || want("fig11b") {
            let (a, b) = ex::fig11(s);
            report(&mut outputs, a);
            report(&mut outputs, b);
        }
        if want("fig12a") || want("fig12b") {
            let (a, b) = ex::fig12(s);
            report(&mut outputs, a);
            report(&mut outputs, b);
        }
        if want("fig13a") || want("fig13b") {
            let (a, b) = ex::fig13(s);
            report(&mut outputs, a);
            report(&mut outputs, b);
        }
        if want("fig14a") {
            run(&mut outputs, || ex::fig14a(s));
        }
        if want("fig14b") {
            run(&mut outputs, || ex::fig14b(s));
        }
        if want("ablation") {
            run(&mut outputs, || ex::ablation(s));
        }
        if want("freespace") {
            run(&mut outputs, || ex::freespace(s));
        }
        if want("rerank") {
            run(&mut outputs, || ex::rerank_uplift(s));
        }
    }

    // The temporal extension needs a diurnal-demand scenario.
    if want("temporal") {
        let mut cfg = if args.full {
            ScenarioConfig::full(args.seed ^ 2)
        } else {
            ScenarioConfig::quick(args.seed ^ 2)
        };
        cfg.sim.diurnal_peaks = true;
        eprintln!("building diurnal scenario for the temporal extension ...");
        let s = Scenario::build(cfg);
        run(&mut outputs, || ex::temporal(&s));
    }

    // Figure 8b needs a wide query-length spread.
    if want("fig8b") {
        let (mut cfg, buckets): (ScenarioConfig, Vec<f64>) = if args.full {
            let mut c = ScenarioConfig::full(args.seed ^ 1);
            c.query_len_m = (8_000.0, 32_000.0);
            c.num_queries = 50;
            (c, vec![10.0, 15.0, 20.0, 25.0, 30.0])
        } else {
            let mut c = ScenarioConfig::quick(args.seed ^ 1);
            c.query_len_m = (2_000.0, 8_000.0);
            c.num_queries = 30;
            (c, vec![2.5, 3.5, 4.5, 5.5, 6.5])
        };
        cfg.sim.min_trip_dist_m = cfg.query_len_m.0 * 0.6;
        eprintln!("building wide-length scenario for fig8b ...");
        let s = Scenario::build(cfg);
        eprintln!("  {} queries", s.queries.len());
        run(&mut outputs, || ex::fig8b(&s, &buckets));
    }

    // Instrumented pass: same base workload, observed engine, sequential so
    // phase times attribute the wall time exactly.
    if let Some(path) = &args.metrics_out {
        let s = base
            .as_ref()
            .expect("metrics pass builds the base scenario");
        let interval_s = 180.0;
        eprintln!("running instrumented pass (interval {interval_s}s) ...");
        let (outcome, report) =
            hris_eval::evaluate_hris_observed(s, &hris::HrisParams::default(), interval_s, None);
        println!("{}", report.summary());
        println!(
            "   accuracy {:.4}   mean query time {:.4}s",
            outcome.mean_accuracy, outcome.mean_time_s
        );
        eprintln!("running robustness pass (100-case fault corpus) ...");
        let rob = hris_eval::evaluate_robustness(s, &hris::HrisParams::default(), args.seed, 100);
        println!("{}", rob.summary());
        eprintln!("running rerank uplift pass (fleet-trained model) ...");
        let rr = hris_eval::train_and_evaluate(
            s,
            &hris::HrisParams::default(),
            &hris_eval::TrainConfig {
                interval_s,
                ..hris_eval::TrainConfig::default()
            },
        );
        println!("{}", rr.summary());
        // Same top-level keys as before, plus the robustness/rerank blocks.
        let obs_json = report.to_json();
        let combined = format!(
            "{},\"robustness\":{},\"rerank\":{}}}",
            obs_json.trim_end_matches('}'),
            rob.to_json(),
            rr.to_json()
        );
        std::fs::write(path, combined).expect("write metrics json");
        eprintln!("wrote {path}");
    }

    // Explain pass: same base workload through an explain-enabled engine;
    // every query's audit document lands in FILE as one JSON array.
    if let Some(path) = &args.audit_out {
        let s = base.as_ref().expect("audit pass builds the base scenario");
        eprintln!("running explain-enabled audit pass ...");
        let records = hris_eval::audit_hris(s, &hris::HrisParams::default(), 180.0, 3);
        let body = records
            .iter()
            .map(|r| r.json.as_str())
            .collect::<Vec<_>>()
            .join(",");
        std::fs::write(path, format!("[{body}]")).expect("write audit json");
        eprintln!("wrote {path} ({} audit records)", records.len());
    }

    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create output dir");
        for t in &outputs {
            let name = t.id.to_lowercase().replace(' ', "_");
            let path = format!("{dir}/{name}.csv");
            std::fs::write(&path, t.to_csv()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}

fn run<F: FnOnce() -> Table>(outputs: &mut Vec<Table>, f: F) {
    let t = f();
    report(outputs, t);
}

fn report(outputs: &mut Vec<Table>, t: Table) {
    println!("{t}");
    outputs.push(t);
}
