//! Scratch probe: how often do free-space walks succeed?

use hris::freespace::{infer_polyline, FreespaceParams};
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_traj::resample_to_interval;

fn main() {
    let s = Scenario::build(ScenarioConfig::quick(42));
    let fs = FreespaceParams {
        v_max: s.net.max_speed(),
        ..FreespaceParams::default()
    };
    for sr in [3.0f64, 6.0] {
        for (qi, q) in s.queries.iter().take(3).enumerate() {
            let query = resample_to_interval(&q.dense, sr * 60.0);
            let pl = infer_polyline(&s.archive, &query, &fs).unwrap();
            let truth = q.truth.polyline(&s.net).unwrap();
            println!(
                "sr {sr} q{qi}: query pts {}, polyline verts {} (straight would be {}), dev {:.0} vs straight {:.0}",
                query.len(),
                pl.vertices().len(),
                query.len(),
                hris_geo::mean_deviation(&truth, &pl, 200),
                hris_geo::mean_deviation(
                    &truth,
                    &hris_geo::Polyline::new(query.points.iter().map(|p| p.pos).collect()),
                    200
                ),
            );
        }
    }
}
