//! Phase-level profiling of the φ sweep (diagnostic for Figure 9b).

use hris::reference::search_references;
use hris::{Hris, HrisParams, RouteScorer};
use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_traj::resample_to_interval;
use std::time::Instant;

fn main() {
    let s = Scenario::build(ScenarioConfig::quick(42));
    let interval = 540.0; // SR = 9 min
    for phi in [100.0f64, 300.0, 900.0] {
        let params = HrisParams {
            phi_m: phi,
            ..HrisParams::default()
        };
        let hris = Hris::new(&s.net, s.archive.clone(), params.clone());
        let mut t_ref = 0.0;
        let mut t_local = 0.0;
        let mut t_global = 0.0;
        let mut algo_counts = (0usize, 0usize);
        let mut refs_total = 0usize;
        for q in &s.queries {
            let query = resample_to_interval(&q.dense, interval);
            // Reference search alone.
            let t0 = Instant::now();
            for w in query.points.windows(2) {
                let r = search_references(
                    &s.archive,
                    w[0].pos,
                    w[1].pos,
                    (w[1].t - w[0].t).max(1.0),
                    s.net.max_speed(),
                    &hris::reference::RefSearchConfig::new(phi, params.splice_eps_m),
                );
                refs_total += r.len();
            }
            t_ref += t0.elapsed().as_secs_f64();
            // Full local inference.
            let t0 = Instant::now();
            let locals = hris.local_inference(&query);
            t_local += t0.elapsed().as_secs_f64();
            for l in &locals {
                match l.stats.algorithm {
                    "TGI" => algo_counts.0 += 1,
                    "NNI" => algo_counts.1 += 1,
                    _ => {}
                }
            }
            let t0 = Instant::now();
            let _ = hris::PaperScorer::from_params(&params)
                .top_k(&hris::ScoringCtx::new(&s.net, &locals, 2));
            t_global += t0.elapsed().as_secs_f64();
        }
        println!(
            "phi {phi:>5}: ref {t_ref:.2}s local(incl ref) {t_local:.2}s global {t_global:.3}s | TGI pairs {} NNI pairs {} refs {}",
            algo_counts.0, algo_counts.1, refs_total
        );
    }
}
