//! Evaluation runners: matcher/HRIS accuracy and running time over a
//! scenario's query workload, parallelised across queries.

use crate::metrics::accuracy_al;
use crate::scenario::Scenario;
use hris::{Hris, HrisParams};
use hris_mapmatch::MapMatcher;
use hris_traj::{resample_to_interval, TrajectoryArchive};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Aggregated outcome of one evaluation sweep cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOutcome {
    /// Mean `A_L` accuracy over queries.
    pub mean_accuracy: f64,
    /// Mean per-query wall time, seconds.
    pub mean_time_s: f64,
    /// Number of evaluated queries.
    pub queries: usize,
    /// Mean reference-point density observed by local inference (ρ, per
    /// km²); 0 for baseline matchers.
    pub mean_density: f64,
    /// Mean constrained-kNN searches per query (NNI instrumentation).
    pub mean_knn_searches: f64,
}

/// Evaluates a baseline map matcher at the given sampling interval.
#[must_use]
pub fn evaluate_matcher<M: MapMatcher + Sync>(
    scenario: &Scenario,
    matcher: &M,
    interval_s: f64,
) -> EvalOutcome {
    let results = parallel_map(scenario.queries.len(), |qi| {
        let q = &scenario.queries[qi];
        let query = resample_to_interval(&q.dense, interval_s);
        let t0 = Instant::now();
        let matched = matcher.match_trajectory(&scenario.net, &query);
        let dt = t0.elapsed().as_secs_f64();
        let acc = matched
            .map(|m| accuracy_al(&q.truth, &m.route, &scenario.net))
            .unwrap_or(0.0);
        (acc, dt, 0.0, 0.0)
    });
    aggregate(&results)
}

/// Evaluates HRIS (top-1 accuracy, Section IV-C protocol) at the given
/// sampling interval under `params`, optionally over a thinned archive.
#[must_use]
pub fn evaluate_hris(
    scenario: &Scenario,
    params: &HrisParams,
    interval_s: f64,
    archive_override: Option<&TrajectoryArchive>,
) -> EvalOutcome {
    let archive = archive_override.unwrap_or(&scenario.archive);
    let hris = Hris::new(&scenario.net, archive.clone(), params.clone());
    let results = parallel_map(scenario.queries.len(), |qi| {
        let q = &scenario.queries[qi];
        let query = resample_to_interval(&q.dense, interval_s);
        let t0 = Instant::now();
        let (globals, stats) = hris.infer_routes_detailed(&query, params.k3.max(1));
        let dt = t0.elapsed().as_secs_f64();
        let acc = globals
            .first()
            .map(|g| accuracy_al(&q.truth, &g.route, &scenario.net))
            .unwrap_or(0.0);
        let density = mean(stats.iter().map(|s| s.density).filter(|d| d.is_finite()));
        let knn = stats.iter().map(|s| s.knn_searches).sum::<usize>() as f64;
        (acc, dt, density, knn)
    });
    aggregate(&results)
}

/// Per-query top-k accuracies for Figure 14a: returns `(avg, max)` accuracy
/// over each query's top-`k` routes, averaged across queries.
#[must_use]
pub fn evaluate_hris_topk(
    scenario: &Scenario,
    params: &HrisParams,
    interval_s: f64,
    k: usize,
) -> (f64, f64) {
    let hris = Hris::new(&scenario.net, scenario.archive.clone(), params.clone());
    let results = parallel_map(scenario.queries.len(), |qi| {
        let q = &scenario.queries[qi];
        let query = resample_to_interval(&q.dense, interval_s);
        let routes = hris.infer_routes(&query, k.max(1));
        if routes.is_empty() {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let accs: Vec<f64> = routes
            .iter()
            .map(|r| accuracy_al(&q.truth, &r.route, &scenario.net))
            .collect();
        let avg = mean(accs.iter().copied());
        let max = accs.iter().copied().fold(0.0, f64::max);
        (avg, max, 0.0, 0.0)
    });
    let avg = mean(results.iter().map(|r| r.0));
    let max = mean(results.iter().map(|r| r.1));
    (avg, max)
}

/// Runs `f(i)` for `i in 0..n` across the available cores (crossbeam scoped
/// threads; no unsafe, no 'static bound needed).
fn parallel_map<F>(n: usize, f: F) -> Vec<(f64, f64, f64, f64)>
where
    F: Fn(usize) -> (f64, f64, f64, f64) + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let results: Vec<parking_lot::Mutex<(f64, f64, f64, f64)>> =
        (0..n).map(|_| parking_lot::Mutex::new((0.0, 0.0, 0.0, 0.0))).collect();
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *results[i].lock() = f(i);
            });
        }
    })
    .expect("evaluation worker panicked");
    results.into_iter().map(|m| m.into_inner()).collect()
}

fn aggregate(results: &[(f64, f64, f64, f64)]) -> EvalOutcome {
    EvalOutcome {
        mean_accuracy: mean(results.iter().map(|r| r.0)),
        mean_time_s: mean(results.iter().map(|r| r.1)),
        queries: results.len(),
        mean_density: mean(results.iter().map(|r| r.2).filter(|d| *d > 0.0)),
        mean_knn_searches: mean(results.iter().map(|r| r.3)),
    }
}

fn mean<I: Iterator<Item = f64>>(iter: I) -> f64 {
    let (mut sum, mut count) = (0.0, 0usize);
    for v in iter {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use hris_mapmatch::StMatcher;

    fn scenario() -> Scenario {
        let mut cfg = ScenarioConfig::quick(11);
        cfg.sim.num_trips = 250;
        cfg.num_queries = 3;
        Scenario::build(cfg)
    }

    #[test]
    fn matcher_evaluation_produces_sane_numbers() {
        let s = scenario();
        let out = evaluate_matcher(&s, &StMatcher::default(), 60.0);
        assert_eq!(out.queries, 3);
        assert!((0.0..=1.0).contains(&out.mean_accuracy));
        assert!(out.mean_time_s >= 0.0);
        // A 60 s interval on clean-ish data should match most of the route.
        assert!(out.mean_accuracy > 0.3, "got {}", out.mean_accuracy);
    }

    #[test]
    fn hris_evaluation_produces_sane_numbers() {
        let s = scenario();
        let out = evaluate_hris(&s, &HrisParams::default(), 180.0, None);
        assert_eq!(out.queries, 3);
        assert!((0.0..=1.0).contains(&out.mean_accuracy));
        assert!(out.mean_accuracy > 0.3, "got {}", out.mean_accuracy);
    }

    #[test]
    fn topk_max_at_least_avg() {
        let s = scenario();
        let (avg, max) = evaluate_hris_topk(&s, &HrisParams::default(), 180.0, 3);
        assert!(max >= avg - 1e-9);
        assert!((0.0..=1.0).contains(&max));
    }

    #[test]
    fn thinned_archive_evaluation_runs() {
        let s = scenario();
        let thin = s.thinned_archive(0.3);
        let out = evaluate_hris(&s, &HrisParams::default(), 180.0, Some(&thin));
        assert_eq!(out.queries, 3);
    }
}
