//! Evaluation runners: matcher/HRIS accuracy and running time over a
//! scenario's query workload.
//!
//! HRIS evaluations go through the [`QueryEngine`]: queries are resampled up
//! front, inferred as one batch (sharing the engine's candidate memo and
//! shortest-path cache across the whole workload), and `mean_time_s` is the
//! batch wall time divided by the query count — per-query cost as a batch
//! consumer actually pays it. Baseline matchers fan out across queries with
//! the same thread pool.

use crate::metrics::accuracy_al;
use crate::scenario::Scenario;
use hris::prelude::*;
use hris_mapmatch::MapMatcher;
use hris_obs::{MetricsSnapshot, TraceRecord};
use hris_traj::{resample_to_interval, Trajectory, TrajectoryArchive};
use rayon::prelude::*;
use std::fmt::Write as _;
use std::time::Instant;

/// The engine's four pipeline phases, in execution order.
pub const PHASES: [&str; 4] = ["candidates", "local", "global", "refine"];

/// Aggregated outcome of one evaluation sweep cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalOutcome {
    /// Mean `A_L` accuracy over queries.
    pub mean_accuracy: f64,
    /// Mean per-query wall time, seconds.
    pub mean_time_s: f64,
    /// Number of evaluated queries.
    pub queries: usize,
    /// Mean reference-point density observed by local inference (ρ, per
    /// km²); 0 for baseline matchers.
    pub mean_density: f64,
    /// Mean constrained-kNN searches per query (NNI instrumentation).
    pub mean_knn_searches: f64,
}

/// Evaluates a baseline map matcher at the given sampling interval.
#[must_use]
pub fn evaluate_matcher<M: MapMatcher + Sync>(
    scenario: &Scenario,
    matcher: &M,
    interval_s: f64,
) -> EvalOutcome {
    let results: Vec<(f64, f64, f64, f64)> = scenario
        .queries
        .par_iter()
        .map(|q| {
            let query = resample_to_interval(&q.dense, interval_s);
            let t0 = Instant::now();
            let matched = matcher.match_trajectory(&scenario.net, &query);
            let dt = t0.elapsed().as_secs_f64();
            let acc = matched
                .map(|m| accuracy_al(&q.truth, &m.route, &scenario.net))
                .unwrap_or(0.0);
            (acc, dt, 0.0, 0.0)
        })
        .collect();
    aggregate(&results)
}

/// Resamples every query of the scenario to the evaluation interval.
fn resampled(scenario: &Scenario, interval_s: f64) -> Vec<Trajectory> {
    scenario
        .queries
        .iter()
        .map(|q| resample_to_interval(&q.dense, interval_s))
        .collect()
}

/// Evaluates HRIS (top-1 accuracy, Section IV-C protocol) at the given
/// sampling interval under `params`, optionally over a thinned archive.
#[must_use]
pub fn evaluate_hris(
    scenario: &Scenario,
    params: &HrisParams,
    interval_s: f64,
    archive_override: Option<&TrajectoryArchive>,
) -> EvalOutcome {
    let archive = archive_override.unwrap_or(&scenario.archive);
    let hris = Hris::new(&scenario.net, archive.clone(), params.clone());
    let engine = QueryEngine::new(&hris);
    let queries = resampled(scenario, interval_s);

    let t0 = Instant::now();
    let detailed = engine.infer_batch_detailed(&queries, params.k3.max(1));
    let per_query_s = t0.elapsed().as_secs_f64() / queries.len().max(1) as f64;

    let results: Vec<(f64, f64, f64, f64)> = detailed
        .into_iter()
        .zip(&scenario.queries)
        .map(|(r, q)| {
            let acc = r
                .globals
                .first()
                .map(|g| accuracy_al(&q.truth, &g.route, &scenario.net))
                .unwrap_or(0.0);
            let density = mean(r.stats.iter().map(|s| s.density).filter(|d| d.is_finite()));
            let knn = r.stats.iter().map(|s| s.knn_searches).sum::<usize>() as f64;
            (acc, per_query_s, density, knn)
        })
        .collect();
    aggregate(&results)
}

/// Observability artifacts of one instrumented evaluation run: the final
/// registry snapshot, the retained per-query traces, and the measured batch
/// wall time the phase sums should account for.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Registry state at the end of the run.
    pub snapshot: MetricsSnapshot,
    /// Per-query traces, oldest first (ring-bounded).
    pub traces: Vec<TraceRecord>,
    /// Traces evicted from the ring during the run.
    pub traces_dropped: u64,
    /// Wall seconds of the whole batch, measured outside the engine.
    pub wall_s: f64,
}

impl ObsReport {
    /// Summed wall seconds recorded for one pipeline phase (see [`PHASES`]).
    #[must_use]
    pub fn phase_sum(&self, phase: &str) -> f64 {
        self.snapshot
            .histogram_sum("hris_engine_phase_seconds", &[("phase", phase)])
            .unwrap_or(0.0)
    }

    /// `(phase, summed seconds)` for all four phases, in execution order.
    #[must_use]
    pub fn phase_sums(&self) -> Vec<(&'static str, f64)> {
        PHASES.iter().map(|p| (*p, self.phase_sum(p))).collect()
    }

    /// Human-readable end-of-run summary: phase budget against wall time,
    /// cache hit rates, slow queries and trace-ring pressure.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== Observability — phase budget ==");
        let mut phase_total = 0.0;
        for (phase, s) in self.phase_sums() {
            phase_total += s;
            let pct = if self.wall_s > 0.0 {
                100.0 * s / self.wall_s
            } else {
                0.0
            };
            let _ = writeln!(out, "{phase:>12} {s:>12.4}s {pct:>6.1}%");
        }
        let _ = writeln!(
            out,
            "{:>12} {:>12.4}s {:>6.1}%  (wall {:.4}s)",
            "phases",
            phase_total,
            if self.wall_s > 0.0 {
                100.0 * phase_total / self.wall_s
            } else {
                0.0
            },
            self.wall_s
        );
        let rate = |base: &str| -> String {
            let hits = self
                .snapshot
                .counter(&format!("{base}_hits_total"))
                .unwrap_or(0);
            let misses = self
                .snapshot
                .counter(&format!("{base}_misses_total"))
                .unwrap_or(0);
            let total = hits + misses;
            if total == 0 {
                format!("{hits}/{total}")
            } else {
                format!(
                    "{hits}/{total} ({:.1}%)",
                    100.0 * hits as f64 / total as f64
                )
            }
        };
        let _ = writeln!(
            out,
            "   sp cache hits {}   candidate memo hits {}",
            rate("hris_engine_sp_cache"),
            rate("hris_engine_candidate_memo")
        );
        let _ = writeln!(
            out,
            "   queries {}   slow {}   traces kept {} dropped {}",
            self.snapshot
                .counter("hris_engine_queries_total")
                .unwrap_or(0),
            self.snapshot
                .counter("hris_engine_slow_queries_total")
                .unwrap_or(0),
            self.traces.len(),
            self.traces_dropped
        );
        let _ = writeln!(
            out,
            "   slo good {} breach {}   span trees on {}/{} traces",
            self.snapshot
                .counter("hris_engine_slo_good_total")
                .unwrap_or(0),
            self.snapshot
                .counter("hris_engine_slo_breach_total")
                .unwrap_or(0),
            self.traces.iter().filter(|t| !t.spans.is_empty()).count(),
            self.traces.len()
        );
        out
    }

    /// The whole report as one JSON document:
    /// `{"wall_s": ..., "registry": {"metrics": [...]}, "traces": [...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let traces: Vec<String> = self.traces.iter().map(TraceRecord::to_json).collect();
        format!(
            "{{\"wall_s\":{},\"traces_dropped\":{},\"registry\":{},\"traces\":[{}]}}",
            self.wall_s,
            self.traces_dropped,
            self.snapshot.to_json(),
            traces.join(",")
        )
    }
}

/// [`evaluate_hris`] with engine instrumentation: runs the same workload on
/// an observed engine and returns the usual outcome plus an [`ObsReport`].
///
/// The instrumented engine runs queries sequentially (`batch_parallel` off,
/// [`ExecMode::Sequential`]) so the per-phase wall times sum to the batch
/// wall time on any host — the report is an attribution profile, not a
/// throughput benchmark. Results are byte-identical either way.
#[must_use]
pub fn evaluate_hris_observed(
    scenario: &Scenario,
    params: &HrisParams,
    interval_s: f64,
    archive_override: Option<&TrajectoryArchive>,
) -> (EvalOutcome, ObsReport) {
    let archive = archive_override.unwrap_or(&scenario.archive);
    let hris = Hris::new(&scenario.net, archive.clone(), params.clone());
    let cfg = EngineConfig::builder()
        .mode(ExecMode::Sequential)
        .batch_parallel(false)
        .observability(true)
        .build()
        .expect("static engine configuration");
    let engine = QueryEngine::with_config(&hris, cfg);
    let queries = resampled(scenario, interval_s);

    let t0 = Instant::now();
    let detailed = engine.infer_batch_detailed(&queries, params.k3.max(1));
    let wall_s = t0.elapsed().as_secs_f64();
    let per_query_s = wall_s / queries.len().max(1) as f64;

    let results: Vec<(f64, f64, f64, f64)> = detailed
        .into_iter()
        .zip(&scenario.queries)
        .map(|(r, q)| {
            let acc = r
                .globals
                .first()
                .map(|g| accuracy_al(&q.truth, &g.route, &scenario.net))
                .unwrap_or(0.0);
            let density = mean(r.stats.iter().map(|s| s.density).filter(|d| d.is_finite()));
            let knn = r.stats.iter().map(|s| s.knn_searches).sum::<usize>() as f64;
            (acc, per_query_s, density, knn)
        })
        .collect();

    let obs = engine.observability().expect("instrumented engine");
    let report = ObsReport {
        snapshot: obs.snapshot(),
        traces: obs.traces(),
        traces_dropped: obs.dropped_traces(),
        wall_s,
    };
    (aggregate(&results), report)
}

/// Runs the base workload on an explain-enabled engine and returns the
/// drained audit records — one JSON document per query, keyed by trace id
/// (the `experiments --audit-out` pass).
///
/// The ring is sized to the workload so no audit is evicted, and the engine
/// runs sequentially so record order matches query order.
#[must_use]
pub fn audit_hris(
    scenario: &Scenario,
    params: &HrisParams,
    interval_s: f64,
    top_k_routes: usize,
) -> Vec<hris::AuditRecord> {
    let hris = Hris::new(&scenario.net, scenario.archive.clone(), params.clone());
    let cfg = EngineConfig::builder()
        .mode(ExecMode::Sequential)
        .batch_parallel(false)
        .explain(scenario.queries.len().max(1))
        .explain_top_k(top_k_routes)
        .build()
        .expect("static engine configuration");
    let engine = QueryEngine::with_config(&hris, cfg);
    let queries = resampled(scenario, interval_s);
    let _ = engine.infer_batch_detailed(&queries, params.k3.max(1));
    engine
        .audit_ring()
        .expect("explain-enabled engine")
        .drain()
}

/// Per-query top-k accuracies for Figure 14a: returns `(avg, max)` accuracy
/// over each query's top-`k` routes, averaged across queries.
#[must_use]
pub fn evaluate_hris_topk(
    scenario: &Scenario,
    params: &HrisParams,
    interval_s: f64,
    k: usize,
) -> (f64, f64) {
    let hris = Hris::new(&scenario.net, scenario.archive.clone(), params.clone());
    let engine = QueryEngine::new(&hris);
    let queries = resampled(scenario, interval_s);
    let batches = engine.infer_batch(&queries, k.max(1));

    let results: Vec<(f64, f64)> = batches
        .into_iter()
        .zip(&scenario.queries)
        .map(|(routes, q)| {
            if routes.is_empty() {
                return (0.0, 0.0);
            }
            let accs: Vec<f64> = routes
                .iter()
                .map(|r| accuracy_al(&q.truth, &r.route, &scenario.net))
                .collect();
            let avg = mean(accs.iter().copied());
            let max = accs.iter().copied().fold(0.0, f64::max);
            (avg, max)
        })
        .collect();
    let avg = mean(results.iter().map(|r| r.0));
    let max = mean(results.iter().map(|r| r.1));
    (avg, max)
}

fn aggregate(results: &[(f64, f64, f64, f64)]) -> EvalOutcome {
    EvalOutcome {
        mean_accuracy: mean(results.iter().map(|r| r.0)),
        mean_time_s: mean(results.iter().map(|r| r.1)),
        queries: results.len(),
        mean_density: mean(results.iter().map(|r| r.2).filter(|d| *d > 0.0)),
        mean_knn_searches: mean(results.iter().map(|r| r.3)),
    }
}

fn mean<I: Iterator<Item = f64>>(iter: I) -> f64 {
    let (mut sum, mut count) = (0.0, 0usize);
    for v in iter {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use hris_mapmatch::StMatcher;

    fn scenario() -> Scenario {
        let mut cfg = ScenarioConfig::quick(11);
        cfg.sim.num_trips = 250;
        cfg.num_queries = 3;
        Scenario::build(cfg)
    }

    #[test]
    fn matcher_evaluation_produces_sane_numbers() {
        let s = scenario();
        let out = evaluate_matcher(&s, &StMatcher::default(), 60.0);
        assert_eq!(out.queries, 3);
        assert!((0.0..=1.0).contains(&out.mean_accuracy));
        assert!(out.mean_time_s >= 0.0);
        // A 60 s interval on clean-ish data should match most of the route.
        assert!(out.mean_accuracy > 0.3, "got {}", out.mean_accuracy);
    }

    #[test]
    fn hris_evaluation_produces_sane_numbers() {
        let s = scenario();
        let out = evaluate_hris(&s, &HrisParams::default(), 180.0, None);
        assert_eq!(out.queries, 3);
        assert!((0.0..=1.0).contains(&out.mean_accuracy));
        assert!(out.mean_accuracy > 0.3, "got {}", out.mean_accuracy);
    }

    #[test]
    fn topk_max_at_least_avg() {
        let s = scenario();
        let (avg, max) = evaluate_hris_topk(&s, &HrisParams::default(), 180.0, 3);
        assert!(max >= avg - 1e-9);
        assert!((0.0..=1.0).contains(&max));
    }

    #[test]
    fn observed_evaluation_matches_plain_and_accounts_wall_time() {
        let s = scenario();
        let params = HrisParams::default();
        let plain = evaluate_hris(&s, &params, 180.0, None);
        let (out, report) = evaluate_hris_observed(&s, &params, 180.0, None);
        // Instrumentation must not move accuracy at all.
        assert!(
            (out.mean_accuracy - plain.mean_accuracy).abs() < 1e-12,
            "observed accuracy {} vs plain {}",
            out.mean_accuracy,
            plain.mean_accuracy
        );
        assert_eq!(report.traces.len(), 3);
        assert_eq!(
            report.snapshot.counter("hris_engine_queries_total"),
            Some(3)
        );
        // Sequential run: the four phases account for (nearly) all the wall.
        let phase_total: f64 = report.phase_sums().iter().map(|(_, s)| s).sum();
        assert!(
            phase_total <= report.wall_s * 1.001,
            "phases {phase_total} exceed wall {}",
            report.wall_s
        );
        assert!(
            phase_total >= report.wall_s * 0.9,
            "phases {phase_total} account for <90% of wall {}",
            report.wall_s
        );
        // The JSON report is machine-readable.
        let parsed: serde_json::Value =
            serde_json::from_str(&report.to_json()).expect("ObsReport::to_json parses");
        assert!(parsed["wall_s"].as_f64().unwrap() > 0.0);
        assert_eq!(parsed["traces"].as_array().unwrap().len(), 3);
        assert!(report.summary().contains("phase budget"));
    }

    #[test]
    fn thinned_archive_evaluation_runs() {
        let s = scenario();
        let thin = s.thinned_archive(0.3);
        let out = evaluate_hris(&s, &HrisParams::default(), 180.0, Some(&thin));
        assert_eq!(out.queries, 3);
    }

    #[test]
    fn engine_evaluation_matches_plain_hris() {
        // The runner's switch to the batch engine must not move accuracy at
        // all — same routes, same scores, same A_L.
        let s = scenario();
        let params = HrisParams::default();
        let hris = Hris::new(&s.net, s.archive.clone(), params.clone());
        let out = evaluate_hris(&s, &params, 180.0, None);
        let direct: Vec<f64> = s
            .queries
            .iter()
            .map(|q| {
                let query = resample_to_interval(&q.dense, 180.0);
                hris.infer_routes(&query, params.k3.max(1))
                    .first()
                    .map(|r| accuracy_al(&q.truth, &r.route, &s.net))
                    .unwrap_or(0.0)
            })
            .collect();
        let want = mean(direct.into_iter());
        assert!(
            (out.mean_accuracy - want).abs() < 1e-12,
            "engine path changed accuracy: {} vs {}",
            out.mean_accuracy,
            want
        );
    }
}
