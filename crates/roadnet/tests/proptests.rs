//! Property-based tests for graph algorithms and the network generator.

use hris_roadnet::digraph::DiGraph;
use hris_roadnet::{generator, CostModel, NetworkConfig, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random digraph as an edge list over `n` nodes.
fn digraph_strategy() -> impl Strategy<Value = DiGraph> {
    (2usize..12).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n, 0.1..100.0f64), 0..60).prop_map(move |edges| {
            let mut g = DiGraph::with_nodes(n);
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(u, v, w);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ksp_first_path_is_dijkstra(g in digraph_strategy(), k in 1usize..6) {
        let n = g.num_nodes();
        let (s, t) = (0, n - 1);
        let paths = g.k_shortest_paths(s, t, k);
        match g.shortest_path(s, t) {
            None => prop_assert!(paths.is_empty()),
            Some(best) => {
                prop_assert!(!paths.is_empty());
                prop_assert!((paths[0].cost - best.cost).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn ksp_sorted_simple_distinct(g in digraph_strategy(), k in 1usize..8) {
        let n = g.num_nodes();
        let paths = g.k_shortest_paths(0, n - 1, k);
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9);
        }
        let mut seen_paths = HashSet::new();
        for p in &paths {
            // Simple (loopless).
            let mut seen = HashSet::new();
            for &nd in &p.nodes {
                prop_assert!(seen.insert(nd));
            }
            // Distinct.
            prop_assert!(seen_paths.insert(p.nodes.clone()));
            // Cost is consistent with the edges.
            prop_assert!((g.path_cost(&p.nodes) - p.cost).abs() < 1e-6);
            // Endpoints correct.
            prop_assert_eq!(*p.nodes.first().unwrap(), 0);
            prop_assert_eq!(*p.nodes.last().unwrap(), n - 1);
        }
    }

    #[test]
    fn scc_is_an_equivalence_over_mutual_reachability(g in digraph_strategy()) {
        let comp = g.tarjan_scc();
        let n = g.num_nodes();
        // Mutual reachability oracle via BFS.
        let reach: Vec<Vec<bool>> = (0..n)
            .map(|s| {
                let hops = g.bfs_hops(s);
                hops.iter().map(|&h| h != usize::MAX).collect()
            })
            .collect();
        for u in 0..n {
            for v in 0..n {
                let mutual = reach[u][v] && reach[v][u];
                prop_assert_eq!(comp[u] == comp[v], mutual, "u={} v={}", u, v);
            }
        }
    }

    #[test]
    fn generated_networks_strongly_connected(seed in 0u64..40, removal in 0.0..0.3f64, oneway in 0.0..0.3f64) {
        let cfg = NetworkConfig {
            blocks_x: 5,
            blocks_y: 5,
            block_m: 150.0,
            removal_frac: removal,
            oneway_frac: oneway,
            seed,
            ..NetworkConfig::small(seed)
        };
        let net = generator::generate(&cfg);
        prop_assert!(net.is_strongly_connected());
        // Every shortest path between random nodes exists and is connected.
        let a = NodeId((seed % net.num_nodes() as u64) as u32);
        let b = NodeId(((seed * 7 + 3) % net.num_nodes() as u64) as u32);
        let p = hris_roadnet::shortest::shortest_path(&net, a, b, CostModel::Distance);
        prop_assert!(p.is_some());
        let p = p.unwrap();
        prop_assert!(p.route().is_connected(&net));
    }

    #[test]
    fn without_loops_is_idempotent_and_node_simple(
        seed in 0u64..20,
        walk in prop::collection::vec(0usize..4, 1..40),
    ) {
        let net = generator::generate(&NetworkConfig {
            blocks_x: 4,
            blocks_y: 4,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(seed)
        });
        // Build a random connected walk (may backtrack and loop freely).
        let mut segs = vec![net.segments()[seed as usize % net.num_segments()].id];
        for &choice in &walk {
            let nexts = net.next_segments(*segs.last().unwrap());
            if nexts.is_empty() {
                break;
            }
            segs.push(nexts[choice % nexts.len()]);
        }
        let route = hris_roadnet::Route::new(segs);
        prop_assert!(route.is_connected(&net));
        let clean = route.without_loops(&net);
        // Idempotent.
        prop_assert_eq!(clean.without_loops(&net), clean.clone());
        // Still connected, never longer.
        prop_assert!(clean.is_connected(&net));
        prop_assert!(clean.length(&net) <= route.length(&net) + 1e-9);
        // Node-simple: no vertex visited twice.
        if !clean.is_empty() {
            let mut nodes = vec![net.segment(clean.segments()[0]).from];
            for &s in clean.segments() {
                nodes.push(net.segment(s).to);
            }
            let unique: std::collections::HashSet<_> = nodes.iter().collect();
            prop_assert_eq!(unique.len(), nodes.len(), "visited {:?}", nodes);
        }
        // Start vertex preserved — unless the whole walk collapsed into one
        // loop, in which case the clean route is legitimately empty.
        if !clean.is_empty() {
            prop_assert_eq!(clean.start_node(&net), route.start_node(&net));
        }
    }

    #[test]
    fn astar_equals_dijkstra(seed in 0u64..30, s in 0u32..36, t in 0u32..36) {
        let net = generator::generate(&NetworkConfig {
            blocks_x: 5,
            blocks_y: 5,
            ..NetworkConfig::small(seed)
        });
        let n = net.num_nodes() as u32;
        let (s, t) = (NodeId(s % n), NodeId(t % n));
        for model in [CostModel::Distance, CostModel::Time] {
            let d = hris_roadnet::shortest::shortest_path(&net, s, t, model);
            let a = hris_roadnet::shortest::astar_path(&net, s, t, model);
            match (d, a) {
                (Some(d), Some(a)) => prop_assert!((d.cost - a.cost).abs() < 1e-6),
                (None, None) => {}
                _ => prop_assert!(false, "reachability disagreement"),
            }
        }
    }

    #[test]
    fn lambda_neighborhood_matches_pairwise_hops(seed in 0u64..20, lambda in 2usize..5) {
        let net = generator::generate(&NetworkConfig {
            blocks_x: 4,
            blocks_y: 4,
            ..NetworkConfig::small(seed)
        });
        let r = net.segments()[seed as usize % net.num_segments()].id;
        for (s, h) in net.lambda_neighborhood(r, lambda) {
            prop_assert!(h < lambda);
            prop_assert_eq!(net.segment_hops(r, s, lambda + 1), Some(h));
        }
    }
}
