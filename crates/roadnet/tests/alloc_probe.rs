//! Allocation regression probe for the shortest-path oracle hot path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after the
//! oracle's trees are warm, the steady-state candidate-pair probe
//! (`route_cost_between`) must perform **zero** heap allocations — the
//! whole point of the CSR + cached-tree layout is that the per-pair inner
//! loop of local inference stops touching the allocator.
//!
//! One `#[test]` only: the counter is process-global, and a second test
//! running concurrently would attribute its allocations to ours.

use hris_roadnet::{generator, CostModel, NetworkConfig, SegmentId, SpOracle};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

/// Process-wide count, plus a per-thread one: the libtest harness threads
/// allocate on their own schedule, so the assertion below reads the
/// *thread-local* counter — only allocations made by the probing thread
/// count. (`const`-initialized so reading it never itself allocates;
/// `try_with` so allocator calls during TLS teardown stay safe.)
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static THREAD_ALLOCATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn count_one() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(std::cell::Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_pair_probe_allocates_nothing() {
    let net = generator::generate(&NetworkConfig {
        blocks_x: 6,
        blocks_y: 6,
        removal_frac: 0.1,
        oneway_frac: 0.2,
        ..NetworkConfig::small(7)
    });
    let oracle = SpOracle::build(&net);
    let m = net.num_segments() as u32;
    let pairs: Vec<(SegmentId, SegmentId)> = (0..m)
        .step_by(3)
        .map(|r| (SegmentId(r), SegmentId((r * 7 + 13) % m)))
        .collect();

    // Warm-up: computes and caches every tree the probes below will need
    // (allocations here are expected — Dijkstra runs, boxes its results).
    let mut warm = Vec::new();
    for &(r, s) in &pairs {
        for model in [CostModel::Distance, CostModel::Time] {
            warm.push(oracle.route_cost_between(r, s, model));
        }
    }

    // Steady state: identical probes answered from the reachability matrix
    // and cached trees. Not one heap allocation is allowed.
    let mut check = Vec::with_capacity(warm.len());
    let before = thread_allocations();
    for _round in 0..16 {
        check.clear();
        for &(r, s) in &pairs {
            for model in [CostModel::Distance, CostModel::Time] {
                check.push(oracle.route_cost_between(r, s, model));
            }
        }
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state route_cost_between probes must not allocate"
    );
    // And the answers are the warm-up's, bit for bit.
    assert_eq!(warm.len(), check.len());
    for (w, c) in warm.iter().zip(&check) {
        match (w, c) {
            (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            (None, None) => {}
            other => panic!("probe answer changed between rounds: {other:?}"),
        }
    }
}
