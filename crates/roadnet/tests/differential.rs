//! Differential battery: a deliberately naive shortest-path oracle against
//! the production Dijkstra and A* implementations, over randomly generated
//! networks.
//!
//! The oracle below shares nothing with `shortest.rs` but the cost model —
//! no binary heap, no early exit, no heuristic — so an agreement across
//! thousands of random (network, source, target) triples is strong evidence
//! both optimized implementations are exact.

use hris_roadnet::shortest::{
    astar_path, route_between_segments, shortest_costs_from, shortest_path,
};
use hris_roadnet::{
    generator, CostModel, NetworkConfig, NodeId, RoadNetwork, ScratchBuffers, SegmentId, SpOracle,
};
use proptest::prelude::*;

/// Textbook O(V²) single-source Dijkstra: linear-scan extraction, no heap,
/// no early exit. Returns the full distance vector.
fn naive_dijkstra(net: &RoadNetwork, source: NodeId, model: CostModel) -> Vec<f64> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    dist[source.index()] = 0.0;
    for _ in 0..n {
        let mut u = usize::MAX;
        let mut best = f64::INFINITY;
        for v in 0..n {
            if !done[v] && dist[v] < best {
                best = dist[v];
                u = v;
            }
        }
        if u == usize::MAX {
            break;
        }
        done[u] = true;
        for &sid in net.out_segments(NodeId(u as u32)) {
            let seg = net.segment(sid);
            let v = seg.to.index();
            let nd = dist[u] + model.cost(seg);
            if nd < dist[v] {
                dist[v] = nd;
            }
        }
    }
    dist
}

fn small_net(seed: u64, removal: f64, oneway: f64) -> RoadNetwork {
    generator::generate(&NetworkConfig {
        blocks_x: 4,
        blocks_y: 4,
        block_m: 180.0,
        removal_frac: removal,
        oneway_frac: oneway,
        ..NetworkConfig::small(seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dijkstra_matches_naive_oracle(
        seed in 0u64..50,
        removal in 0.0..0.25f64,
        oneway in 0.0..0.4f64,
        s in 0u32..64,
    ) {
        let net = small_net(seed, removal, oneway);
        let n = net.num_nodes() as u32;
        let s = NodeId(s % n);
        for model in [CostModel::Distance, CostModel::Time] {
            let want = naive_dijkstra(&net, s, model);
            for t in 0..n {
                match shortest_path(&net, s, NodeId(t), model) {
                    Some(p) => {
                        prop_assert!(
                            (p.cost - want[t as usize]).abs() < 1e-6,
                            "s={s:?} t={t} model={model:?}: {} vs oracle {}",
                            p.cost,
                            want[t as usize]
                        );
                        // The reported cost is consistent with the path's
                        // own segments.
                        let derived: f64 = p
                            .segments
                            .iter()
                            .map(|&sid| model.cost(net.segment(sid)))
                            .sum();
                        prop_assert!((derived - p.cost).abs() < 1e-6);
                        prop_assert_eq!(*p.nodes.first().unwrap(), s);
                        prop_assert_eq!(*p.nodes.last().unwrap(), NodeId(t));
                    }
                    None => prop_assert!(
                        want[t as usize].is_infinite(),
                        "dijkstra says unreachable, oracle found {}",
                        want[t as usize]
                    ),
                }
            }
        }
    }

    #[test]
    fn astar_matches_naive_oracle(
        seed in 50u64..100,
        removal in 0.0..0.25f64,
        oneway in 0.0..0.4f64,
        s in 0u32..64,
    ) {
        let net = small_net(seed, removal, oneway);
        let n = net.num_nodes() as u32;
        let s = NodeId(s % n);
        for model in [CostModel::Distance, CostModel::Time] {
            let want = naive_dijkstra(&net, s, model);
            for t in 0..n {
                match astar_path(&net, s, NodeId(t), model) {
                    Some(p) => {
                        prop_assert!(
                            (p.cost - want[t as usize]).abs() < 1e-6,
                            "s={s:?} t={t} model={model:?}: {} vs oracle {}",
                            p.cost,
                            want[t as usize]
                        );
                        let derived: f64 = p
                            .segments
                            .iter()
                            .map(|&sid| model.cost(net.segment(sid)))
                            .sum();
                        prop_assert!((derived - p.cost).abs() < 1e-6);
                        prop_assert_eq!(*p.nodes.first().unwrap(), s);
                        prop_assert_eq!(*p.nodes.last().unwrap(), NodeId(t));
                    }
                    None => prop_assert!(want[t as usize].is_infinite()),
                }
            }
        }
    }

    /// The precomputed oracle's full shortest-path trees agree with the
    /// naive O(V²) Dijkstra from every source of a random network, and its
    /// segment-level routes agree with the classic per-pair search —
    /// including the unreachable cases answered by the reachability matrix.
    #[test]
    fn sp_oracle_matches_naive_oracle(
        seed in 100u64..150,
        removal in 0.0..0.25f64,
        oneway in 0.0..0.4f64,
    ) {
        let net = small_net(seed, removal, oneway);
        let oracle = SpOracle::build(&net);
        let n = net.num_nodes() as u32;
        for model in [CostModel::Distance, CostModel::Time] {
            for s in 0..n {
                let s = NodeId(s);
                let want = naive_dijkstra(&net, s, model);
                let spt = oracle.spt(s, model);
                for (t, &w) in want.iter().enumerate() {
                    let g = spt.dist_to(NodeId(t as u32));
                    if g.is_finite() || w.is_finite() {
                        prop_assert!((g - w).abs() < 1e-6, "s={s:?} t={t}: {g} vs {w}");
                    }
                    // The reach matrix must agree with the distances.
                    prop_assert_eq!(
                        oracle.reachable(s, NodeId(t as u32)),
                        w.is_finite(),
                        "reachability disagrees at s={:?} t={}", s, t
                    );
                }
            }
        }
        // Segment-level routes: byte-identical to the classic search.
        let m = net.num_segments() as u32;
        for (r, s) in (0..m).zip((0..m).rev()) {
            let (r, s) = (SegmentId(r), SegmentId(s));
            for model in [CostModel::Distance, CostModel::Time] {
                let got = oracle.route_between(r, s, model);
                let want = route_between_segments(&net, r, s, model);
                prop_assert_eq!(&got, &want, "route {:?}->{:?} {:?}", r, s, model);
            }
        }
    }

    /// Reusing one `ScratchBuffers` across many point-to-point queries is
    /// indistinguishable from allocating fresh buffers per query: epoch
    /// stamping must make stale state invisible.
    #[test]
    fn scratch_reuse_matches_fresh_allocation(
        seed in 150u64..200,
        removal in 0.0..0.25f64,
        oneway in 0.0..0.4f64,
        pairs in prop::collection::vec((0u32..4096, 0u32..4096), 1..24),
    ) {
        let net = small_net(seed, removal, oneway);
        let oracle = SpOracle::build(&net);
        let n = net.num_nodes() as u32;
        let mut reused = ScratchBuffers::for_network(&net);
        for (a, b) in pairs {
            let (s, t) = (NodeId(a % n), NodeId(b % n));
            for model in [CostModel::Distance, CostModel::Time] {
                let mut fresh = ScratchBuffers::for_network(&net);
                let got = oracle.point_to_point(s, t, model, &mut reused);
                let want = oracle.point_to_point(s, t, model, &mut fresh);
                prop_assert_eq!(&got, &want, "{:?}->{:?} {:?}", s, t, model);
                // And both agree with the classic early-exit Dijkstra.
                let classic = shortest_path(&net, s, t, model);
                prop_assert_eq!(&got, &classic);
            }
        }
    }

    #[test]
    fn all_costs_match_naive_oracle(
        seed in 0u64..40,
        oneway in 0.0..0.4f64,
        s in 0u32..64,
    ) {
        let net = small_net(seed, 0.15, oneway);
        let s = NodeId(s % net.num_nodes() as u32);
        for model in [CostModel::Distance, CostModel::Time] {
            let got = shortest_costs_from(&net, s, model);
            let want = naive_dijkstra(&net, s, model);
            prop_assert_eq!(got.len(), want.len());
            for (v, (g, w)) in got.iter().zip(&want).enumerate() {
                if g.is_finite() || w.is_finite() {
                    prop_assert!((g - w).abs() < 1e-6, "node {v}: {g} vs {w}");
                }
            }
        }
    }
}
