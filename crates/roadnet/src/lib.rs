//! Road-network substrate for the HRIS system.
//!
//! Provides:
//! - [`RoadNetwork`] — the directed road graph of Definitions 2–4 of the
//!   paper: segments with polyline shape, length and speed constraints,
//!   candidate-edge lookup (Definition 5) backed by an R-tree over segment
//!   bounding boxes, and segment-level hop search for λ-neighborhoods
//!   (Definition 8).
//! - [`Route`] — a connected sequence of road segments (Definition 4).
//! - [`DiGraph`] — a generic weighted digraph with Dijkstra, Yen's K-shortest
//!   simple paths, and Tarjan SCC; used both here and by the traverse-graph
//!   construction in the core crate.
//! - [`generator`] — a synthetic urban network generator standing in for the
//!   paper's Beijing road network (see DESIGN.md, substitutions table).

#![warn(missing_docs)]

pub mod digraph;
pub mod fxhash;
pub mod generator;
pub mod ids;
pub mod network;
pub mod oracle;
pub mod osm;
pub mod route;
pub mod shortest;
pub mod subnet;

pub use digraph::{CsrView, DiGraph, DijkstraScratch};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use generator::{NetworkConfig, RoadClass};
pub use ids::{NodeId, SegmentId};
pub use network::{LambdaSoA, RoadNetwork, Segment};
pub use oracle::{CsrAdjacency, ScratchBuffers, SpOracle, SptTree};
pub use osm::{parse_osm_xml, OsmNetwork};
pub use route::Route;
pub use shortest::{CostModel, PathResult, SpCache};
pub use subnet::SubNetwork;
