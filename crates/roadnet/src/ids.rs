//! Strongly-typed identifiers for road-network entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a road-network vertex (intersection or terminal point).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of a directed road segment (Definition 2 of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SegmentId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl SegmentId {
    /// The id as a `usize` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(SegmentId(42).to_string(), "r42");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(SegmentId(10) > SegmentId(9));
    }
}
