//! A tiny, deterministic, non-cryptographic hasher (the rustc "Fx" scheme).
//!
//! Profiling the local-inference hot path showed the default SipHash
//! implementation behind `std::collections::HashMap` accounting for a large
//! share of per-query CPU (hashing small integer keys millions of times per
//! second). The keys on the hot path are segment/node ids and interned
//! indices — short, trusted, and never attacker-controlled — so a fast
//! multiply-rotate hash is appropriate. This module is self-contained (no
//! external crate) and its hashes are stable within a process, which is all
//! the callers rely on: every consumer was audited to be independent of map
//! iteration order (the previous `RandomState` maps already re-seeded per
//! process, so order independence was a pre-existing requirement).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx scheme (a gold-ratio derived odd
/// constant that mixes well for small integer keys).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast multiply-rotate hasher for small trusted keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the Fx hash — drop-in for hot-path integer keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the Fx hash.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let mut seen = FxHashSet::default();
        for i in 0u32..1000 {
            seen.insert(i);
        }
        assert_eq!(seen.len(), 1000);
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write_u64(0xdead_bef0);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn byte_writes_match_padding_behaviour() {
        // 11 bytes: one full chunk + 3-byte zero-padded tail; must not panic
        // and must differ from the 8-byte prefix alone.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a.finish(), b.finish());
    }
}
