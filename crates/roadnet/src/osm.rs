//! Minimal OpenStreetMap XML (`.osm`) loader.
//!
//! The reproduction runs on the synthetic generator, but a downstream user
//! will want real streets. This module parses the small, stable subset of
//! OSM XML needed for routing — `<node>` elements and `<way>`s carrying a
//! `highway` tag — without pulling in an XML dependency (the subset is
//! strictly line-oriented attribute soup, handled with a tiny scanner).
//!
//! Mapping:
//! - node `lat`/`lon` → planar metres via a [`LocalProjection`] centred on
//!   the data's bounding-box centre;
//! - each consecutive node pair of a highway way becomes one road segment
//!   (both directions unless `oneway=yes`);
//! - `highway=motorway|trunk` → [`RoadClass::Highway`],
//!   `primary|secondary|tertiary` → [`RoadClass::Arterial`],
//!   everything else routable → [`RoadClass::Residential`];
//!   an explicit `maxspeed` (km/h integer) overrides the class default.
//!
//! Ways referencing unknown nodes are skipped; the loader never panics on
//! malformed input, it just ignores what it cannot understand.

use crate::generator::RoadClass;
use crate::network::{RoadNetwork, RoadNetworkBuilder};
use crate::NodeId;
use hris_geo::{LatLon, LocalProjection, Polyline};
use std::collections::HashMap;

/// Result of a successful OSM load.
pub struct OsmNetwork {
    /// The constructed road network (planar metres).
    pub network: RoadNetwork,
    /// The projection used, for mapping results back to lat/lon.
    pub projection: LocalProjection,
}

/// Parses OSM XML text into a road network.
///
/// Returns `None` when no routable way survives parsing.
#[must_use]
pub fn parse_osm_xml(xml: &str) -> Option<OsmNetwork> {
    // ---- pass 1: nodes ---------------------------------------------------
    let mut nodes: HashMap<i64, LatLon> = HashMap::new();
    for tag in elements(xml, "node") {
        let (Some(id), Some(lat), Some(lon)) = (
            attr(tag, "id").and_then(|v| v.parse::<i64>().ok()),
            attr(tag, "lat").and_then(|v| v.parse::<f64>().ok()),
            attr(tag, "lon").and_then(|v| v.parse::<f64>().ok()),
        ) else {
            continue;
        };
        nodes.insert(id, LatLon::new(lat, lon));
    }
    if nodes.is_empty() {
        return None;
    }

    // Projection centred on the data.
    let (mut lat_min, mut lat_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut lon_min, mut lon_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for ll in nodes.values() {
        lat_min = lat_min.min(ll.lat);
        lat_max = lat_max.max(ll.lat);
        lon_min = lon_min.min(ll.lon);
        lon_max = lon_max.max(ll.lon);
    }
    let projection = LocalProjection::new(LatLon::new(
        (lat_min + lat_max) / 2.0,
        (lon_min + lon_max) / 2.0,
    ));

    // ---- pass 2: ways ----------------------------------------------------
    struct Way {
        node_refs: Vec<i64>,
        class: RoadClass,
        speed_ms: f64,
        oneway: bool,
    }
    let mut ways: Vec<Way> = Vec::new();
    for body in blocks(xml, "way") {
        let mut node_refs = Vec::new();
        let mut highway: Option<String> = None;
        let mut maxspeed: Option<f64> = None;
        let mut oneway = false;
        for nd in elements(body, "nd") {
            if let Some(r) = attr(nd, "ref").and_then(|v| v.parse::<i64>().ok()) {
                node_refs.push(r);
            }
        }
        for tag in elements(body, "tag") {
            match (attr(tag, "k"), attr(tag, "v")) {
                (Some("highway"), Some(v)) => highway = Some(v.to_string()),
                (Some("maxspeed"), Some(v)) => {
                    // "50", "50 km/h" — take the leading integer.
                    let digits: String = v.chars().take_while(char::is_ascii_digit).collect();
                    maxspeed = digits.parse::<f64>().ok().map(|kmh| kmh / 3.6);
                }
                (Some("oneway"), Some("yes" | "true" | "1")) => oneway = true,
                _ => {}
            }
        }
        let Some(hw) = highway else { continue };
        let class = match hw.as_str() {
            "motorway" | "motorway_link" | "trunk" | "trunk_link" => RoadClass::Highway,
            "primary" | "primary_link" | "secondary" | "secondary_link" | "tertiary"
            | "tertiary_link" => RoadClass::Arterial,
            "residential" | "unclassified" | "living_street" | "service" | "road" => {
                RoadClass::Residential
            }
            _ => continue, // footways, cycleways, etc. are not drivable
        };
        if node_refs.len() < 2 {
            continue;
        }
        ways.push(Way {
            node_refs,
            class,
            speed_ms: maxspeed.unwrap_or_else(|| class.speed_limit()),
            oneway,
        });
    }
    if ways.is_empty() {
        return None;
    }

    // ---- build -------------------------------------------------------------
    let mut b = RoadNetworkBuilder::new();
    let mut built: HashMap<i64, NodeId> = HashMap::new();
    let intern = |osm_id: i64,
                  nodes: &HashMap<i64, LatLon>,
                  b: &mut RoadNetworkBuilder,
                  built: &mut HashMap<i64, NodeId>|
     -> Option<NodeId> {
        if let Some(&id) = built.get(&osm_id) {
            return Some(id);
        }
        let ll = nodes.get(&osm_id)?;
        let id = b.add_node(projection.to_local(*ll));
        built.insert(osm_id, id);
        Some(id)
    };
    let mut segments = 0usize;
    for way in &ways {
        for pair in way.node_refs.windows(2) {
            let (Some(a), Some(c)) = (
                intern(pair[0], &nodes, &mut b, &mut built),
                intern(pair[1], &nodes, &mut b, &mut built),
            ) else {
                continue;
            };
            if a == c {
                continue;
            }
            let shape = Polyline::straight(b.node(a), b.node(c));
            if shape.length() < 1e-6 {
                continue;
            }
            if way.oneway {
                b.add_segment(a, c, shape, way.speed_ms, way.class);
                segments += 1;
            } else {
                b.add_two_way(a, c, shape, way.speed_ms, way.class);
                segments += 2;
            }
        }
    }
    if segments == 0 {
        return None;
    }
    Some(OsmNetwork {
        network: b.build(),
        projection,
    })
}

/// Yields the attribute soup of every `<name …>` element (self-closing or
/// opening tag), excluding the closing `>`.
fn elements<'a>(xml: &'a str, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
    let open = format!("<{name} ");
    let mut rest = xml;
    std::iter::from_fn(move || {
        let start = rest.find(&open)?;
        let after = &rest[start + open.len()..];
        let end = after.find('>')?;
        let body = &after[..end];
        rest = &after[end..];
        Some(body.trim_end_matches('/').trim())
    })
}

/// Yields the full inner block of every `<name …>…</name>` element.
fn blocks<'a>(xml: &'a str, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
    let open = format!("<{name} ");
    let close = format!("</{name}>");
    let mut rest = xml;
    std::iter::from_fn(move || {
        let start = rest.find(&open)?;
        let after = &rest[start..];
        let end = after.find(&close)?;
        let body = &after[..end];
        rest = &after[end + close.len()..];
        Some(body)
    })
}

/// Extracts `key="value"` from an attribute string.
fn attr<'a>(tag: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("{key}=\"");
    let start = tag.find(&pat)? + pat.len();
    let rest = &tag[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6">
  <node id="1" lat="39.9000" lon="116.4000"/>
  <node id="2" lat="39.9010" lon="116.4000"/>
  <node id="3" lat="39.9010" lon="116.4012"/>
  <node id="4" lat="39.9000" lon="116.4012"/>
  <node id="5" lat="39.9020" lon="116.4000"/>
  <way id="100">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="101">
    <nd ref="3"/>
    <nd ref="4"/>
    <nd ref="1"/>
    <tag k="highway" v="primary"/>
    <tag k="maxspeed" v="70"/>
  </way>
  <way id="102">
    <nd ref="2"/>
    <nd ref="5"/>
    <tag k="highway" v="tertiary"/>
    <tag k="oneway" v="yes"/>
  </way>
  <way id="103">
    <nd ref="1"/>
    <nd ref="4"/>
    <tag k="highway" v="footway"/>
  </way>
  <way id="104">
    <nd ref="1"/>
    <nd ref="999"/>
    <tag k="highway" v="residential"/>
  </way>
</osm>"#;

    #[test]
    fn parses_nodes_ways_and_classes() {
        let osm = parse_osm_xml(SAMPLE).expect("sample parses");
        let net = &osm.network;
        assert_eq!(net.num_nodes(), 5);
        // way 100: 2 pairs two-way = 4; way 101: 2 pairs two-way = 4;
        // way 102: 1 pair one-way = 1; footway skipped; dangling ref skipped.
        assert_eq!(net.num_segments(), 9);
        // maxspeed=70 km/h on way 101 overrides the arterial default.
        let fast = net
            .segments()
            .iter()
            .filter(|s| (s.speed_limit - 70.0 / 3.6).abs() < 1e-9)
            .count();
        assert_eq!(fast, 4);
        // Classes mapped.
        assert!(net
            .segments()
            .iter()
            .any(|s| s.class == RoadClass::Arterial));
        assert!(net
            .segments()
            .iter()
            .any(|s| s.class == RoadClass::Residential));
    }

    #[test]
    fn geometry_is_planar_and_scaled() {
        let osm = parse_osm_xml(SAMPLE).unwrap();
        // Nodes 1→2 are 0.001° latitude apart ≈ 111 m.
        let d: f64 = osm
            .network
            .segments()
            .iter()
            .map(|s| s.length)
            .fold(f64::INFINITY, f64::min);
        assert!(d > 50.0 && d < 200.0, "min segment {d} m");
        // Projection roundtrip recovers lat/lon.
        let p = osm.network.node(crate::NodeId(0));
        let ll = osm.projection.to_latlon(p);
        assert!((ll.lat - 39.9).abs() < 0.01);
        assert!((ll.lon - 116.4).abs() < 0.01);
    }

    #[test]
    fn oneway_produces_single_direction() {
        let osm = parse_osm_xml(SAMPLE).unwrap();
        let net = &osm.network;
        // Find node 5's planar position: it should have in-degree 1 and
        // out-degree 0 (end of the one-way tertiary).
        let terminal = (0..net.num_nodes() as u32)
            .map(crate::NodeId)
            .find(|&n| net.in_segments(n).len() == 1 && net.out_segments(n).is_empty());
        assert!(terminal.is_some(), "one-way terminal must exist");
    }

    #[test]
    fn garbage_inputs_return_none() {
        assert!(parse_osm_xml("").is_none());
        assert!(parse_osm_xml("<osm></osm>").is_none());
        assert!(parse_osm_xml("complete nonsense").is_none());
        // Nodes but no routable ways.
        assert!(parse_osm_xml(
            r#"<node id="1" lat="1.0" lon="2.0"/><way id="9"><nd ref="1"/><tag k="highway" v="footway"/></way>"#
        )
        .is_none());
    }

    #[test]
    fn malformed_entries_are_skipped_not_fatal() {
        let xml = r#"
  <node id="1" lat="39.9" lon="116.4"/>
  <node id="2" lat="39.901" lon="116.4"/>
  <node id="bad" lat="oops" lon="116.4"/>
  <way id="1">
    <nd ref="1"/><nd ref="2"/>
    <tag k="highway" v="residential"/>
    <tag k="maxspeed" v="fifty"/>
  </way>"#;
        let osm = parse_osm_xml(xml).expect("valid parts survive");
        assert_eq!(osm.network.num_segments(), 2);
        // Unparseable maxspeed falls back to the class default.
        assert!(
            (osm.network.segments()[0].speed_limit - RoadClass::Residential.speed_limit()).abs()
                < 1e-9
        );
    }
}
