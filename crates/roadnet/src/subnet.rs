//! Sub-network extraction: a self-contained [`RoadNetwork`] over a chosen
//! segment subset, with bidirectional id mappings back to the parent.
//!
//! Spatial sharding partitions the road graph into per-shard cells; each
//! shard can then materialize its owned-plus-replicated segment set as an
//! independent network (own R-tree, own caches, own shortest-path oracle)
//! whose memory footprint scales with the cell, not the city. Because the
//! parent network's ids are dense, the extracted network re-numbers both
//! nodes and segments; the [`SubNetwork`] wrapper keeps the order-preserving
//! maps so routes and candidate edges translate losslessly in both
//! directions.

use crate::fxhash::FxHashMap;
use crate::ids::{NodeId, SegmentId};
use crate::network::RoadNetwork;
use crate::route::Route;

/// A [`RoadNetwork`] extracted from a parent network, plus the id mappings
/// linking the two. Produced by [`RoadNetwork::extract_subnetwork`].
///
/// Both mappings are **order-preserving**: ascending local ids correspond to
/// ascending global ids, so any parent-side ordering by id survives the
/// round trip unchanged.
pub struct SubNetwork {
    /// The extracted network (re-numbered dense ids).
    pub net: RoadNetwork,
    /// Local segment id → parent segment id (index = local id).
    seg_to_global: Vec<SegmentId>,
    /// Local node id → parent node id (index = local id).
    node_to_global: Vec<NodeId>,
    /// Parent segment id → local segment id.
    global_to_local: FxHashMap<SegmentId, SegmentId>,
}

impl SubNetwork {
    /// The parent-side id of a local segment.
    #[must_use]
    pub fn global_segment(&self, local: SegmentId) -> SegmentId {
        self.seg_to_global[local.index()]
    }

    /// The local id of a parent segment, when it was extracted.
    #[must_use]
    pub fn local_segment(&self, global: SegmentId) -> Option<SegmentId> {
        self.global_to_local.get(&global).copied()
    }

    /// The parent-side id of a local node.
    #[must_use]
    pub fn global_node(&self, local: NodeId) -> NodeId {
        self.node_to_global[local.index()]
    }

    /// A local route translated into parent segment ids.
    #[must_use]
    pub fn route_to_global(&self, route: &Route) -> Route {
        Route::new(
            route
                .segments()
                .iter()
                .map(|&s| self.global_segment(s))
                .collect(),
        )
    }

    /// A parent route translated into local segment ids; `None` when any
    /// segment of the route lies outside this sub-network.
    #[must_use]
    pub fn route_to_local(&self, route: &Route) -> Option<Route> {
        let segs: Option<Vec<SegmentId>> = route
            .segments()
            .iter()
            .map(|&s| self.local_segment(s))
            .collect();
        segs.map(Route::new)
    }
}

impl RoadNetwork {
    /// Extracts the sub-network induced by `segments`: those segments plus
    /// every node incident to one of them, re-numbered densely while
    /// preserving relative id order. Duplicate ids in `segments` are
    /// accepted and collapse to one copy; geometry, speed limits and road
    /// classes carry over verbatim.
    ///
    /// Every node of the result is incident to at least one extracted
    /// segment — extraction can never produce an orphan node.
    ///
    /// # Panics
    /// Panics when a segment id is out of range for this network.
    #[must_use]
    pub fn extract_subnetwork(&self, segments: &[SegmentId]) -> SubNetwork {
        let mut wanted: Vec<SegmentId> = segments.to_vec();
        wanted.sort_unstable();
        wanted.dedup();

        // Incident nodes, ascending by parent id so the local order mirrors
        // the parent order.
        let mut nodes: Vec<NodeId> = wanted
            .iter()
            .flat_map(|&sid| {
                let s = self.segment(sid);
                [s.from, s.to]
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();

        let mut node_local: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        let mut builder = RoadNetwork::builder();
        for &nid in &nodes {
            let local = builder.add_node(self.node(nid));
            node_local.insert(nid, local);
        }

        let mut global_to_local: FxHashMap<SegmentId, SegmentId> = FxHashMap::default();
        for &sid in &wanted {
            let s = self.segment(sid);
            let local = builder.add_segment(
                node_local[&s.from],
                node_local[&s.to],
                s.geometry.clone(),
                s.speed_limit,
                s.class,
            );
            global_to_local.insert(sid, local);
        }

        SubNetwork {
            net: builder.build(),
            seg_to_global: wanted,
            node_to_global: nodes,
            global_to_local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{self, NetworkConfig};

    fn parent() -> RoadNetwork {
        generator::generate(&NetworkConfig::small(6))
    }

    #[test]
    fn extraction_preserves_geometry_and_order() {
        let net = parent();
        // Every other segment, out of order and with a duplicate.
        let mut ids: Vec<SegmentId> = (0..net.num_segments())
            .step_by(2)
            .map(|i| SegmentId(i as u32))
            .rev()
            .collect();
        ids.push(ids[0]);
        let sub = net.extract_subnetwork(&ids);

        assert_eq!(sub.net.num_segments(), ids.len() - 1);
        for local_idx in 0..sub.net.num_segments() {
            let local = SegmentId(local_idx as u32);
            let global = sub.global_segment(local);
            let (a, b) = (sub.net.segment(local), net.segment(global));
            assert_eq!(a.length, b.length);
            assert_eq!(a.speed_limit, b.speed_limit);
            assert_eq!(a.class, b.class);
            assert_eq!(sub.net.node(a.from), net.node(b.from));
            assert_eq!(sub.net.node(a.to), net.node(b.to));
            assert_eq!(sub.local_segment(global), Some(local));
        }
        // Order-preserving: ascending local ids map to ascending global ids.
        let globals: Vec<u32> = (0..sub.net.num_segments())
            .map(|i| sub.global_segment(SegmentId(i as u32)).0)
            .collect();
        assert!(globals.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn extraction_has_no_orphan_nodes() {
        let net = parent();
        let ids: Vec<SegmentId> = (0..net.num_segments() / 3)
            .map(|i| SegmentId(i as u32))
            .collect();
        let sub = net.extract_subnetwork(&ids);
        let mut incident = vec![false; sub.net.num_nodes()];
        for s in sub.net.segments() {
            incident[s.from.index()] = true;
            incident[s.to.index()] = true;
        }
        assert!(incident.into_iter().all(|b| b));
    }

    #[test]
    fn routes_translate_in_both_directions() {
        let net = parent();
        let ids: Vec<SegmentId> = (0..net.num_segments())
            .map(|i| SegmentId(i as u32))
            .collect();
        let sub = net.extract_subnetwork(&ids);
        let route = Route::new(vec![SegmentId(1), SegmentId(4), SegmentId(7)]);
        let local = sub.route_to_local(&route).expect("full extraction");
        assert_eq!(sub.route_to_global(&local), route);

        // A partial extraction cannot translate a route it does not cover.
        let partial = net.extract_subnetwork(&[SegmentId(0)]);
        assert!(partial.route_to_local(&route).is_none());
    }

    #[test]
    fn full_extraction_reproduces_candidate_lookups() {
        let net = parent();
        let ids: Vec<SegmentId> = (0..net.num_segments())
            .map(|i| SegmentId(i as u32))
            .collect();
        let sub = net.extract_subnetwork(&ids);
        assert_eq!(sub.net.num_nodes(), net.num_nodes());
        let p = net.bbox().center();
        let a = net.candidate_edges(p, 120.0);
        let b = sub.net.candidate_edges(p, 120.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.segment, sub.global_segment(y.segment));
            assert_eq!(x.dist, y.dist);
        }
    }
}
