//! Synthetic urban road-network generator.
//!
//! Stands in for the paper's Beijing road network (106,579 nodes / 141,380
//! segments). The generator produces a perturbed grid city with:
//!
//! - configurable extent (blocks × block size),
//! - **arterial** rows/columns at a configurable period with higher speed
//!   limits (so route choice has genuinely faster, longer options — the
//!   precondition for Observation 1's skewed travel patterns),
//! - random street **removals** (breaking the perfect grid into irregular
//!   super-blocks) with strong-connectivity always preserved,
//! - random **one-way** conversions of residential streets,
//! - node-position jitter and curved street shapes, so geometry is not
//!   axis-aligned and map-matching faces realistic ambiguity.
//!
//! Generation is fully deterministic for a given [`NetworkConfig::seed`].

use crate::digraph::DiGraph;
use crate::ids::NodeId;
use crate::network::{RoadNetwork, RoadNetworkBuilder};
use hris_geo::{Point, Polyline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Functional class of a road, determining its speed limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoadClass {
    /// Local street, 30 km/h.
    Residential,
    /// Arterial road, 60 km/h.
    Arterial,
    /// Urban expressway, 90 km/h.
    Highway,
}

impl RoadClass {
    /// Speed limit in metres per second.
    #[must_use]
    pub fn speed_limit(self) -> f64 {
        match self {
            RoadClass::Residential => 30.0 / 3.6,
            RoadClass::Arterial => 60.0 / 3.6,
            RoadClass::Highway => 90.0 / 3.6,
        }
    }
}

/// Parameters of the synthetic city.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Number of blocks along x.
    pub blocks_x: usize,
    /// Number of blocks along y.
    pub blocks_y: usize,
    /// Nominal block edge length in metres.
    pub block_m: f64,
    /// Node-position jitter as a fraction of `block_m` (0 to ~0.4).
    pub jitter_frac: f64,
    /// Every `arterial_every`-th row/column becomes an arterial (0 disables).
    pub arterial_every: usize,
    /// Fraction of residential streets the generator tries to remove.
    pub removal_frac: f64,
    /// Fraction of surviving residential streets converted to one-way.
    pub oneway_frac: f64,
    /// Street-midpoint perpendicular offset as a fraction of street length.
    pub curve_frac: f64,
    /// PRNG seed; equal seeds give identical networks.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            blocks_x: 24,
            blocks_y: 24,
            block_m: 250.0,
            jitter_frac: 0.15,
            arterial_every: 6,
            removal_frac: 0.12,
            oneway_frac: 0.15,
            curve_frac: 0.06,
            seed: 42,
        }
    }
}

impl NetworkConfig {
    /// A small city for unit tests (fast to generate, still irregular).
    #[must_use]
    pub fn small(seed: u64) -> Self {
        NetworkConfig {
            blocks_x: 8,
            blocks_y: 8,
            block_m: 200.0,
            arterial_every: 4,
            seed,
            ..Default::default()
        }
    }

    /// A large city for the paper-scale experiments (~40 km × 40 km when
    /// combined with the default block size — enough for 30 km queries).
    #[must_use]
    pub fn large(seed: u64) -> Self {
        NetworkConfig {
            blocks_x: 64,
            blocks_y: 64,
            block_m: 400.0,
            arterial_every: 8,
            seed,
            ..Default::default()
        }
    }

    /// Total extent in metres along x.
    #[must_use]
    pub fn extent_x(&self) -> f64 {
        self.blocks_x as f64 * self.block_m
    }

    /// Total extent in metres along y.
    #[must_use]
    pub fn extent_y(&self) -> f64 {
        self.blocks_y as f64 * self.block_m
    }
}

/// One undirected street between two grid nodes, before materialisation.
#[derive(Debug, Clone)]
struct Street {
    a: usize,
    b: usize,
    class: RoadClass,
    oneway: bool,
}

/// Generates a road network from `config`.
///
/// The result is guaranteed strongly connected: removals and one-way
/// conversions that would break strong connectivity are rolled back.
#[must_use]
pub fn generate(config: &NetworkConfig) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let nx = config.blocks_x + 1;
    let ny = config.blocks_y + 1;

    // --- nodes: jittered grid -------------------------------------------
    let mut positions = Vec::with_capacity(nx * ny);
    let jitter = config.block_m * config.jitter_frac;
    for j in 0..ny {
        for i in 0..nx {
            let dx = if jitter > 0.0 {
                rng.gen_range(-jitter..jitter)
            } else {
                0.0
            };
            let dy = if jitter > 0.0 {
                rng.gen_range(-jitter..jitter)
            } else {
                0.0
            };
            positions.push(Point::new(
                i as f64 * config.block_m + dx,
                j as f64 * config.block_m + dy,
            ));
        }
    }
    let at = |i: usize, j: usize| j * nx + i;

    // --- streets: grid edges with classes --------------------------------
    let is_arterial_line =
        |idx: usize| config.arterial_every > 0 && idx.is_multiple_of(config.arterial_every);
    let mut streets: Vec<Street> = Vec::new();
    for j in 0..ny {
        for i in 0..nx {
            if i + 1 < nx {
                let class = if is_arterial_line(j) {
                    RoadClass::Arterial
                } else {
                    RoadClass::Residential
                };
                streets.push(Street {
                    a: at(i, j),
                    b: at(i + 1, j),
                    class,
                    oneway: false,
                });
            }
            if j + 1 < ny {
                let class = if is_arterial_line(i) {
                    RoadClass::Arterial
                } else {
                    RoadClass::Residential
                };
                streets.push(Street {
                    a: at(i, j),
                    b: at(i, j + 1),
                    class,
                    oneway: false,
                });
            }
        }
    }
    // Ring highway on the outer boundary when arterials are enabled
    // (upgrades boundary arterials), echoing Beijing's ring roads.
    if config.arterial_every > 0 {
        for s in &mut streets {
            let (ai, aj) = (s.a % nx, s.a / nx);
            let (bi, bj) = (s.b % nx, s.b / nx);
            let on_boundary = |i: usize, j: usize| i == 0 || j == 0 || i == nx - 1 || j == ny - 1;
            if on_boundary(ai, aj) && on_boundary(bi, bj) {
                s.class = RoadClass::Highway;
            }
        }
    }

    // --- removals: residential only, strong connectivity preserved -------
    let removable: Vec<usize> = (0..streets.len())
        .filter(|&i| streets[i].class == RoadClass::Residential)
        .collect();
    let target_removals = (removable.len() as f64 * config.removal_frac) as usize;
    let mut alive = vec![true; streets.len()];
    let mut order = removable;
    shuffle(&mut order, &mut rng);
    let mut removed = 0usize;
    // Batched removal with rollback keeps generation O(batches · E).
    let batch = 24usize;
    let mut k = 0;
    while removed < target_removals && k < order.len() {
        let end = (k + batch).min(order.len());
        let chunk: Vec<usize> = order[k..end]
            .iter()
            .copied()
            .take(target_removals - removed)
            .collect();
        for &i in &chunk {
            alive[i] = false;
        }
        if strongly_connected(&streets, &alive, nx * ny) {
            removed += chunk.len();
        } else {
            // Retry the batch one by one.
            for &i in &chunk {
                alive[i] = true;
            }
            for &i in &chunk {
                if removed >= target_removals {
                    break;
                }
                alive[i] = false;
                if strongly_connected(&streets, &alive, nx * ny) {
                    removed += 1;
                } else {
                    alive[i] = true;
                }
            }
        }
        k = end;
    }

    // --- one-way conversions: residential only, connectivity preserved ---
    let mut oneway_candidates: Vec<usize> = (0..streets.len())
        .filter(|&i| alive[i] && streets[i].class == RoadClass::Residential)
        .collect();
    shuffle(&mut oneway_candidates, &mut rng);
    let target_oneway = (oneway_candidates.len() as f64 * config.oneway_frac) as usize;
    let mut converted = 0usize;
    for &i in &oneway_candidates {
        if converted >= target_oneway {
            break;
        }
        if rng.gen_bool(0.5) {
            let s = &mut streets[i];
            std::mem::swap(&mut s.a, &mut s.b);
        }
        streets[i].oneway = true;
        if strongly_connected(&streets, &alive, nx * ny) {
            converted += 1;
        } else {
            streets[i].oneway = false;
        }
    }

    // --- materialise ------------------------------------------------------
    let mut b = RoadNetworkBuilder::new();
    let node_ids: Vec<NodeId> = positions.iter().map(|&p| b.add_node(p)).collect();
    for (i, s) in streets.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        let pa = positions[s.a];
        let pb = positions[s.b];
        let shape = curved_shape(pa, pb, config.curve_frac, &mut rng);
        let speed = s.class.speed_limit();
        if s.oneway {
            b.add_segment(node_ids[s.a], node_ids[s.b], shape, speed, s.class);
        } else {
            b.add_two_way(node_ids[s.a], node_ids[s.b], shape, speed, s.class);
        }
    }
    let net = b.build();
    debug_assert!(net.is_strongly_connected());
    net
}

/// Gentle curve: straight line with a perpendicular midpoint offset.
fn curved_shape(a: Point, b: Point, curve_frac: f64, rng: &mut StdRng) -> Polyline {
    if curve_frac <= 0.0 {
        return Polyline::straight(a, b);
    }
    let mid = a.midpoint(b);
    let dir = b - a;
    let Some(unit) = dir.normalized() else {
        return Polyline::straight(a, b);
    };
    let normal = Point::new(-unit.y, unit.x);
    let len = dir.norm();
    let off = rng.gen_range(-1.0..1.0) * curve_frac * len;
    Polyline::new(vec![a, mid + normal * off, b])
}

/// Strong connectivity of the street multigraph restricted to `alive` streets.
fn strongly_connected(streets: &[Street], alive: &[bool], num_nodes: usize) -> bool {
    let mut g = DiGraph::with_nodes(num_nodes);
    for (i, s) in streets.iter().enumerate() {
        if !alive[i] {
            continue;
        }
        g.add_edge(s.a, s.b, 1.0);
        if !s.oneway {
            g.add_edge(s.b, s.a, 1.0);
        }
    }
    g.is_strongly_connected()
}

/// Fisher–Yates shuffle (avoids pulling in `rand`'s slice extension traits).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_network_is_strongly_connected() {
        let net = generate(&NetworkConfig::small(7));
        assert!(net.is_strongly_connected());
        assert!(net.num_nodes() > 0);
        assert!(net.num_segments() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&NetworkConfig::small(123));
        let b = generate(&NetworkConfig::small(123));
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_segments(), b.num_segments());
        for (sa, sb) in a.segments().iter().zip(b.segments().iter()) {
            assert_eq!(sa.from, sb.from);
            assert_eq!(sa.to, sb.to);
            assert!((sa.length - sb.length).abs() < 1e-9);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&NetworkConfig::small(1));
        let b = generate(&NetworkConfig::small(2));
        // Either topology or geometry must differ.
        let same_count = a.num_segments() == b.num_segments();
        let geom_same = same_count
            && a.segments()
                .iter()
                .zip(b.segments().iter())
                .all(|(x, y)| (x.length - y.length).abs() < 1e-9);
        assert!(!geom_same, "different seeds should change the network");
    }

    #[test]
    fn has_multiple_road_classes() {
        let net = generate(&NetworkConfig::small(5));
        let mut classes: Vec<RoadClass> = net.segments().iter().map(|s| s.class).collect();
        classes.dedup();
        let has = |c: RoadClass| net.segments().iter().any(|s| s.class == c);
        assert!(has(RoadClass::Residential));
        assert!(has(RoadClass::Arterial));
        assert!(has(RoadClass::Highway));
    }

    #[test]
    fn removals_thin_the_grid() {
        let full = generate(&NetworkConfig {
            removal_frac: 0.0,
            oneway_frac: 0.0,
            seed: 9,
            ..NetworkConfig::small(9)
        });
        let thinned = generate(&NetworkConfig {
            removal_frac: 0.25,
            oneway_frac: 0.0,
            seed: 9,
            ..NetworkConfig::small(9)
        });
        assert!(thinned.num_segments() < full.num_segments());
        assert!(thinned.is_strongly_connected());
    }

    #[test]
    fn oneway_creates_asymmetry() {
        let net = generate(&NetworkConfig {
            oneway_frac: 0.3,
            seed: 11,
            ..NetworkConfig::small(11)
        });
        // Count directed segments without a reverse twin.
        let mut asym = 0;
        for seg in net.segments() {
            let has_twin = net
                .out_segments(seg.to)
                .iter()
                .any(|&s| net.segment(s).to == seg.from);
            if !has_twin {
                asym += 1;
            }
        }
        assert!(
            asym > 0,
            "one-way conversion should create asymmetric pairs"
        );
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn speed_limits_match_class() {
        let net = generate(&NetworkConfig::small(3));
        for seg in net.segments() {
            assert!((seg.speed_limit - seg.class.speed_limit()).abs() < 1e-9);
        }
        assert!((RoadClass::Highway.speed_limit() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn extent_covers_configured_area() {
        let cfg = NetworkConfig::small(17);
        let net = generate(&cfg);
        let bbox = net.bbox();
        // Jitter can push slightly beyond nominal extent; allow one block.
        assert!(bbox.width() >= cfg.extent_x() - cfg.block_m);
        assert!(bbox.height() >= cfg.extent_y() - cfg.block_m);
    }
}
