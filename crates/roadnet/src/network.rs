//! The road network: directed segments with shape, length and speed limits.

use crate::digraph::DiGraph;
use crate::fxhash::FxHashMap;
use crate::generator::RoadClass;
use crate::ids::{NodeId, SegmentId};
use crate::oracle::SpOracle;
use crate::shortest::CostModel;
use hris_geo::{BBox, Point, Polyline};
use hris_rtree::{RTree, Spatial};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock};

/// A directed road segment (Definition 2 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Segment {
    /// This segment's id.
    pub id: SegmentId,
    /// Start vertex (`r.s`).
    pub from: NodeId,
    /// End vertex (`r.e`).
    pub to: NodeId,
    /// Polyline shape from `from` to `to`.
    pub geometry: Polyline,
    /// Arc length of the geometry, metres (`r.length`).
    pub length: f64,
    /// Maximum allowed speed, metres/second (`r.speed`).
    pub speed_limit: f64,
    /// Functional class of the road.
    pub class: RoadClass,
}

impl Segment {
    /// Free-flow traversal time in seconds.
    #[inline]
    #[must_use]
    pub fn travel_time(&self) -> f64 {
        self.length / self.speed_limit
    }
}

/// A candidate edge for a GPS point (Definition 5): a segment within the
/// matching radius, with projection details.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEdge {
    /// The nearby segment.
    pub segment: SegmentId,
    /// Distance from the query point to the segment, metres.
    pub dist: f64,
    /// Closest point on the segment.
    pub closest: Point,
    /// Arc-length offset of `closest` from the segment start, metres.
    pub offset: f64,
}

/// Internal R-tree payload: segment bounding box + id.
#[derive(Debug, Clone)]
struct SegEntry {
    bbox: BBox,
    id: SegmentId,
}

impl Spatial for SegEntry {
    fn bbox(&self) -> BBox {
        self.bbox
    }
}

/// Bound on memoised λ-neighborhood entries before a wholesale flush.
const LAMBDA_CACHE_CAP: usize = 1 << 17;
/// Bound on memoised candidate-edge projections before a wholesale flush.
const CAND_CACHE_CAP: usize = 1 << 16;

/// Lazily built acceleration state derived from the (immutable) network.
///
/// Every entry memoises the exact output of a pure function of the network
/// — the shortest-path oracle, λ-neighborhood hop searches, candidate-edge
/// projections — so reads through the caches are byte-identical to the
/// uncached computations and need no invalidation for the network's
/// lifetime. Cloning a network starts with fresh, empty caches; persistence
/// stores only ground truth (nodes + segments), never derived state.
struct NetCaches {
    oracle: OnceLock<Arc<SpOracle>>,
    /// `(segment, λ)` → λ-neighborhood with hop counts and chain distances.
    lambda: Mutex<FxHashMap<(u32, u32), Arc<LambdaSoA>>>,
    /// `(x bits, y bits, eps bits)` → candidate edges of that query circle.
    cands: Mutex<CandCache>,
}

/// Query-circle key (x bits, y bits, eps bits) → its candidate edges.
type CandCache = FxHashMap<(u64, u64, u64), Arc<Vec<CandidateEdge>>>;

/// A λ-neighborhood in structure-of-arrays layout: the traverse-graph
/// construction scans `segs` for interned hits and touches `hops`/`dists`
/// only on a hit, so the common miss path reads 4 bytes per entry instead
/// of a 24-byte tuple.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LambdaSoA {
    /// Neighborhood segments, in BFS discovery order.
    pub segs: Vec<SegmentId>,
    /// Hop count per segment (parallel to `segs`).
    pub hops: Vec<u32>,
    /// Best chain distance per segment (parallel to `segs`).
    pub dists: Vec<f64>,
}

impl LambdaSoA {
    fn from_tuples(tuples: &[(SegmentId, usize, f64)]) -> Self {
        LambdaSoA {
            segs: tuples.iter().map(|t| t.0).collect(),
            hops: tuples.iter().map(|t| t.1 as u32).collect(),
            dists: tuples.iter().map(|t| t.2).collect(),
        }
    }

    /// Number of neighborhood segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// `true` when the neighborhood is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

impl NetCaches {
    fn new() -> Self {
        NetCaches {
            oracle: OnceLock::new(),
            lambda: Mutex::new(FxHashMap::default()),
            cands: Mutex::new(FxHashMap::default()),
        }
    }
}

impl Clone for NetCaches {
    /// A cloned network re-derives its own caches (cheap, lazy, and avoids
    /// sharing lock contention across clones).
    fn clone(&self) -> Self {
        NetCaches::new()
    }
}

impl std::fmt::Debug for NetCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetCaches")
            .field("oracle_built", &self.oracle.get().is_some())
            .field(
                "lambda_entries",
                &self.lambda.lock().map(|m| m.len()).unwrap_or(0),
            )
            .field(
                "cand_entries",
                &self.cands.lock().map(|m| m.len()).unwrap_or(0),
            )
            .finish()
    }
}

/// The directed road network (Definition 3): vertices, segments, adjacency
/// and a spatial index over segment geometry.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    nodes: Vec<Point>,
    segments: Vec<Segment>,
    /// Segments leaving each node.
    out_segs: Vec<Vec<SegmentId>>,
    /// Segments entering each node.
    in_segs: Vec<Vec<SegmentId>>,
    seg_index: RTree<SegEntry>,
    max_speed: f64,
    hot: NetCaches,
}

/// Incremental constructor for [`RoadNetwork`].
#[derive(Debug, Default)]
pub struct RoadNetworkBuilder {
    nodes: Vec<Point>,
    segments: Vec<Segment>,
}

impl RoadNetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a vertex at `p`, returning its id.
    pub fn add_node(&mut self, p: Point) -> NodeId {
        self.nodes.push(p);
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Position of an already-added node.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Point {
        self.nodes[id.index()]
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Adds a directed segment with an explicit polyline shape.
    ///
    /// # Panics
    /// Panics if the shape does not start/end at the given nodes (within
    /// 1 m), if the speed is non-positive, or if node ids are out of range.
    pub fn add_segment(
        &mut self,
        from: NodeId,
        to: NodeId,
        shape: Polyline,
        speed_limit: f64,
        class: RoadClass,
    ) -> SegmentId {
        assert!(from.index() < self.nodes.len(), "from node out of range");
        assert!(to.index() < self.nodes.len(), "to node out of range");
        assert!(speed_limit > 0.0, "speed limit must be positive");
        assert!(
            shape.start().dist(self.nodes[from.index()]) < 1.0,
            "shape must start at the from-node"
        );
        assert!(
            shape.end().dist(self.nodes[to.index()]) < 1.0,
            "shape must end at the to-node"
        );
        let id = SegmentId(self.segments.len() as u32);
        let length = shape.length();
        self.segments.push(Segment {
            id,
            from,
            to,
            geometry: shape,
            length,
            speed_limit,
            class,
        });
        id
    }

    /// Adds a straight directed segment between two nodes.
    pub fn add_straight_segment(
        &mut self,
        from: NodeId,
        to: NodeId,
        speed_limit: f64,
        class: RoadClass,
    ) -> SegmentId {
        let shape = Polyline::straight(self.nodes[from.index()], self.nodes[to.index()]);
        self.add_segment(from, to, shape, speed_limit, class)
    }

    /// Adds a two-way road as a pair of opposite directed segments sharing
    /// the (reversed) shape. Returns `(forward, backward)`.
    pub fn add_two_way(
        &mut self,
        a: NodeId,
        b: NodeId,
        shape: Polyline,
        speed_limit: f64,
        class: RoadClass,
    ) -> (SegmentId, SegmentId) {
        let back_shape = shape.reversed();
        let f = self.add_segment(a, b, shape, speed_limit, class);
        let r = self.add_segment(b, a, back_shape, speed_limit, class);
        (f, r)
    }

    /// Finalises the network: builds adjacency lists and the spatial index.
    #[must_use]
    pub fn build(self) -> RoadNetwork {
        let n = self.nodes.len();
        let mut out_segs = vec![Vec::new(); n];
        let mut in_segs = vec![Vec::new(); n];
        let mut max_speed = 0.0f64;
        let mut entries = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            out_segs[seg.from.index()].push(seg.id);
            in_segs[seg.to.index()].push(seg.id);
            max_speed = max_speed.max(seg.speed_limit);
            entries.push(SegEntry {
                bbox: seg.geometry.bbox(),
                id: seg.id,
            });
        }
        RoadNetwork {
            nodes: self.nodes,
            segments: self.segments,
            out_segs,
            in_segs,
            seg_index: RTree::bulk_load(entries),
            max_speed,
            hot: NetCaches::new(),
        }
    }
}

impl RoadNetwork {
    /// Starts building a network.
    #[must_use]
    pub fn builder() -> RoadNetworkBuilder {
        RoadNetworkBuilder::new()
    }

    /// Number of vertices.
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed segments.
    #[inline]
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Position of a vertex.
    #[inline]
    #[must_use]
    pub fn node(&self, id: NodeId) -> Point {
        self.nodes[id.index()]
    }

    /// All vertex positions, indexed by [`NodeId`].
    #[inline]
    #[must_use]
    pub fn nodes(&self) -> &[Point] {
        &self.nodes
    }

    /// A segment by id.
    #[inline]
    #[must_use]
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// All segments, indexed by [`SegmentId`].
    #[inline]
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Segments leaving `node`.
    #[inline]
    #[must_use]
    pub fn out_segments(&self, node: NodeId) -> &[SegmentId] {
        &self.out_segs[node.index()]
    }

    /// Segments entering `node`.
    #[inline]
    #[must_use]
    pub fn in_segments(&self, node: NodeId) -> &[SegmentId] {
        &self.in_segs[node.index()]
    }

    /// Segments an object can move onto after traversing `seg`
    /// (those starting at `seg.to`).
    #[inline]
    #[must_use]
    pub fn next_segments(&self, seg: SegmentId) -> &[SegmentId] {
        self.out_segments(self.segment(seg).to)
    }

    /// Maximum speed limit over the whole network (`V_max` of Definition 6).
    #[inline]
    #[must_use]
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// Bounding box of the whole network.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        BBox::covering(self.nodes.iter().copied())
    }

    /// Distance from `p` to a segment's geometry, metres.
    #[inline]
    #[must_use]
    pub fn dist_to_segment(&self, p: Point, seg: SegmentId) -> f64 {
        self.segment(seg).geometry.dist_to_point(p)
    }

    /// Candidate edges of `p` within radius `eps` (Definition 5), sorted by
    /// increasing distance.
    #[must_use]
    pub fn candidate_edges(&self, p: Point, eps: f64) -> Vec<CandidateEdge> {
        let mut out: Vec<CandidateEdge> = self
            .seg_index
            .query_circle(p, eps, |e, q| {
                self.segments[e.id.index()].geometry.dist_to_point(q)
            })
            .into_iter()
            .map(|e| {
                let proj = self.segments[e.id.index()].geometry.project(p);
                CandidateEdge {
                    segment: e.id,
                    dist: proj.dist,
                    closest: proj.point,
                    offset: proj.offset,
                }
            })
            .collect();
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        out
    }

    /// The nearest segment to `p`, with projection details (`None` only for
    /// an empty network).
    #[must_use]
    pub fn nearest_segment(&self, p: Point) -> Option<CandidateEdge> {
        let n = self
            .seg_index
            .nearest(p, 1, |e, q| {
                self.segments[e.id.index()].geometry.dist_to_point(q)
            })
            .into_iter()
            .next()?;
        let proj = self.segments[n.item.id.index()].geometry.project(p);
        Some(CandidateEdge {
            segment: n.item.id,
            dist: proj.dist,
            closest: proj.point,
            offset: proj.offset,
        })
    }

    /// λ-neighborhood hop search over segments (Definition 8).
    ///
    /// Returns `(segment, h)` pairs for every segment with `0 < h(r, s) < λ`,
    /// where `h` counts the transitions needed to move from `r` to `s`
    /// respecting segment directions. `r` itself (`h = 0`) is excluded.
    #[must_use]
    pub fn lambda_neighborhood(&self, r: SegmentId, lambda: usize) -> Vec<(SegmentId, usize)> {
        let mut out = Vec::new();
        if lambda <= 1 {
            return out;
        }
        let mut visited = vec![false; self.segments.len()];
        visited[r.index()] = true;
        let mut queue: VecDeque<(SegmentId, usize)> = VecDeque::new();
        queue.push_back((r, 0));
        while let Some((cur, h)) = queue.pop_front() {
            if h + 1 >= lambda {
                continue;
            }
            for &next in self.next_segments(cur) {
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    out.push((next, h + 1));
                    queue.push_back((next, h + 1));
                }
            }
        }
        out
    }

    /// Minimum hop count `h(r, s)` between two segments, if reachable within
    /// `max_hops`.
    #[must_use]
    pub fn segment_hops(&self, r: SegmentId, s: SegmentId, max_hops: usize) -> Option<usize> {
        if r == s {
            return Some(0);
        }
        let mut visited = vec![false; self.segments.len()];
        visited[r.index()] = true;
        let mut queue: VecDeque<(SegmentId, usize)> = VecDeque::new();
        queue.push_back((r, 0));
        while let Some((cur, h)) = queue.pop_front() {
            if h >= max_hops {
                continue;
            }
            for &next in self.next_segments(cur) {
                if next == s {
                    return Some(h + 1);
                }
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    queue.push_back((next, h + 1));
                }
            }
        }
        None
    }

    /// λ-neighborhood of `seg` with per-target hop count and accumulated
    /// driving distance along the shortest-hop chain (excludes `seg`
    /// itself). Targets appear in first-visit BFS order; a shorter chain
    /// discovered later improves the recorded distance in place without
    /// reordering or updating the hop count — the exact contract the
    /// traverse-graph construction depends on.
    #[must_use]
    pub fn lambda_neighborhood_with_dist(
        &self,
        seg: SegmentId,
        lambda: usize,
    ) -> Vec<(SegmentId, usize, f64)> {
        let mut out: Vec<(SegmentId, usize, f64)> = Vec::new();
        if lambda <= 1 {
            return out;
        }
        let m = self.segments.len();
        let mut best = vec![f64::INFINITY; m];
        let mut pos = vec![u32::MAX; m];
        best[seg.index()] = 0.0;
        let mut queue: VecDeque<(SegmentId, usize, f64)> = VecDeque::new();
        queue.push_back((seg, 0, 0.0));
        while let Some((cur, h, d)) = queue.pop_front() {
            if h + 1 >= lambda {
                continue;
            }
            for &next in self.next_segments(cur) {
                let ni = next.index();
                let nd = d + self.segments[ni].length;
                if nd < best[ni] {
                    let first_visit = best[ni].is_infinite();
                    best[ni] = nd;
                    if first_visit {
                        pos[ni] = out.len() as u32;
                        out.push((next, h + 1, nd));
                        queue.push_back((next, h + 1, nd));
                    } else {
                        out[pos[ni] as usize].2 = nd;
                    }
                }
            }
        }
        out
    }

    // -------------------------------------------------- hot-path memoisation

    /// The lazily built shortest-path oracle over this network.
    ///
    /// Built once on first use (preprocessing cost is reported by
    /// [`SpOracle::preprocessing_seconds`]) and shared by every caller;
    /// answers are byte-identical to the `shortest` module's queries.
    #[must_use]
    pub fn sp_oracle(&self) -> &Arc<SpOracle> {
        self.hot
            .oracle
            .get_or_init(|| Arc::new(SpOracle::build(self)))
    }

    /// The oracle, if it has been built already (never triggers the
    /// preprocessing pass — for metrics surfaces that only want to report).
    #[must_use]
    pub fn sp_oracle_if_built(&self) -> Option<&Arc<SpOracle>> {
        self.hot.oracle.get()
    }

    /// Memoised [`RoadNetwork::lambda_neighborhood_with_dist`] in
    /// structure-of-arrays layout.
    ///
    /// The traverse-graph construction issues this query once per traverse
    /// node per candidate pair; the answer only depends on the immutable
    /// network, so it is computed once per `(segment, λ)` and shared.
    #[must_use]
    pub fn lambda_neighborhood_soa(&self, seg: SegmentId, lambda: usize) -> Arc<LambdaSoA> {
        let key = (seg.0, lambda as u32);
        if let Some(hit) = self.hot.lambda.lock().expect("lambda cache").get(&key) {
            return Arc::clone(hit);
        }
        let fresh = Arc::new(LambdaSoA::from_tuples(
            &self.lambda_neighborhood_with_dist(seg, lambda),
        ));
        let mut map = self.hot.lambda.lock().expect("lambda cache");
        if map.len() >= LAMBDA_CACHE_CAP {
            map.clear();
        }
        map.insert(key, Arc::clone(&fresh));
        fresh
    }

    /// Tuple view of [`RoadNetwork::lambda_neighborhood_soa`] — same memo,
    /// materialised as `(segment, hops, dist)` rows per call.
    #[must_use]
    pub fn lambda_neighborhood_dists(
        &self,
        seg: SegmentId,
        lambda: usize,
    ) -> Arc<Vec<(SegmentId, usize, f64)>> {
        let soa = self.lambda_neighborhood_soa(seg, lambda);
        Arc::new(
            (0..soa.len())
                .map(|i| (soa.segs[i], soa.hops[i] as usize, soa.dists[i]))
                .collect(),
        )
    }

    /// Memoised [`RoadNetwork::candidate_edges`], keyed by the exact query
    /// bit patterns. Reference points are re-projected for every candidate
    /// pair touching them; the projection is a pure function of the network,
    /// so repeated queries cost one map lookup.
    #[must_use]
    pub fn candidate_edges_cached(&self, p: Point, eps: f64) -> Arc<Vec<CandidateEdge>> {
        let key = (p.x.to_bits(), p.y.to_bits(), eps.to_bits());
        if let Some(hit) = self.hot.cands.lock().expect("cand cache").get(&key) {
            return Arc::clone(hit);
        }
        let fresh = Arc::new(self.candidate_edges(p, eps));
        let mut map = self.hot.cands.lock().expect("cand cache");
        if map.len() >= CAND_CACHE_CAP {
            map.clear();
        }
        map.insert(key, Arc::clone(&fresh));
        fresh
    }

    /// Converts the node-level graph into a [`DiGraph`] under a cost model.
    ///
    /// Node `u` of the digraph corresponds to `NodeId(u as u32)`.
    #[must_use]
    pub fn to_digraph(&self, model: CostModel) -> DiGraph {
        let mut g = DiGraph::with_nodes(self.nodes.len());
        for seg in &self.segments {
            g.add_edge(seg.from.index(), seg.to.index(), model.cost(seg));
        }
        g
    }

    /// `true` if every vertex can reach every other vertex.
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        self.to_digraph(CostModel::Distance).is_strongly_connected()
    }

    // ---------------------------------------------------------- persistence

    /// Serialises the network (nodes + segments) as JSON.
    ///
    /// Adjacency and the spatial index are derived state and rebuilt on
    /// load; only the ground truth is stored.
    #[must_use]
    pub fn to_json(&self) -> String {
        #[derive(serde::Serialize)]
        struct Wire<'a> {
            nodes: &'a [Point],
            segments: &'a [Segment],
        }
        serde_json::to_string(&Wire {
            nodes: &self.nodes,
            segments: &self.segments,
        })
        .expect("network serialises")
    }

    /// Restores a network from [`RoadNetwork::to_json`] output.
    ///
    /// Returns `None` on malformed input or violated invariants (dangling
    /// node references, non-positive speeds, shapes detached from their
    /// terminal nodes).
    #[must_use]
    pub fn from_json(text: &str) -> Option<Self> {
        #[derive(serde::Deserialize)]
        struct Wire {
            nodes: Vec<Point>,
            segments: Vec<Segment>,
        }
        let wire: Wire = serde_json::from_str(text).ok()?;
        let mut b = RoadNetworkBuilder::new();
        for &p in &wire.nodes {
            if !p.is_finite() {
                return None;
            }
            b.add_node(p);
        }
        for seg in wire.segments {
            let mut shape = seg.geometry;
            shape.rebuild_cache(); // serde skips the cumulative-length cache
            if seg.from.index() >= wire.nodes.len()
                || seg.to.index() >= wire.nodes.len()
                || seg.speed_limit <= 0.0
                || shape.start().dist(wire.nodes[seg.from.index()]) >= 1.0
                || shape.end().dist(wire.nodes[seg.to.index()]) >= 1.0
            {
                return None;
            }
            b.add_segment(seg.from, seg.to, shape, seg.speed_limit, seg.class);
        }
        Some(b.build())
    }

    /// The cheapest segment from `u` to `v` under `model`, if one exists.
    #[must_use]
    pub fn cheapest_segment_between(
        &self,
        u: NodeId,
        v: NodeId,
        model: CostModel,
    ) -> Option<SegmentId> {
        self.out_segs[u.index()]
            .iter()
            .copied()
            .filter(|&s| self.segment(s).to == v)
            .min_by(|&a, &b| {
                model
                    .cost(self.segment(a))
                    .total_cmp(&model.cost(self.segment(b)))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×2 block grid: 9 nodes, two-way streets, 100 m blocks.
    pub(crate) fn tiny_grid() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        let mut ids = Vec::new();
        for j in 0..3 {
            for i in 0..3 {
                ids.push(b.add_node(Point::new(i as f64 * 100.0, j as f64 * 100.0)));
            }
        }
        let at = |i: usize, j: usize| ids[j * 3 + i];
        for j in 0..3 {
            for i in 0..3 {
                if i + 1 < 3 {
                    let shape = Polyline::straight(b.node(at(i, j)), b.node(at(i + 1, j)));
                    b.add_two_way(at(i, j), at(i + 1, j), shape, 15.0, RoadClass::Residential);
                }
                if j + 1 < 3 {
                    let shape = Polyline::straight(b.node(at(i, j)), b.node(at(i, j + 1)));
                    b.add_two_way(at(i, j), at(i, j + 1), shape, 15.0, RoadClass::Residential);
                }
            }
        }
        b.build()
    }

    #[test]
    fn builder_constructs_grid() {
        let net = tiny_grid();
        assert_eq!(net.num_nodes(), 9);
        // 12 undirected streets → 24 directed segments.
        assert_eq!(net.num_segments(), 24);
        assert!(net.is_strongly_connected());
        assert_eq!(net.max_speed(), 15.0);
    }

    #[test]
    fn adjacency_is_consistent() {
        let net = tiny_grid();
        for seg in net.segments() {
            assert!(net.out_segments(seg.from).contains(&seg.id));
            assert!(net.in_segments(seg.to).contains(&seg.id));
        }
        // Corner node has degree 2 out, 2 in.
        assert_eq!(net.out_segments(NodeId(0)).len(), 2);
        assert_eq!(net.in_segments(NodeId(0)).len(), 2);
    }

    #[test]
    fn candidate_edges_within_radius() {
        let net = tiny_grid();
        // Point 10 m above the middle of the bottom-left street.
        let p = Point::new(50.0, 10.0);
        let cands = net.candidate_edges(p, 15.0);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.dist <= 15.0);
        }
        // Sorted ascending.
        for w in cands.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        // Tight radius excludes everything.
        assert!(net.candidate_edges(Point::new(50.0, 50.0), 5.0).is_empty());
    }

    #[test]
    fn nearest_segment_projects() {
        let net = tiny_grid();
        let c = net.nearest_segment(Point::new(50.0, 3.0)).unwrap();
        assert!((c.dist - 3.0).abs() < 1e-9);
        assert_eq!(c.closest, Point::new(50.0, 0.0));
    }

    #[test]
    fn lambda_neighborhood_respects_depth() {
        let net = tiny_grid();
        let r = net.out_segments(NodeId(0))[0];
        let n1 = net.lambda_neighborhood(r, 1);
        assert!(
            n1.is_empty(),
            "λ = 1 allows no hops (h < 1 means h = 0 only)"
        );
        let n2 = net.lambda_neighborhood(r, 2);
        assert!(!n2.is_empty());
        for &(_, h) in &n2 {
            assert_eq!(h, 1);
        }
        let n4 = net.lambda_neighborhood(r, 4);
        assert!(n4.len() > n2.len());
        for &(s, h) in &n4 {
            assert_eq!(net.segment_hops(r, s, 10).unwrap(), h, "BFS hop agrees");
        }
    }

    #[test]
    fn segment_hops_identity_and_adjacent() {
        let net = tiny_grid();
        let r = net.out_segments(NodeId(0))[0];
        assert_eq!(net.segment_hops(r, r, 5), Some(0));
        let next = net.next_segments(r)[0];
        assert_eq!(net.segment_hops(r, next, 5), Some(1));
    }

    #[test]
    fn to_digraph_mirrors_topology() {
        let net = tiny_grid();
        let g = net.to_digraph(CostModel::Distance);
        assert_eq!(g.num_nodes(), net.num_nodes());
        assert_eq!(g.num_edges(), net.num_segments());
        // Distance between opposite corners = 400 m on the grid.
        let p = g.shortest_path(0, 8).unwrap();
        assert!((p.cost - 400.0).abs() < 1e-9);
    }

    #[test]
    fn cheapest_segment_between_picks_minimum() {
        let mut b = RoadNetwork::builder();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        // Two parallel segments with different speeds.
        b.add_straight_segment(a, c, 10.0, RoadClass::Residential);
        let fast = b.add_straight_segment(a, c, 25.0, RoadClass::Highway);
        let net = b.build();
        assert_eq!(
            net.cheapest_segment_between(a, c, CostModel::Time),
            Some(fast)
        );
        assert_eq!(net.cheapest_segment_between(c, a, CostModel::Time), None);
    }

    #[test]
    fn json_roundtrip_preserves_structure_and_queries() {
        let net = tiny_grid();
        let text = net.to_json();
        let back = RoadNetwork::from_json(&text).expect("valid serialisation");
        assert_eq!(back.num_nodes(), net.num_nodes());
        assert_eq!(back.num_segments(), net.num_segments());
        assert_eq!(back.max_speed(), net.max_speed());
        assert!(back.is_strongly_connected());
        // Spatial queries behave identically after the roundtrip.
        let p = Point::new(50.0, 10.0);
        assert_eq!(
            net.candidate_edges(p, 15.0).len(),
            back.candidate_edges(p, 15.0).len()
        );
        // Garbage is rejected, not panicked on.
        assert!(RoadNetwork::from_json("{}").is_none());
        assert!(RoadNetwork::from_json("not json").is_none());
    }

    #[test]
    fn cached_accessors_match_uncached() {
        let net = tiny_grid();
        let p = Point::new(50.0, 10.0);
        assert_eq!(
            *net.candidate_edges_cached(p, 15.0),
            net.candidate_edges(p, 15.0)
        );
        // Second read hits the memo and must stay identical.
        assert_eq!(
            *net.candidate_edges_cached(p, 15.0),
            net.candidate_edges(p, 15.0)
        );
        let seg = net.out_segments(NodeId(0))[0];
        assert_eq!(
            *net.lambda_neighborhood_dists(seg, 4),
            net.lambda_neighborhood_with_dist(seg, 4)
        );
        assert_eq!(
            *net.lambda_neighborhood_dists(seg, 4),
            net.lambda_neighborhood_with_dist(seg, 4)
        );
        // Hop-only view agrees with the hop-only search.
        let hops: Vec<(SegmentId, usize)> = net
            .lambda_neighborhood_with_dist(seg, 4)
            .into_iter()
            .map(|(s, h, _)| (s, h))
            .collect();
        assert_eq!(hops, net.lambda_neighborhood(seg, 4));
        // Cloning starts from fresh caches and a lazily rebuilt oracle.
        assert!(net.sp_oracle_if_built().is_none());
        let _ = net.sp_oracle();
        assert!(net.sp_oracle_if_built().is_some());
        let cloned = net.clone();
        assert!(cloned.sp_oracle_if_built().is_none());
    }

    #[test]
    #[should_panic(expected = "speed limit")]
    fn zero_speed_rejected() {
        let mut b = RoadNetwork::builder();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(1.0, 0.0));
        b.add_straight_segment(a, c, 0.0, RoadClass::Residential);
    }
}
