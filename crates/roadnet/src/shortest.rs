//! Shortest paths over the road network, with segment recovery.
//!
//! Used everywhere: projecting traverse-graph paths back to physical routes
//! (Algorithm 1, line 14), bridging candidate-edge gaps in global route
//! inference (Section III-C), the ST-Matching/IVMM transition probabilities,
//! and the simulator's route choice.

use crate::digraph::GraphPath;
use crate::ids::{NodeId, SegmentId};
use crate::network::{RoadNetwork, Segment};
use crate::route::Route;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which quantity a shortest-path search minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CostModel {
    /// Minimise travelled distance (metres).
    #[default]
    Distance,
    /// Minimise free-flow travel time (seconds).
    Time,
}

impl CostModel {
    /// Cost of traversing one segment under this model.
    #[inline]
    #[must_use]
    pub fn cost(self, seg: &Segment) -> f64 {
        match self {
            CostModel::Distance => seg.length,
            CostModel::Time => seg.travel_time(),
        }
    }
}

/// A shortest path between two vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct PathResult {
    /// Total cost under the requested [`CostModel`].
    pub cost: f64,
    /// Visited vertices, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed segments (`nodes.len() - 1` of them).
    pub segments: Vec<SegmentId>,
}

impl PathResult {
    /// The path as a [`Route`].
    #[must_use]
    pub fn route(&self) -> Route {
        Route::new(self.segments.clone())
    }
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: usize,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.total_cmp(&self.cost)
    }
}

/// Dijkstra from `source` to `target` over the road network, tracking the
/// segment used to reach each node so the route can be reconstructed.
#[must_use]
pub fn shortest_path(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    model: CostModel,
) -> Option<PathResult> {
    let n = net.num_nodes();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    if source == target {
        return Some(PathResult {
            cost: 0.0,
            nodes: vec![source],
            segments: Vec::new(),
        });
    }
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_seg: Vec<Option<SegmentId>> = vec![None; n];
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        cost: 0.0,
        node: source.index(),
    });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        if node == target.index() {
            break;
        }
        for &sid in net.out_segments(NodeId(node as u32)) {
            let seg = net.segment(sid);
            let v = seg.to.index();
            let nd = cost + model.cost(seg);
            if nd < dist[v] {
                dist[v] = nd;
                prev_seg[v] = Some(sid);
                heap.push(HeapItem { cost: nd, node: v });
            }
        }
    }
    if !dist[target.index()].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut segments = Vec::new();
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != source {
        let sid = prev_seg[cur.index()].expect("finite dist implies predecessor");
        segments.push(sid);
        cur = net.segment(sid).from;
        nodes.push(cur);
    }
    nodes.reverse();
    segments.reverse();
    Some(PathResult {
        cost: dist[target.index()],
        nodes,
        segments,
    })
}

/// A* shortest path with an admissible geometric heuristic.
///
/// For [`CostModel::Distance`] the heuristic is the straight-line distance
/// to the target; for [`CostModel::Time`] it is that distance divided by
/// the network's maximum speed. Both never overestimate, so A* returns the
/// same cost as [`shortest_path`] while expanding (often far) fewer nodes —
/// the workhorse for point-to-point queries on large networks.
#[must_use]
pub fn astar_path(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    model: CostModel,
) -> Option<PathResult> {
    let n = net.num_nodes();
    if source.index() >= n || target.index() >= n {
        return None;
    }
    if source == target {
        return Some(PathResult {
            cost: 0.0,
            nodes: vec![source],
            segments: Vec::new(),
        });
    }
    let goal = net.node(target);
    let h = |node: usize| -> f64 {
        let d = net.node(NodeId(node as u32)).dist(goal);
        match model {
            CostModel::Distance => d,
            CostModel::Time => d / net.max_speed(),
        }
    };
    let mut g = vec![f64::INFINITY; n];
    let mut prev_seg: Vec<Option<SegmentId>> = vec![None; n];
    let mut closed = vec![false; n];
    g[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        cost: h(source.index()),
        node: source.index(),
    });
    while let Some(HeapItem { node, .. }) = heap.pop() {
        if closed[node] {
            continue;
        }
        closed[node] = true;
        if node == target.index() {
            break;
        }
        for &sid in net.out_segments(NodeId(node as u32)) {
            let seg = net.segment(sid);
            let v = seg.to.index();
            let ng = g[node] + model.cost(seg);
            if ng < g[v] {
                g[v] = ng;
                prev_seg[v] = Some(sid);
                heap.push(HeapItem {
                    cost: ng + h(v),
                    node: v,
                });
            }
        }
    }
    if !g[target.index()].is_finite() {
        return None;
    }
    let mut segments = Vec::new();
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != source {
        let sid = prev_seg[cur.index()].expect("finite cost implies predecessor");
        segments.push(sid);
        cur = net.segment(sid).from;
        nodes.push(cur);
    }
    nodes.reverse();
    segments.reverse();
    Some(PathResult {
        cost: g[target.index()],
        nodes,
        segments,
    })
}

/// One-to-many Dijkstra: costs from `source` to every vertex (∞ when
/// unreachable). Cheaper than repeated point queries for the ST-Matching
/// transition matrix.
#[must_use]
pub fn shortest_costs_from(net: &RoadNetwork, source: NodeId, model: CostModel) -> Vec<f64> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    if source.index() >= n {
        return dist;
    }
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        cost: 0.0,
        node: source.index(),
    });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        for &sid in net.out_segments(NodeId(node as u32)) {
            let seg = net.segment(sid);
            let v = seg.to.index();
            let nd = cost + model.cost(seg);
            if nd < dist[v] {
                dist[v] = nd;
                heap.push(HeapItem { cost: nd, node: v });
            }
        }
    }
    dist
}

/// Bounded one-to-many Dijkstra: stops expanding past `max_cost`.
#[must_use]
pub fn shortest_costs_within(
    net: &RoadNetwork,
    source: NodeId,
    model: CostModel,
    max_cost: f64,
) -> Vec<(NodeId, f64)> {
    let n = net.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut out = Vec::new();
    if source.index() >= n {
        return out;
    }
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        cost: 0.0,
        node: source.index(),
    });
    while let Some(HeapItem { cost, node }) = heap.pop() {
        if cost > dist[node] {
            continue;
        }
        out.push((NodeId(node as u32), cost));
        for &sid in net.out_segments(NodeId(node as u32)) {
            let seg = net.segment(sid);
            let v = seg.to.index();
            let nd = cost + model.cost(seg);
            if nd < dist[v] && nd <= max_cost {
                dist[v] = nd;
                heap.push(HeapItem { cost: nd, node: v });
            }
        }
    }
    out
}

/// Shortest *route* that starts by fully traversing `r`, ends by fully
/// traversing `s`, and connects them via the road network.
///
/// This is how traverse-graph paths and local-route joints are projected
/// back onto physical roads. Returns `None` when `s` is unreachable
/// from `r`. When `r == s` the route is just `[r]`.
#[must_use]
pub fn route_between_segments(
    net: &RoadNetwork,
    r: SegmentId,
    s: SegmentId,
    model: CostModel,
) -> Option<Route> {
    if r == s {
        return Some(Route::new(vec![r]));
    }
    let bridge = shortest_path(net, net.segment(r).to, net.segment(s).from, model)?;
    let mut segs = Vec::with_capacity(bridge.segments.len() + 2);
    segs.push(r);
    segs.extend_from_slice(&bridge.segments);
    segs.push(s);
    Some(Route::new(segs))
}

/// Key of one segment-to-segment route query: `(from, to, cost model)`.
pub type SpKey = (SegmentId, SegmentId, CostModel);

const SP_SHARDS: usize = 16;

/// Bounded concurrent cache for [`route_between_segments`] results.
///
/// The key hash picks one of 16 independently locked LRU shards, so parallel
/// pair workers rarely contend on the same mutex. Negative results (`None`)
/// are cached too: unreachable pairs are exactly the expensive ones, since
/// Dijkstra sweeps the whole component before giving up. Results are stored
/// verbatim, so a cached lookup is indistinguishable from a fresh
/// computation — callers may mix cached and uncached calls freely.
///
/// Hit/miss accounting lives in one [`hris_obs::PairedCounter`], so a
/// `(hits, misses)` reading is always mutually consistent: `hits + misses`
/// is exactly the number of lookups issued before the read, even while
/// parallel workers keep counting (previously two independent relaxed
/// atomics could report totals that never coexisted).
pub struct SpCache {
    shards: Vec<std::sync::Mutex<lru::LruCache<SpKey, Option<Route>>>>,
    lookups: hris_obs::PairedCounter,
}

impl SpCache {
    /// Cache holding at most `capacity` routes (split evenly across shards,
    /// rounded up; a zero capacity is bumped to one entry per shard).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SP_SHARDS).max(1);
        let per_shard = std::num::NonZeroUsize::new(per_shard).expect("max(1) is non-zero");
        SpCache {
            shards: (0..SP_SHARDS)
                .map(|_| std::sync::Mutex::new(lru::LruCache::new(per_shard)))
                .collect(),
            lookups: hris_obs::PairedCounter::new(),
        }
    }

    fn shard(&self, key: &SpKey) -> &std::sync::Mutex<lru::LruCache<SpKey, Option<Route>>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The cached result for `key`, if present (`Some(None)` = cached
    /// negative). Counts toward the hit/miss statistics.
    #[must_use]
    pub fn get(&self, key: &SpKey) -> Option<Option<Route>> {
        let found = self
            .shard(key)
            .lock()
            .expect("sp-cache shard")
            .get(key)
            .cloned();
        match found {
            Some(v) => {
                self.lookups.hit();
                Some(v)
            }
            None => {
                self.lookups.miss();
                None
            }
        }
    }

    /// Stores a result, evicting the shard's least recently used entry when
    /// full.
    pub fn insert(&self, key: SpKey, value: Option<Route>) {
        self.shard(&key)
            .lock()
            .expect("sp-cache shard")
            .put(key, value);
    }

    /// Number of lookups answered from the cache so far (thin view over
    /// [`SpCache::lookup_counters`]).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.lookups.hits()
    }

    /// Number of lookups that fell through to a real search so far (thin
    /// view over [`SpCache::lookup_counters`]).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lookups.misses()
    }

    /// The shared hit/miss pair itself — clone it to register the cache's
    /// live counters on a metrics registry, or call
    /// [`get`](hris_obs::PairedCounter::get) for one consistent
    /// `(hits, misses)` reading.
    #[must_use]
    pub fn lookup_counters(&self) -> hris_obs::PairedCounter {
        self.lookups.clone()
    }

    /// Drops every cached entry while keeping the hit/miss counters (they
    /// are cumulative service statistics, not cache contents). The epoch
    /// machinery calls this when an engine adopts a new archive snapshot,
    /// so invalidation is per-epoch instead of cache-reconstruction.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("sp-cache shard").clear();
        }
    }

    /// Number of entries currently cached across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("sp-cache shard").len())
            .sum()
    }

    /// True when no entry is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SpCache {
    /// A cache sized for a typical query workload (8192 routes).
    fn default() -> Self {
        SpCache::new(8192)
    }
}

/// [`route_between_segments`] through an [`SpCache`]: answers from the cache
/// when possible, otherwise computes and stores the result (including
/// negatives).
#[must_use]
pub fn route_between_segments_cached(
    net: &RoadNetwork,
    r: SegmentId,
    s: SegmentId,
    model: CostModel,
    cache: &SpCache,
) -> Option<Route> {
    let key = (r, s, model);
    if let Some(cached) = cache.get(&key) {
        return cached;
    }
    let fresh = route_between_segments(net, r, s, model);
    cache.insert(key, fresh.clone());
    fresh
}

/// Up to `k` shortest simple node paths between two vertices, each mapped
/// back to a [`Route`] via the cheapest segment per hop.
///
/// This drives the simulator's skewed route choice.
#[must_use]
pub fn k_shortest_routes(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    k: usize,
    model: CostModel,
) -> Vec<(Route, f64)> {
    let g = net.to_digraph(model);
    g.k_shortest_paths(source.index(), target.index(), k)
        .into_iter()
        .filter_map(|GraphPath { nodes, cost }| {
            let mut segs = Vec::with_capacity(nodes.len().saturating_sub(1));
            for w in nodes.windows(2) {
                segs.push(net.cheapest_segment_between(
                    NodeId(w[0] as u32),
                    NodeId(w[1] as u32),
                    model,
                )?);
            }
            Some((Route::new(segs), cost))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::RoadClass;
    use hris_geo::{Point, Polyline};

    /// 3×3 grid with two-way 100 m streets.
    fn grid() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        let mut ids = Vec::new();
        for j in 0..3 {
            for i in 0..3 {
                ids.push(b.add_node(Point::new(i as f64 * 100.0, j as f64 * 100.0)));
            }
        }
        let at = |i: usize, j: usize| ids[j * 3 + i];
        for j in 0..3 {
            for i in 0..3 {
                if i + 1 < 3 {
                    let shape = Polyline::straight(b.node(at(i, j)), b.node(at(i + 1, j)));
                    b.add_two_way(at(i, j), at(i + 1, j), shape, 10.0, RoadClass::Residential);
                }
                if j + 1 < 3 {
                    let shape = Polyline::straight(b.node(at(i, j)), b.node(at(i, j + 1)));
                    b.add_two_way(at(i, j), at(i, j + 1), shape, 10.0, RoadClass::Residential);
                }
            }
        }
        b.build()
    }

    #[test]
    fn shortest_path_grid_corners() {
        let net = grid();
        let p = shortest_path(&net, NodeId(0), NodeId(8), CostModel::Distance).unwrap();
        assert!((p.cost - 400.0).abs() < 1e-9);
        assert_eq!(p.segments.len(), 4);
        assert_eq!(p.nodes.first(), Some(&NodeId(0)));
        assert_eq!(p.nodes.last(), Some(&NodeId(8)));
        // Segment chain connects.
        assert!(p.route().is_connected(&net));
    }

    #[test]
    fn shortest_path_self() {
        let net = grid();
        let p = shortest_path(&net, NodeId(4), NodeId(4), CostModel::Time).unwrap();
        assert_eq!(p.cost, 0.0);
        assert!(p.segments.is_empty());
    }

    #[test]
    fn costs_from_all_reachable() {
        let net = grid();
        let d = shortest_costs_from(&net, NodeId(0), CostModel::Distance);
        assert!(d.iter().all(|c| c.is_finite()));
        assert!((d[8] - 400.0).abs() < 1e-9);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn costs_within_bound() {
        let net = grid();
        let within = shortest_costs_within(&net, NodeId(0), CostModel::Distance, 150.0);
        // Node 0 itself + 2 direct neighbours at 100 m.
        assert_eq!(within.len(), 3);
        for &(_, c) in &within {
            assert!(c <= 150.0);
        }
    }

    #[test]
    fn route_between_adjacent_segments() {
        let net = grid();
        let r = net.out_segments(NodeId(0))[0];
        let s = net.next_segments(r)[0];
        let route = route_between_segments(&net, r, s, CostModel::Distance).unwrap();
        assert_eq!(route.segments().len(), 2);
        assert!(route.is_connected(&net));
        // Identity case.
        let same = route_between_segments(&net, r, r, CostModel::Distance).unwrap();
        assert_eq!(same.segments(), &[r]);
    }

    #[test]
    fn route_between_far_segments_is_connected() {
        let net = grid();
        let r = net.out_segments(NodeId(0))[0];
        let s = net.in_segments(NodeId(8))[0];
        let route = route_between_segments(&net, r, s, CostModel::Distance).unwrap();
        assert!(route.is_connected(&net));
        assert_eq!(route.segments().first(), Some(&r));
        assert_eq!(route.segments().last(), Some(&s));
    }

    #[test]
    fn sp_cache_clear_drops_entries_keeps_counters() {
        let net = grid();
        let cache = SpCache::new(64);
        let a = net.out_segments(NodeId(0))[0];
        let b = net.in_segments(NodeId(8))[0];
        let r1 = route_between_segments_cached(&net, a, b, CostModel::Distance, &cache);
        let r2 = route_between_segments_cached(&net, a, b, CostModel::Distance, &cache);
        assert_eq!(r1, r2);
        assert_eq!(cache.hits(), 1);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        // Counters survive the clear: they are cumulative service stats.
        assert_eq!(cache.hits(), 1);
        let (h, m) = (cache.hits(), cache.misses());
        // The next lookup is a miss (entries gone), then a hit again.
        let r3 = route_between_segments_cached(&net, a, b, CostModel::Distance, &cache);
        assert_eq!(r3, r1);
        assert_eq!(cache.misses(), m + 1);
        let _ = route_between_segments_cached(&net, a, b, CostModel::Distance, &cache);
        assert_eq!(cache.hits(), h + 1);
    }

    #[test]
    fn k_shortest_routes_distinct_and_sorted() {
        let net = grid();
        let routes = k_shortest_routes(&net, NodeId(0), NodeId(8), 4, CostModel::Distance);
        assert!(routes.len() >= 2, "grid has many corner-to-corner paths");
        for w in routes.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for (r, _) in &routes {
            assert!(r.is_connected(&net));
            assert_eq!(r.start_node(&net), Some(NodeId(0)));
            assert_eq!(r.end_node(&net), Some(NodeId(8)));
        }
        // All distinct.
        for i in 0..routes.len() {
            for j in (i + 1)..routes.len() {
                assert_ne!(routes[i].0, routes[j].0);
            }
        }
    }

    #[test]
    fn astar_matches_dijkstra_on_grid() {
        let net = grid();
        for (s, t) in [(0u32, 8u32), (4, 2), (6, 1), (3, 3)] {
            for model in [CostModel::Distance, CostModel::Time] {
                let d = shortest_path(&net, NodeId(s), NodeId(t), model).unwrap();
                let a = astar_path(&net, NodeId(s), NodeId(t), model).unwrap();
                assert!(
                    (d.cost - a.cost).abs() < 1e-9,
                    "{s}->{t}: dijkstra {} vs astar {}",
                    d.cost,
                    a.cost
                );
                assert!(a.route().is_connected(&net));
                assert_eq!(a.nodes.first(), Some(&NodeId(s)));
                assert_eq!(a.nodes.last(), Some(&NodeId(t)));
            }
        }
    }

    #[test]
    fn astar_on_generated_city() {
        let net = crate::generator::generate(&crate::NetworkConfig::small(19));
        let n = net.num_nodes() as u32;
        for k in 0..6 {
            let s = NodeId(k * 7 % n);
            let t = NodeId((k * 13 + 5) % n);
            let d = shortest_path(&net, s, t, CostModel::Distance).unwrap();
            let a = astar_path(&net, s, t, CostModel::Distance).unwrap();
            assert!((d.cost - a.cost).abs() < 1e-6, "{s}->{t}");
        }
    }

    #[test]
    fn sp_cache_hits_and_matches_uncached() {
        let net = grid();
        let cache = SpCache::new(64);
        let r = net.out_segments(NodeId(0))[0];
        let s = net.in_segments(NodeId(8))[0];

        let direct = route_between_segments(&net, r, s, CostModel::Distance);
        let first = route_between_segments_cached(&net, r, s, CostModel::Distance, &cache);
        assert_eq!(first, direct);
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let second = route_between_segments_cached(&net, r, s, CostModel::Distance, &cache);
        assert_eq!(second, direct);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        // A different cost model is a different key.
        let timed = route_between_segments_cached(&net, r, s, CostModel::Time, &cache);
        assert_eq!(timed, route_between_segments(&net, r, s, CostModel::Time));
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sp_cache_stores_negative_results() {
        let mut b = RoadNetwork::builder();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(500.0, 0.0));
        let e = b.add_node(Point::new(600.0, 0.0));
        b.add_straight_segment(a, c, 10.0, RoadClass::Residential);
        b.add_straight_segment(d, e, 10.0, RoadClass::Residential);
        let net = b.build();
        let r = net.out_segments(a)[0];
        let s = net.out_segments(d)[0];

        let cache = SpCache::new(8);
        assert!(route_between_segments_cached(&net, r, s, CostModel::Distance, &cache).is_none());
        assert!(route_between_segments_cached(&net, r, s, CostModel::Distance, &cache).is_none());
        // The second unreachable lookup must be a hit, not a re-search.
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn sp_cache_capacity_is_bounded() {
        let net = grid();
        let cache = SpCache::new(16); // 1 entry per shard
        let segs: Vec<SegmentId> = (0..net.num_segments() as u32).map(SegmentId).collect();
        for &r in &segs {
            for &s in &segs {
                let _ = route_between_segments_cached(&net, r, s, CostModel::Distance, &cache);
            }
        }
        assert!(
            cache.len() <= 16,
            "cache grew past capacity: {}",
            cache.len()
        );
        assert!(cache.misses() > 16);
    }

    #[test]
    fn sp_cache_counters_snapshot_consistently() {
        let net = grid();
        let cache = SpCache::new(64);
        let r = net.out_segments(NodeId(0))[0];
        let s = net.in_segments(NodeId(8))[0];
        for _ in 0..5 {
            let _ = route_between_segments_cached(&net, r, s, CostModel::Distance, &cache);
        }
        // One consistent reading: hits + misses == lookups issued, exactly.
        let (hits, misses) = cache.lookup_counters().get();
        assert_eq!((hits, misses), (4, 1));
        assert_eq!((cache.hits(), cache.misses()), (4, 1));
    }

    #[test]
    fn disconnected_target_returns_none() {
        let mut b = RoadNetwork::builder();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(500.0, 0.0));
        b.add_straight_segment(a, c, 10.0, RoadClass::Residential);
        let _ = d; // isolated node
        let net = b.build();
        assert!(shortest_path(&net, a, d, CostModel::Distance).is_none());
    }
}
