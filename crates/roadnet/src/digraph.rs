//! A generic weighted directed graph with the path algorithms HRIS needs.
//!
//! Both the physical road graph and the *conceptual* traverse graph of the
//! TGI algorithm (Definition 9) are digraphs; this module supplies the shared
//! machinery: Dijkstra, Yen's K-shortest **simple** paths, and Tarjan's
//! strongly-connected components (used by the graph-augmentation subroutine
//! of Algorithm 1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Adjacency-list weighted digraph over `usize` node ids.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    /// `out[u]` lists `(v, weight)` pairs.
    out: Vec<Vec<(usize, f64)>>,
    edge_count: usize,
}

/// Flat CSR snapshot of a [`DiGraph`]'s adjacency.
///
/// Yen's algorithm runs dozens of spur Dijkstras against one unchanging
/// graph; scanning three contiguous arrays beats chasing a `Vec` per node.
/// Per-node edge order is preserved, so relaxation order — and hence heap
/// tie behaviour — is identical to querying the adjacency lists directly.
#[derive(Debug, Clone)]
pub struct CsrView {
    /// `starts[u]..starts[u + 1]` indexes `targets`/`weights` for node `u`.
    starts: Vec<u32>,
    /// Edge target nodes.
    targets: Vec<u32>,
    /// Edge weights, parallel to `targets`.
    weights: Vec<f64>,
}

impl CsrView {
    /// Snapshots `g`. O(V + E).
    #[must_use]
    pub fn new(g: &DiGraph) -> Self {
        let n = g.out.len();
        let mut starts = Vec::with_capacity(n + 1);
        starts.push(0u32);
        let mut targets = Vec::with_capacity(g.edge_count);
        let mut weights = Vec::with_capacity(g.edge_count);
        for row in &g.out {
            for &(v, w) in row {
                targets.push(v as u32);
                weights.push(w);
            }
            starts.push(targets.len() as u32);
        }
        CsrView {
            starts,
            targets,
            weights,
        }
    }

    /// Builds the CSR directly from `(u, v, weight)` edges already grouped
    /// by ascending source node — the order [`DiGraph::add_edge`] insertion
    /// over a sorted edge list would produce, so path algorithms behave
    /// identically to the [`CsrView::new`] route without materialising the
    /// intermediate adjacency lists.
    ///
    /// # Panics
    /// Panics when a source node is out of range, runs regress (not grouped
    /// ascending), or a weight is negative/non-finite.
    #[must_use]
    pub fn from_sorted_edges(n: usize, edges: impl Iterator<Item = (u32, u32, f64)>) -> Self {
        let mut starts = vec![0u32; n + 1];
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        let mut cur = 0usize;
        for (u, v, w) in edges {
            let (u, v) = (u as usize, v as usize);
            assert!(u < n && v < n, "endpoint out of range");
            assert!(u >= cur, "edges must be grouped by ascending source");
            assert!(
                w >= 0.0 && w.is_finite(),
                "edge weight must be finite and non-negative, got {w}"
            );
            while cur < u {
                cur += 1;
                starts[cur] = targets.len() as u32;
            }
            targets.push(v as u32);
            weights.push(w);
        }
        while cur < n {
            cur += 1;
            starts[cur] = targets.len() as u32;
        }
        CsrView {
            starts,
            targets,
            weights,
        }
    }

    /// Number of nodes in the snapshot.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.starts.len() - 1
    }

    /// Cost of hop `u → v`: the cheapest parallel edge, scanned in edge
    /// order exactly as [`DiGraph::path_cost`] selects it; `f64::INFINITY`
    /// when no such edge exists.
    #[inline]
    fn hop_cost(&self, u: usize, v: usize) -> f64 {
        let mut best = f64::INFINITY;
        for e in self.starts[u] as usize..self.starts[u + 1] as usize {
            if self.targets[e] as usize == v && self.weights[e].total_cmp(&best) == Ordering::Less {
                best = self.weights[e];
            }
        }
        best
    }

    /// Dijkstra from `source` to `target` avoiding `banned_nodes_list` and
    /// `banned_edges`, reusing caller-owned scratch. The single shared
    /// implementation behind [`DiGraph::shortest_path_avoiding`] and Yen.
    #[must_use]
    pub fn shortest_path_avoiding_with(
        &self,
        scratch: &mut DijkstraScratch,
        source: usize,
        target: usize,
        banned_nodes_list: &[usize],
        banned_edges: &[(usize, usize)],
    ) -> Option<GraphPath> {
        let n = self.num_nodes();
        if source >= n || target >= n {
            return None;
        }
        scratch.begin(n);
        for &b in banned_nodes_list {
            if b < n {
                scratch.ban(b);
            }
        }
        if scratch.banned(source) || scratch.banned(target) {
            return None;
        }
        scratch.relax(source, 0.0, usize::MAX);
        scratch.heap.push(HeapItem {
            cost: 0.0,
            node: source,
        });
        while let Some(HeapItem { cost, node }) = scratch.heap.pop() {
            if cost > scratch.dist(node) {
                continue;
            }
            if node == target {
                break;
            }
            for e in self.starts[node] as usize..self.starts[node + 1] as usize {
                let v = self.targets[e] as usize;
                let nd = cost + self.weights[e];
                // Target-bound prune: with non-negative weights, a label
                // strictly beyond the target's current one can never sit on
                // the path reconstructed below (equal labels may, through
                // zero-weight hops, so they pass). Output-identical to the
                // unpruned search.
                if nd > scratch.dist(target) {
                    continue;
                }
                if scratch.banned(v) || banned_edges.contains(&(node, v)) {
                    continue;
                }
                if nd < scratch.dist(v) {
                    scratch.relax(v, nd, node);
                    scratch.heap.push(HeapItem { cost: nd, node: v });
                }
            }
        }
        if !scratch.dist(target).is_finite() {
            return None;
        }
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != source {
            cur = scratch.prev[cur];
            nodes.push(cur);
        }
        nodes.reverse();
        Some(GraphPath {
            nodes,
            cost: scratch.dist(target),
        })
    }

    /// Yen's algorithm over the snapshot, reusing caller-owned scratch: up
    /// to `k` shortest **simple** (loopless) paths from `source` to
    /// `target`, in non-decreasing cost order. The implementation behind
    /// [`DiGraph::k_shortest_paths`]; callers running Yen for many endpoint
    /// pairs of one graph should build the view and scratch once.
    #[must_use]
    pub fn k_shortest_paths_with(
        &self,
        scratch: &mut DijkstraScratch,
        source: usize,
        target: usize,
        k: usize,
    ) -> Vec<GraphPath> {
        if k == 0 {
            return Vec::new();
        }
        let Some(first) = self.shortest_path_avoiding_with(scratch, source, target, &[], &[])
        else {
            return Vec::new();
        };
        if source == target {
            return vec![first];
        }
        let mut accepted: Vec<GraphPath> = vec![first];
        // Candidate set; kept sorted on extraction.
        let mut candidates: Vec<GraphPath> = Vec::new();

        while accepted.len() < k {
            let last = &accepted[accepted.len() - 1];
            // Running prefix cost: extended hop by hop with the same
            // left-to-right additions `path_cost` would perform, so every
            // spur sees bit-identical root costs.
            let mut root_cost = 0.0;
            for i in 0..last.nodes.len() - 1 {
                let spur_node = last.nodes[i];
                let root = &last.nodes[..=i];

                // Ban edges leaving the spur node that previous accepted paths
                // with the same root already use.
                let mut banned_edges = Vec::new();
                for p in accepted.iter().chain(candidates.iter()) {
                    if p.nodes.len() > i && p.nodes[..=i] == *root {
                        banned_edges.push((p.nodes[i], p.nodes[i + 1]));
                    }
                }
                // Ban root nodes except the spur node (loopless requirement).
                let banned_nodes = &root[..i];

                if let Some(spur) = self.shortest_path_avoiding_with(
                    scratch,
                    spur_node,
                    target,
                    banned_nodes,
                    &banned_edges,
                ) {
                    let mut nodes = root.to_vec();
                    nodes.extend_from_slice(&spur.nodes[1..]);
                    let total = GraphPath {
                        cost: root_cost + spur.cost,
                        nodes,
                    };
                    if !candidates.iter().any(|c| c.nodes == total.nodes)
                        && !accepted.iter().any(|a| a.nodes == total.nodes)
                    {
                        candidates.push(total);
                    }
                }

                // Extend the prefix by hop (nodes[i], nodes[i+1]) — cheapest
                // parallel edge, exactly as `path_cost` selects it.
                root_cost += self.hop_cost(last.nodes[i], last.nodes[i + 1]);
            }
            if candidates.is_empty() {
                break;
            }
            // Extract the cheapest candidate.
            let best = candidates
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.cost.total_cmp(&b.1.cost))
                .map(|(i, _)| i)
                .expect("non-empty");
            accepted.push(candidates.swap_remove(best));
        }
        accepted
    }
}

/// A path through a [`DiGraph`]: node sequence plus total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPath {
    /// Visited nodes, source first.
    pub nodes: Vec<usize>,
    /// Sum of edge weights along the path.
    pub cost: f64,
}

#[derive(Debug, PartialEq)]
struct HeapItem {
    cost: f64,
    node: usize,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.cost.total_cmp(&self.cost)
    }
}

/// Reusable buffers for repeated [`DiGraph`] shortest-path runs.
///
/// Yen's algorithm performs one spur Dijkstra per (accepted path, spur
/// node) pair — dozens per `k_shortest_paths` call. Allocating `dist` /
/// `prev` / banned arrays for each spur dominates the cost on the small
/// traverse graphs of local inference, so the buffers live here and are
/// invalidated in O(1) per run by an epoch stamp: an entry is only valid
/// when its stamp matches the current epoch. Results are byte-identical to
/// fresh allocation (pinned by `scratch_reuse_matches_fresh` below).
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    prev: Vec<usize>,
    dist_stamp: Vec<u32>,
    banned_stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapItem>,
}

impl DijkstraScratch {
    /// Scratch sized for `g`; growing lazily, any size works for any graph.
    #[must_use]
    pub fn for_graph(g: &DiGraph) -> Self {
        Self::for_nodes(g.num_nodes())
    }

    /// Scratch pre-sized for `n` nodes (e.g. for a [`CsrView`] built without
    /// an intermediate [`DiGraph`]); growing lazily, any size works.
    #[must_use]
    pub fn for_nodes(n: usize) -> Self {
        let mut s = DijkstraScratch::default();
        s.grow(n);
        s
    }

    fn grow(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.prev.resize(n, usize::MAX);
            self.dist_stamp.resize(n, 0);
            self.banned_stamp.resize(n, 0);
        }
    }

    /// Starts a new run: clears the heap and invalidates every stamped
    /// entry by bumping the epoch (wraparound refills the stamp arrays).
    fn begin(&mut self, n: usize) {
        self.grow(n);
        self.heap.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.dist_stamp.fill(0);
            self.banned_stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn dist(&self, v: usize) -> f64 {
        if self.dist_stamp[v] == self.epoch {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, v: usize, d: f64, from: usize) {
        self.dist[v] = d;
        self.prev[v] = from;
        self.dist_stamp[v] = self.epoch;
    }

    #[inline]
    fn ban(&mut self, v: usize) {
        self.banned_stamp[v] = self.epoch;
    }

    #[inline]
    fn banned(&self, v: usize) -> bool {
        self.banned_stamp[v] == self.epoch
    }
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            out: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// Appends a fresh node, returning its id.
    pub fn add_node(&mut self) -> usize {
        self.out.push(Vec::new());
        self.out.len() - 1
    }

    /// Adds a directed edge `u → v` with `weight >= 0`.
    ///
    /// # Panics
    /// Panics on negative or non-finite weights (Dijkstra's precondition)
    /// and on out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize, weight: f64) {
        assert!(
            weight >= 0.0 && weight.is_finite(),
            "edge weight must be finite and non-negative, got {weight}"
        );
        assert!(
            u < self.out.len() && v < self.out.len(),
            "endpoint out of range"
        );
        self.out[u].push((v, weight));
        self.edge_count += 1;
    }

    /// Removes every edge `u → v` (there may be parallel edges). Returns how
    /// many were removed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> usize {
        let before = self.out[u].len();
        self.out[u].retain(|&(to, _)| to != v);
        let removed = before - self.out[u].len();
        self.edge_count -= removed;
        removed
    }

    /// `true` if an edge `u → v` exists.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out[u].iter().any(|&(to, _)| to == v)
    }

    /// Outgoing `(neighbor, weight)` pairs of `u`.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.out[u]
    }

    // ------------------------------------------------------------- dijkstra

    /// Single-source Dijkstra; returns per-node `(distance, predecessor)`.
    ///
    /// Unreachable nodes get `f64::INFINITY` / `usize::MAX`.
    #[must_use]
    pub fn dijkstra(&self, source: usize) -> (Vec<f64>, Vec<usize>) {
        self.dijkstra_internal(source, None, &[])
    }

    fn dijkstra_internal(
        &self,
        source: usize,
        target: Option<usize>,
        banned_nodes: &[bool],
    ) -> (Vec<f64>, Vec<usize>) {
        let n = self.out.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        if source >= n || banned_nodes.get(source).copied().unwrap_or(false) {
            return (dist, prev);
        }
        dist[source] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapItem {
            cost: 0.0,
            node: source,
        });
        while let Some(HeapItem { cost, node }) = heap.pop() {
            if cost > dist[node] {
                continue;
            }
            if Some(node) == target {
                break;
            }
            for &(v, w) in &self.out[node] {
                if banned_nodes.get(v).copied().unwrap_or(false) {
                    continue;
                }
                let nd = cost + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    prev[v] = node;
                    heap.push(HeapItem { cost: nd, node: v });
                }
            }
        }
        (dist, prev)
    }

    /// Shortest path from `source` to `target`, if one exists.
    #[must_use]
    pub fn shortest_path(&self, source: usize, target: usize) -> Option<GraphPath> {
        self.shortest_path_avoiding(source, target, &[], &[])
    }

    /// Shortest path avoiding the given nodes and edges.
    ///
    /// `banned_edges` entries are `(u, v)` pairs banning every parallel edge
    /// between them. This is the spur-path primitive of Yen's algorithm.
    #[must_use]
    pub fn shortest_path_avoiding(
        &self,
        source: usize,
        target: usize,
        banned_nodes_list: &[usize],
        banned_edges: &[(usize, usize)],
    ) -> Option<GraphPath> {
        let mut scratch = DijkstraScratch::default();
        self.shortest_path_avoiding_with(
            &mut scratch,
            source,
            target,
            banned_nodes_list,
            banned_edges,
        )
    }

    /// [`DiGraph::shortest_path_avoiding`] reusing caller-owned scratch
    /// buffers — the zero-alloc spur primitive of Yen's algorithm.
    ///
    /// Snapshots the adjacency into CSR form first; callers issuing many
    /// searches against one graph (Yen) should build a [`CsrView`] once and
    /// query it directly.
    #[must_use]
    pub fn shortest_path_avoiding_with(
        &self,
        scratch: &mut DijkstraScratch,
        source: usize,
        target: usize,
        banned_nodes_list: &[usize],
        banned_edges: &[(usize, usize)],
    ) -> Option<GraphPath> {
        CsrView::new(self).shortest_path_avoiding_with(
            scratch,
            source,
            target,
            banned_nodes_list,
            banned_edges,
        )
    }

    // ------------------------------------------------------------ Yen's KSP

    /// Yen's algorithm: up to `k` shortest **simple** (loopless) paths from
    /// `source` to `target`, in non-decreasing cost order.
    ///
    /// Used by Algorithm 1 (TGI) to enumerate candidate local routes on the
    /// traverse graph, and by the route-choice model of the taxi simulator.
    #[must_use]
    pub fn k_shortest_paths(&self, source: usize, target: usize, k: usize) -> Vec<GraphPath> {
        if k == 0 {
            return Vec::new();
        }
        let mut scratch = DijkstraScratch::for_graph(self);
        // One CSR snapshot serves every spur search of this call.
        CsrView::new(self).k_shortest_paths_with(&mut scratch, source, target, k)
    }

    /// Cost of a concrete node sequence (cheapest parallel edge per hop);
    /// `f64::INFINITY` if some hop has no edge.
    #[must_use]
    pub fn path_cost(&self, nodes: &[usize]) -> f64 {
        let mut cost = 0.0;
        for w in nodes.windows(2) {
            let best = self.out[w[0]]
                .iter()
                .filter(|&&(v, _)| v == w[1])
                .map(|&(_, c)| c)
                .min_by(f64::total_cmp);
            match best {
                Some(c) => cost += c,
                None => return f64::INFINITY,
            }
        }
        cost
    }

    // ----------------------------------------------------------- Tarjan SCC

    /// Tarjan's strongly-connected components (iterative).
    ///
    /// Returns `comp[u]` — the component index of each node. Component
    /// indices are in reverse topological order of the condensation.
    #[must_use]
    pub fn tarjan_scc(&self) -> Vec<usize> {
        let n = self.out.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![usize::MAX; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut comp_count = 0usize;
        // Explicit DFS stack: (node, next child position).
        let mut dfs: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            dfs.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;

            while let Some(&mut (u, ref mut child)) = dfs.last_mut() {
                if *child < self.out[u].len() {
                    let v = self.out[u][*child].0;
                    *child += 1;
                    if index[v] == usize::MAX {
                        index[v] = next_index;
                        low[v] = next_index;
                        next_index += 1;
                        stack.push(v);
                        on_stack[v] = true;
                        dfs.push((v, 0));
                    } else if on_stack[v] {
                        low[u] = low[u].min(index[v]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&(parent, _)) = dfs.last() {
                        low[parent] = low[parent].min(low[u]);
                    }
                    if low[u] == index[u] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = comp_count;
                            if w == u {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }
        comp
    }

    /// `true` if the graph is strongly connected (vacuously true when empty
    /// or single-node).
    #[must_use]
    pub fn is_strongly_connected(&self) -> bool {
        if self.out.len() <= 1 {
            return true;
        }
        let comp = self.tarjan_scc();
        comp.iter().all(|&c| c == comp[0])
    }

    /// Hop distances (unweighted BFS) from `source`; `usize::MAX` when
    /// unreachable.
    #[must_use]
    pub fn bfs_hops(&self, source: usize) -> Vec<usize> {
        let n = self.out.len();
        let mut hops = vec![usize::MAX; n];
        if source >= n {
            return hops;
        }
        hops[source] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.out[u] {
                if hops[v] == usize::MAX {
                    hops[v] = hops[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0→1→3, 0→2→3 with asymmetric weights, plus a direct 0→3.
    fn diamond() -> DiGraph {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 3, 1.0);
        g.add_edge(0, 2, 2.0);
        g.add_edge(2, 3, 2.0);
        g.add_edge(0, 3, 5.0);
        g
    }

    #[test]
    fn scratch_reuse_matches_fresh() {
        // One scratch reused across runs — with bans, unreachable targets
        // and wraparound-adjacent epochs — must equal fresh allocation.
        let g = diamond();
        let mut reused = DijkstraScratch::for_graph(&g);
        type Case = (usize, usize, Vec<usize>, Vec<(usize, usize)>);
        let cases: Vec<Case> = vec![
            (0, 3, vec![], vec![]),
            (0, 3, vec![1], vec![]),
            (0, 3, vec![], vec![(0, 1)]),
            (0, 3, vec![1, 2], vec![(0, 3)]),
            (3, 0, vec![], vec![]),
            (2, 2, vec![], vec![]),
        ];
        for _round in 0..3 {
            for (s, t, bn, be) in &cases {
                let got = g.shortest_path_avoiding_with(&mut reused, *s, *t, bn, be);
                let want = g.shortest_path_avoiding(*s, *t, bn, be);
                assert_eq!(got, want, "{s}->{t} banned {bn:?}/{be:?}");
            }
        }
    }

    #[test]
    fn dijkstra_finds_shortest() {
        let g = diamond();
        let p = g.shortest_path(0, 3).unwrap();
        assert_eq!(p.nodes, vec![0, 1, 3]);
        assert!((p.cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 1, 1.0);
        assert!(g.shortest_path(0, 2).is_none());
        // Reverse direction has no edge either.
        assert!(g.shortest_path(1, 0).is_none());
    }

    #[test]
    fn dijkstra_source_equals_target() {
        let g = diamond();
        let p = g.shortest_path(2, 2).unwrap();
        assert_eq!(p.nodes, vec![2]);
        assert_eq!(p.cost, 0.0);
    }

    #[test]
    fn ksp_orders_three_paths() {
        let g = diamond();
        let ps = g.k_shortest_paths(0, 3, 5);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].nodes, vec![0, 1, 3]);
        assert_eq!(ps[1].nodes, vec![0, 2, 3]);
        assert_eq!(ps[2].nodes, vec![0, 3]);
        assert!(ps[0].cost <= ps[1].cost && ps[1].cost <= ps[2].cost);
    }

    #[test]
    fn ksp_paths_are_simple() {
        // Graph with a tempting cycle.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 1, 0.1); // cycle 1→2→1
        g.add_edge(2, 3, 1.0);
        let ps = g.k_shortest_paths(0, 3, 10);
        for p in &ps {
            let mut seen = std::collections::HashSet::new();
            for &nd in &p.nodes {
                assert!(seen.insert(nd), "path revisits node {nd}: {:?}", p.nodes);
            }
        }
    }

    #[test]
    fn ksp_k_zero_and_disconnected() {
        let g = diamond();
        assert!(g.k_shortest_paths(0, 3, 0).is_empty());
        let mut g2 = DiGraph::with_nodes(2);
        g2.add_node();
        assert!(g2.k_shortest_paths(0, 1, 3).is_empty());
    }

    #[test]
    fn scc_detects_components() {
        // Two 2-cycles joined by a one-way edge.
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 1.0);
        g.add_edge(2, 3, 1.0);
        g.add_edge(3, 2, 1.0);
        g.add_edge(1, 2, 1.0);
        let comp = g.tarjan_scc();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert!(!g.is_strongly_connected());
        // Close the loop.
        g.add_edge(3, 0, 1.0);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn scc_handles_self_loops_and_isolated() {
        let mut g = DiGraph::with_nodes(3);
        g.add_edge(0, 0, 1.0);
        let comp = g.tarjan_scc();
        assert_eq!(comp.len(), 3);
        // All three nodes are their own components.
        assert_ne!(comp[0], comp[1]);
        assert_ne!(comp[1], comp[2]);
    }

    #[test]
    fn bfs_hops_levels() {
        let mut g = DiGraph::with_nodes(4);
        g.add_edge(0, 1, 9.0);
        g.add_edge(1, 2, 9.0);
        g.add_edge(0, 2, 9.0);
        let hops = g.bfs_hops(0);
        assert_eq!(hops, vec![0, 1, 1, usize::MAX]);
    }

    #[test]
    fn remove_edge_removes_parallels() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.remove_edge(0, 1), 2);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1, -1.0);
    }

    #[test]
    fn path_cost_uses_cheapest_parallel() {
        let mut g = DiGraph::with_nodes(2);
        g.add_edge(0, 1, 5.0);
        g.add_edge(0, 1, 3.0);
        assert!((g.path_cost(&[0, 1]) - 3.0).abs() < 1e-12);
        assert_eq!(g.path_cost(&[1, 0]), f64::INFINITY);
    }
}
