//! Precomputed shortest-path oracle for candidate-pair probes.
//!
//! Local inference issues millions of segment-to-segment route probes
//! against the same immutable road network: null-hypothesis routes between
//! candidate pairs, traverse-graph path projection, and global stitching all
//! bottom out in [`route_between_segments`](crate::shortest::route_between_segments).
//! Running an independent bounded Dijkstra per probe re-allocates
//! network-sized arrays and re-discovers the same shortest-path trees over
//! and over.
//!
//! [`SpOracle`] replaces that with three layers of precomputation:
//!
//! 1. **CSR adjacency** ([`CsrAdjacency`]) — the node graph flattened into
//!    offset/head/segment/cost arrays (one cost lane per [`CostModel`]),
//!    preserving `out_segments` order exactly so relaxation order — and
//!    therefore every tie-break — matches the classic implementation
//!    byte for byte.
//! 2. **SCC condensation reachability** — Tarjan components plus a
//!    component-level reachability bitmatrix, so *negative* probes (the
//!    expensive ones: Dijkstra floods the whole component before giving up)
//!    are answered in O(1) without touching a heap.
//! 3. **Shortest-path-tree cache** — full one-to-all Dijkstra trees
//!    ([`SptTree`]) memoised per `(source node, cost model)` in sharded
//!    maps. A probe whose tree is cached costs two array reads; every probe
//!    sharing a source amortises one tree build. With positive edge costs,
//!    a full run's predecessor assignments for nodes settled at or before
//!    the target are identical to the early-terminated run's, so
//!    reconstructed routes are byte-identical to [`shortest_path`]'s.
//!
//! All transient search state lives in epoch-stamped [`ScratchBuffers`]
//! (dist/stamp/predecessor arrays plus a reusable heap) pooled inside the
//! oracle, so steady-state probes perform **zero heap allocation** — a
//! property locked in by the `alloc_probe` regression test.

use crate::digraph::DiGraph;
use crate::fxhash::FxHashMap;
use crate::ids::{NodeId, SegmentId};
use crate::network::RoadNetwork;
use crate::route::Route;
use crate::shortest::{CostModel, PathResult};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};

/// Past this many strongly-connected components the O(C²/64) reachability
/// bitmatrix is skipped (probes fall through to a tree lookup instead).
const MAX_REACH_COMPONENTS: usize = 4096;

/// Number of independently locked cache shards.
const SPT_SHARDS: usize = 16;

/// Default bound on cached shortest-path trees (across all shards).
const DEFAULT_SPT_CAPACITY: usize = 4096;

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    node: usize,
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by cost, exactly as in `shortest.rs` so pop order (and
        // therefore equal-cost tie-breaks) is identical.
        other.cost.total_cmp(&self.cost)
    }
}

/// The road network's node graph in compressed-sparse-row form.
///
/// Edge order within a node is exactly `RoadNetwork::out_segments` order;
/// per-edge costs are precomputed for both cost models so the inner Dijkstra
/// loop reads three flat arrays and never touches a `Segment`.
pub struct CsrAdjacency {
    /// `offsets[u]..offsets[u + 1]` indexes `u`'s out-edges.
    offsets: Vec<u32>,
    /// Target node of each edge.
    heads: Vec<u32>,
    /// Segment realising each edge.
    edge_segs: Vec<u32>,
    /// Per-edge cost, one lane per [`CostModel`] (`Distance` = 0, `Time` = 1).
    edge_cost: [Vec<f64>; 2],
    /// Per-segment start node (for route reconstruction).
    seg_from: Vec<u32>,
    /// Per-segment end node.
    seg_to: Vec<u32>,
    /// Per-segment cost, one lane per [`CostModel`].
    seg_cost: [Vec<f64>; 2],
}

#[inline]
fn lane(model: CostModel) -> usize {
    match model {
        CostModel::Distance => 0,
        CostModel::Time => 1,
    }
}

impl CsrAdjacency {
    /// Flattens `net`'s adjacency, preserving `out_segments` order.
    #[must_use]
    pub fn build(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        let m = net.num_segments();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut heads = Vec::with_capacity(m);
        let mut edge_segs = Vec::with_capacity(m);
        let mut cost_d = Vec::with_capacity(m);
        let mut cost_t = Vec::with_capacity(m);
        offsets.push(0);
        for u in 0..n {
            for &sid in net.out_segments(NodeId(u as u32)) {
                let seg = net.segment(sid);
                heads.push(seg.to.0);
                edge_segs.push(sid.0);
                cost_d.push(CostModel::Distance.cost(seg));
                cost_t.push(CostModel::Time.cost(seg));
            }
            offsets.push(heads.len() as u32);
        }
        let mut seg_from = Vec::with_capacity(m);
        let mut seg_to = Vec::with_capacity(m);
        let mut seg_cost_d = Vec::with_capacity(m);
        let mut seg_cost_t = Vec::with_capacity(m);
        for seg in net.segments() {
            seg_from.push(seg.from.0);
            seg_to.push(seg.to.0);
            seg_cost_d.push(CostModel::Distance.cost(seg));
            seg_cost_t.push(CostModel::Time.cost(seg));
        }
        CsrAdjacency {
            offsets,
            heads,
            edge_segs,
            edge_cost: [cost_d, cost_t],
            seg_from,
            seg_to,
            seg_cost: [seg_cost_d, seg_cost_t],
        }
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges (= directed segments).
    #[inline]
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.heads.len()
    }

    /// Start node of a segment.
    #[inline]
    #[must_use]
    pub fn segment_from(&self, s: SegmentId) -> NodeId {
        NodeId(self.seg_from[s.index()])
    }

    /// End node of a segment.
    #[inline]
    #[must_use]
    pub fn segment_to(&self, s: SegmentId) -> NodeId {
        NodeId(self.seg_to[s.index()])
    }

    /// Traversal cost of a segment under `model`.
    #[inline]
    #[must_use]
    pub fn segment_cost(&self, s: SegmentId, model: CostModel) -> f64 {
        self.seg_cost[lane(model)][s.index()]
    }
}

/// Reusable, epoch-stamped Dijkstra working state sized to the network.
///
/// `dist`/`prev_seg` entries are only valid where `stamp` equals the current
/// epoch, so "resetting" between searches is a single counter increment
/// instead of an O(V) fill — and re-running a search against recycled
/// buffers is indistinguishable from running it against fresh allocations
/// (the differential suite pins this down).
pub struct ScratchBuffers {
    dist: Vec<f64>,
    prev_seg: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    heap: BinaryHeap<HeapItem>,
}

impl ScratchBuffers {
    /// Scratch sized for a graph with `n` nodes.
    #[must_use]
    pub fn for_nodes(n: usize) -> Self {
        ScratchBuffers {
            dist: vec![f64::INFINITY; n],
            prev_seg: vec![u32::MAX; n],
            stamp: vec![0; n],
            epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Scratch sized for `net`.
    #[must_use]
    pub fn for_network(net: &RoadNetwork) -> Self {
        Self::for_nodes(net.num_nodes())
    }

    /// Starts a new search epoch: O(1) amortised (the heap keeps its
    /// capacity; stamps are only bulk-reset on the once-per-4-billion
    /// epoch-counter wraparound).
    fn begin(&mut self) {
        self.heap.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Distance label of `v` in the current epoch (∞ when untouched).
    #[inline]
    fn dist(&self, v: usize) -> f64 {
        if self.stamp[v] == self.epoch {
            self.dist[v]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn relax(&mut self, v: usize, d: f64, via: u32) {
        self.dist[v] = d;
        self.prev_seg[v] = via;
        self.stamp[v] = self.epoch;
    }

    /// Predecessor segment of `v` in the current epoch (`u32::MAX` = none).
    #[inline]
    fn prev(&self, v: usize) -> u32 {
        if self.stamp[v] == self.epoch {
            self.prev_seg[v]
        } else {
            u32::MAX
        }
    }
}

/// A full one-to-all shortest-path tree from one source node.
///
/// `prev_seg[v]` is the segment that finally relaxed `v` (`u32::MAX` for the
/// source and unreachable nodes). Because every edge cost is positive, the
/// assignments for any node settled at or before a target equal those the
/// early-terminated point query would have produced, so walking `prev_seg`
/// reconstructs byte-identical routes.
pub struct SptTree {
    source: NodeId,
    model: CostModel,
    dist: Box<[f64]>,
    prev_seg: Box<[u32]>,
}

impl SptTree {
    /// The tree's source node.
    #[inline]
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The cost model the tree was built under.
    #[inline]
    #[must_use]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Cost from the source to `v` (∞ when unreachable).
    #[inline]
    #[must_use]
    pub fn dist_to(&self, v: NodeId) -> f64 {
        self.dist[v.index()]
    }

    /// Segment that finally relaxed `v`, if any.
    #[inline]
    #[must_use]
    pub fn prev_segment(&self, v: NodeId) -> Option<SegmentId> {
        let p = self.prev_seg[v.index()];
        (p != u32::MAX).then_some(SegmentId(p))
    }
}

/// Component-level reachability bitmatrix over the SCC condensation.
struct ReachMatrix {
    words: usize,
    bits: Vec<u64>,
}

impl ReachMatrix {
    #[inline]
    fn reachable(&self, cu: usize, cv: usize) -> bool {
        (self.bits[cu * self.words + cv / 64] >> (cv % 64)) & 1 == 1
    }
}

type SptShard = Mutex<FxHashMap<(u32, u8), Arc<SptTree>>>;

/// Precomputed shortest-path oracle over one immutable [`RoadNetwork`].
///
/// See the [module docs](self) for the layering. The oracle is pure with
/// respect to the network: every answer equals what the corresponding
/// `shortest.rs` query would return, so cached and uncached probes may be
/// mixed freely. Hit/miss accounting: a probe answered from precomputed
/// state (reachability matrix or cached tree) counts as a **hit**; a probe
/// that had to run Dijkstra counts as a **miss**.
pub struct SpOracle {
    csr: CsrAdjacency,
    /// Tarjan component of each node (reverse-topological indices).
    comp: Vec<u32>,
    num_components: usize,
    reach: Option<ReachMatrix>,
    shards: Vec<SptShard>,
    per_shard_capacity: usize,
    scratch_pool: Mutex<Vec<ScratchBuffers>>,
    lookups: hris_obs::PairedCounter,
    preprocessing_seconds: f64,
}

impl std::fmt::Debug for SpOracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpOracle")
            .field("nodes", &self.csr.num_nodes())
            .field("edges", &self.csr.num_edges())
            .field("components", &self.num_components)
            .field("has_reach_matrix", &self.reach.is_some())
            .field("cached_trees", &self.cached_trees())
            .field("preprocessing_seconds", &self.preprocessing_seconds)
            .finish()
    }
}

impl SpOracle {
    /// Preprocesses `net` with the default tree-cache capacity.
    #[must_use]
    pub fn build(net: &RoadNetwork) -> Self {
        Self::with_capacity(net, DEFAULT_SPT_CAPACITY)
    }

    /// Preprocesses `net`, bounding the tree cache to roughly `capacity`
    /// trees (split across shards; zero is bumped to one per shard).
    #[must_use]
    pub fn with_capacity(net: &RoadNetwork, capacity: usize) -> Self {
        let t0 = std::time::Instant::now();
        let csr = CsrAdjacency::build(net);
        // Tarjan over the node graph; component ids are in reverse
        // topological order of the condensation, so every cross-component
        // edge u→v has comp[v] < comp[u].
        let mut g = DiGraph::with_nodes(csr.num_nodes());
        for u in 0..csr.num_nodes() {
            let (lo, hi) = (csr.offsets[u] as usize, csr.offsets[u + 1] as usize);
            for e in lo..hi {
                g.add_edge(u, csr.heads[e] as usize, 1.0);
            }
        }
        let comp_usize = g.tarjan_scc();
        let num_components = comp_usize.iter().copied().max().map_or(0, |c| c + 1);
        let comp: Vec<u32> = comp_usize.iter().map(|&c| c as u32).collect();
        let reach = (num_components <= MAX_REACH_COMPONENTS).then(|| {
            let words = num_components.div_ceil(64).max(1);
            let mut bits = vec![0u64; num_components * words];
            // Ascending component order is topological for incoming unions:
            // all edges out of component c land in components < c, whose
            // rows are already complete.
            for c in 0..num_components {
                bits[c * words + c / 64] |= 1 << (c % 64);
            }
            for u in 0..csr.num_nodes() {
                let cu = comp[u] as usize;
                let (lo, hi) = (csr.offsets[u] as usize, csr.offsets[u + 1] as usize);
                for e in lo..hi {
                    let cv = comp[csr.heads[e] as usize] as usize;
                    if cu != cv {
                        debug_assert!(cv < cu, "tarjan ids are reverse-topological");
                        for w in 0..words {
                            let row = bits[cv * words + w];
                            bits[cu * words + w] |= row;
                        }
                    }
                }
            }
            ReachMatrix { words, bits }
        });
        let per_shard_capacity = capacity.div_ceil(SPT_SHARDS).max(1);
        SpOracle {
            csr,
            comp,
            num_components,
            reach,
            shards: (0..SPT_SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            per_shard_capacity,
            scratch_pool: Mutex::new(Vec::new()),
            lookups: hris_obs::PairedCounter::new(),
            preprocessing_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// The flattened adjacency the oracle searches over.
    #[inline]
    #[must_use]
    pub fn csr(&self) -> &CsrAdjacency {
        &self.csr
    }

    /// Number of strongly-connected components in the node graph.
    #[inline]
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Wall-clock seconds the preprocessing pass (CSR + SCC + reachability)
    /// took — exported as the `hris_sp_oracle_preprocessing_seconds` gauge.
    #[inline]
    #[must_use]
    pub fn preprocessing_seconds(&self) -> f64 {
        self.preprocessing_seconds
    }

    /// `true` when `v` is reachable from `u`.
    ///
    /// O(1) via the condensation bitmatrix when available; conservatively
    /// `true` (forcing a tree lookup) on networks with more components than
    /// [`MAX_REACH_COMPONENTS`].
    #[inline]
    #[must_use]
    pub fn reachable(&self, u: NodeId, v: NodeId) -> bool {
        match &self.reach {
            Some(m) => m.reachable(self.comp[u.index()] as usize, self.comp[v.index()] as usize),
            None => true,
        }
    }

    /// Shared hit/miss pair — clone to register on a metrics registry as
    /// `hris_sp_oracle_{hits,misses}_total`.
    #[must_use]
    pub fn lookup_counters(&self) -> hris_obs::PairedCounter {
        self.lookups.clone()
    }

    /// Probes answered from precomputed state so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.lookups.hits()
    }

    /// Probes that had to run Dijkstra so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lookups.misses()
    }

    /// Number of shortest-path trees currently cached.
    #[must_use]
    pub fn cached_trees(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("spt shard").len())
            .sum()
    }

    #[inline]
    fn shard(&self, source: NodeId) -> &SptShard {
        &self.shards[source.index() % SPT_SHARDS]
    }

    /// The cached tree for `(source, model)` without computing one.
    /// Counts as a hit when present; absent peeks are not counted (the
    /// caller's follow-up [`SpOracle::spt`] will count the miss).
    #[must_use]
    pub fn cached_spt(&self, source: NodeId, model: CostModel) -> Option<Arc<SptTree>> {
        let key = (source.0, lane(model) as u8);
        let found = self
            .shard(source)
            .lock()
            .expect("spt shard")
            .get(&key)
            .cloned();
        if found.is_some() {
            self.lookups.hit();
        }
        found
    }

    /// The one-to-all shortest-path tree from `source`, cached.
    #[must_use]
    pub fn spt(&self, source: NodeId, model: CostModel) -> Arc<SptTree> {
        let key = (source.0, lane(model) as u8);
        {
            let mut shard = self.shard(source).lock().expect("spt shard");
            if let Some(t) = shard.get(&key) {
                self.lookups.hit();
                return Arc::clone(t);
            }
            // Bound memory: flush the shard wholesale when full. Flushing
            // only costs recomputation; answers are unaffected.
            if shard.len() >= self.per_shard_capacity {
                shard.clear();
            }
        }
        self.lookups.miss();
        let tree = Arc::new(self.compute_spt(source, model));
        self.shard(source)
            .lock()
            .expect("spt shard")
            .insert(key, Arc::clone(&tree));
        tree
    }

    fn with_scratch<R>(&self, f: impl FnOnce(&mut ScratchBuffers) -> R) -> R {
        let mut scratch = self
            .scratch_pool
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_else(|| ScratchBuffers::for_nodes(self.csr.num_nodes()));
        let out = f(&mut scratch);
        self.scratch_pool
            .lock()
            .expect("scratch pool")
            .push(scratch);
        out
    }

    fn compute_spt(&self, source: NodeId, model: CostModel) -> SptTree {
        let n = self.csr.num_nodes();
        let costs = &self.csr.edge_cost[lane(model)];
        let mut dist = vec![f64::INFINITY; n].into_boxed_slice();
        let mut prev_seg = vec![u32::MAX; n].into_boxed_slice();
        if source.index() >= n {
            return SptTree {
                source,
                model,
                dist,
                prev_seg,
            };
        }
        self.with_scratch(|scr| {
            scr.begin();
            scr.relax(source.index(), 0.0, u32::MAX);
            scr.heap.push(HeapItem {
                cost: 0.0,
                node: source.index(),
            });
            while let Some(HeapItem { cost, node }) = scr.heap.pop() {
                if cost > scr.dist(node) {
                    continue;
                }
                let (lo, hi) = (
                    self.csr.offsets[node] as usize,
                    self.csr.offsets[node + 1] as usize,
                );
                let heads = &self.csr.heads[lo..hi];
                let segs = &self.csr.edge_segs[lo..hi];
                for ((&head, &edge_cost), &seg) in heads.iter().zip(&costs[lo..hi]).zip(segs) {
                    let v = head as usize;
                    let nd = cost + edge_cost;
                    if nd < scr.dist(v) {
                        scr.relax(v, nd, seg);
                        scr.heap.push(HeapItem { cost: nd, node: v });
                    }
                }
            }
            for v in 0..n {
                dist[v] = scr.dist(v);
                prev_seg[v] = scr.prev(v);
            }
        });
        SptTree {
            source,
            model,
            dist,
            prev_seg,
        }
    }

    /// Point-to-point Dijkstra against caller-owned scratch, byte-identical
    /// to [`crate::shortest::shortest_path`] (same relaxation order, same
    /// early termination, same reconstruction) but with zero transient
    /// allocation beyond the returned path.
    #[must_use]
    pub fn point_to_point(
        &self,
        source: NodeId,
        target: NodeId,
        model: CostModel,
        scratch: &mut ScratchBuffers,
    ) -> Option<PathResult> {
        let n = self.csr.num_nodes();
        if source.index() >= n || target.index() >= n {
            return None;
        }
        if source == target {
            return Some(PathResult {
                cost: 0.0,
                nodes: vec![source],
                segments: Vec::new(),
            });
        }
        let costs = &self.csr.edge_cost[lane(model)];
        scratch.begin();
        scratch.relax(source.index(), 0.0, u32::MAX);
        scratch.heap.push(HeapItem {
            cost: 0.0,
            node: source.index(),
        });
        while let Some(HeapItem { cost, node }) = scratch.heap.pop() {
            if cost > scratch.dist(node) {
                continue;
            }
            if node == target.index() {
                break;
            }
            let (lo, hi) = (
                self.csr.offsets[node] as usize,
                self.csr.offsets[node + 1] as usize,
            );
            let heads = &self.csr.heads[lo..hi];
            let segs = &self.csr.edge_segs[lo..hi];
            for ((&head, &edge_cost), &seg) in heads.iter().zip(&costs[lo..hi]).zip(segs) {
                let v = head as usize;
                let nd = cost + edge_cost;
                if nd < scratch.dist(v) {
                    scratch.relax(v, nd, seg);
                    scratch.heap.push(HeapItem { cost: nd, node: v });
                }
            }
        }
        let total = scratch.dist(target.index());
        if !total.is_finite() {
            return None;
        }
        let mut segments = Vec::new();
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != source {
            let sid = scratch.prev(cur.index());
            debug_assert_ne!(sid, u32::MAX, "finite dist implies predecessor");
            segments.push(SegmentId(sid));
            cur = self.csr.segment_from(SegmentId(sid));
            nodes.push(cur);
        }
        nodes.reverse();
        segments.reverse();
        Some(PathResult {
            cost: total,
            nodes,
            segments,
        })
    }

    /// Shortest route that fully traverses `r`, then the network, then `s` —
    /// byte-identical to
    /// [`route_between_segments`](crate::shortest::route_between_segments),
    /// answered from the reachability matrix (negatives) or a cached tree
    /// when possible.
    #[must_use]
    pub fn route_between(&self, r: SegmentId, s: SegmentId, model: CostModel) -> Option<Route> {
        if r == s {
            return Some(Route::new(vec![r]));
        }
        let src = self.csr.segment_to(r);
        let dst = self.csr.segment_from(s);
        if !self.reachable(src, dst) {
            // O(1) negative; precomputed state answered it, count the hit.
            self.lookups.hit();
            return None;
        }
        let spt = self.spt(src, model);
        self.walk_route(&spt, r, s, src, dst)
    }

    /// [`SpOracle::route_between`] answered **only** from precomputed state
    /// (trivial pair, reachability negative, or an already-cached tree).
    /// Returns `None` when answering would require running Dijkstra — the
    /// caller can then consult its own per-pair cache before paying for the
    /// full tree via [`SpOracle::route_between`].
    #[must_use]
    pub fn route_between_cached(
        &self,
        r: SegmentId,
        s: SegmentId,
        model: CostModel,
    ) -> Option<Option<Route>> {
        if r == s {
            return Some(Some(Route::new(vec![r])));
        }
        let src = self.csr.segment_to(r);
        let dst = self.csr.segment_from(s);
        if !self.reachable(src, dst) {
            self.lookups.hit();
            return Some(None);
        }
        let spt = self.cached_spt(src, model)?;
        Some(self.walk_route(&spt, r, s, src, dst))
    }

    /// Reconstructs the `r → … → s` route by walking `spt`'s predecessor
    /// segments back from `dst`.
    fn walk_route(
        &self,
        spt: &SptTree,
        r: SegmentId,
        s: SegmentId,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Route> {
        if !spt.dist_to(dst).is_finite() {
            return None;
        }
        let mut segs = vec![r];
        let mut cur = dst;
        while cur != src {
            let sid = spt.prev_seg[cur.index()];
            debug_assert_ne!(sid, u32::MAX, "finite dist implies predecessor");
            segs.push(SegmentId(sid));
            cur = self.csr.segment_from(SegmentId(sid));
        }
        segs[1..].reverse();
        segs.push(s);
        Some(Route::new(segs))
    }

    /// Total cost of [`SpOracle::route_between`]'s route without building
    /// it: the steady-state candidate-pair probe. With the tree cached this
    /// performs **zero heap allocation** (pinned by the `alloc_probe` test).
    #[must_use]
    pub fn route_cost_between(&self, r: SegmentId, s: SegmentId, model: CostModel) -> Option<f64> {
        if r == s {
            return Some(self.csr.segment_cost(r, model));
        }
        let src = self.csr.segment_to(r);
        let dst = self.csr.segment_from(s);
        if !self.reachable(src, dst) {
            self.lookups.hit();
            return None;
        }
        let spt = self.spt(src, model);
        let bridge = spt.dist_to(dst);
        if !bridge.is_finite() {
            return None;
        }
        Some(self.csr.segment_cost(r, model) + bridge + self.csr.segment_cost(s, model))
    }

    /// Drops every cached tree while keeping the hit/miss counters
    /// (cumulative service statistics, not cache contents).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("spt shard").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, NetworkConfig, RoadClass};
    use crate::shortest::{route_between_segments, shortest_path};
    use hris_geo::{Point, Polyline};

    fn grid() -> RoadNetwork {
        let mut b = RoadNetwork::builder();
        let mut ids = Vec::new();
        for j in 0..4 {
            for i in 0..4 {
                ids.push(b.add_node(Point::new(i as f64 * 100.0, j as f64 * 100.0)));
            }
        }
        let at = |i: usize, j: usize| ids[j * 4 + i];
        for j in 0..4 {
            for i in 0..4 {
                if i + 1 < 4 {
                    let shape = Polyline::straight(b.node(at(i, j)), b.node(at(i + 1, j)));
                    b.add_two_way(at(i, j), at(i + 1, j), shape, 10.0, RoadClass::Residential);
                }
                if j + 1 < 4 {
                    let shape = Polyline::straight(b.node(at(i, j)), b.node(at(i, j + 1)));
                    b.add_two_way(at(i, j), at(i, j + 1), shape, 10.0, RoadClass::Residential);
                }
            }
        }
        b.build()
    }

    #[test]
    fn csr_mirrors_adjacency_order() {
        let net = grid();
        let csr = CsrAdjacency::build(&net);
        assert_eq!(csr.num_nodes(), net.num_nodes());
        assert_eq!(csr.num_edges(), net.num_segments());
        for u in 0..net.num_nodes() {
            let (lo, hi) = (csr.offsets[u] as usize, csr.offsets[u + 1] as usize);
            let segs: Vec<SegmentId> = csr.edge_segs[lo..hi]
                .iter()
                .map(|&s| SegmentId(s))
                .collect();
            assert_eq!(segs, net.out_segments(NodeId(u as u32)), "node {u}");
        }
    }

    #[test]
    fn route_between_matches_classic_everywhere() {
        for net in [grid(), generate(&NetworkConfig::small(7))] {
            let oracle = SpOracle::build(&net);
            let m = net.num_segments() as u32;
            for k in 0..200u32 {
                let r = SegmentId(k * 37 % m);
                let s = SegmentId((k * 101 + 13) % m);
                for model in [CostModel::Distance, CostModel::Time] {
                    let classic = route_between_segments(&net, r, s, model);
                    let fast = oracle.route_between(r, s, model);
                    assert_eq!(fast, classic, "{r:?}->{s:?} {model:?}");
                    if let Some(route) = &classic {
                        let cost: f64 = route
                            .segments()
                            .iter()
                            .map(|&x| model.cost(net.segment(x)))
                            .sum();
                        let probed = oracle.route_cost_between(r, s, model).unwrap();
                        assert!((cost - probed).abs() < 1e-9, "{r:?}->{s:?}");
                    } else {
                        assert!(oracle.route_cost_between(r, s, model).is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn point_to_point_matches_shortest_path() {
        let net = generate(&NetworkConfig::small(23));
        let oracle = SpOracle::build(&net);
        let mut scratch = ScratchBuffers::for_network(&net);
        let n = net.num_nodes() as u32;
        for k in 0..150u32 {
            let s = NodeId(k * 17 % n);
            let t = NodeId((k * 53 + 11) % n);
            for model in [CostModel::Distance, CostModel::Time] {
                let classic = shortest_path(&net, s, t, model);
                let fast = oracle.point_to_point(s, t, model, &mut scratch);
                assert_eq!(fast, classic, "{s:?}->{t:?} {model:?}");
            }
        }
    }

    #[test]
    fn unreachable_answered_without_dijkstra() {
        let mut b = RoadNetwork::builder();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(500.0, 0.0));
        let e = b.add_node(Point::new(600.0, 0.0));
        b.add_straight_segment(a, c, 10.0, RoadClass::Residential);
        b.add_straight_segment(d, e, 10.0, RoadClass::Residential);
        let net = b.build();
        let oracle = SpOracle::build(&net);
        let r = net.out_segments(a)[0];
        let s = net.out_segments(d)[0];
        assert!(!oracle.reachable(c, d));
        assert!(oracle.route_between(r, s, CostModel::Distance).is_none());
        // Negative answered by the reachability matrix: a hit, no tree built.
        assert_eq!((oracle.hits(), oracle.misses()), (1, 0));
        assert_eq!(oracle.cached_trees(), 0);
    }

    #[test]
    fn tree_cache_hits_and_is_bounded() {
        let net = grid();
        let oracle = SpOracle::with_capacity(&net, SPT_SHARDS); // 1 tree/shard
        let r = net.out_segments(NodeId(0))[0];
        let s = net.in_segments(NodeId(15))[0];
        let first = oracle.route_between(r, s, CostModel::Distance);
        assert!(first.is_some());
        assert_eq!(oracle.misses(), 1);
        let again = oracle.route_between(r, s, CostModel::Distance);
        assert_eq!(again, first);
        assert!(oracle.hits() >= 1, "second probe reuses the cached tree");
        // Flood with distinct sources; the cache must stay bounded.
        let m = net.num_segments() as u32;
        for a in 0..m {
            for b in 0..m {
                let _ = oracle.route_cost_between(SegmentId(a), SegmentId(b), CostModel::Distance);
            }
        }
        assert!(oracle.cached_trees() <= SPT_SHARDS);
        oracle.clear();
        assert_eq!(oracle.cached_trees(), 0);
        assert!(oracle.hits() > 0, "counters survive clear");
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        // One scratch reused across many queries must agree with a fresh
        // scratch per query (epoch stamping makes stale labels unreadable).
        let net = generate(&NetworkConfig::small(5));
        let oracle = SpOracle::build(&net);
        let mut reused = ScratchBuffers::for_network(&net);
        let n = net.num_nodes() as u32;
        for k in 0..60u32 {
            let s = NodeId(k * 29 % n);
            let t = NodeId((k * 7 + 3) % n);
            let mut fresh = ScratchBuffers::for_network(&net);
            let a = oracle.point_to_point(s, t, CostModel::Distance, &mut reused);
            let b = oracle.point_to_point(s, t, CostModel::Distance, &mut fresh);
            assert_eq!(a, b, "{s:?}->{t:?}");
        }
    }

    #[test]
    fn preprocessing_metadata_sane() {
        let net = grid();
        let oracle = SpOracle::build(&net);
        assert!(oracle.preprocessing_seconds() >= 0.0);
        assert_eq!(
            oracle.num_components(),
            1,
            "two-way grid is strongly connected"
        );
        assert!(format!("{oracle:?}").contains("SpOracle"));
    }
}
