//! Routes: connected sequences of road segments (Definition 4).

use crate::ids::{NodeId, SegmentId};
use crate::network::RoadNetwork;
use hris_geo::{Point, Polyline};
use serde::{Deserialize, Serialize};

/// A route `R : r₁ → r₂ → … → rₙ` where consecutive segments connect
/// head-to-tail (`r_{k+1}.s = r_k.e`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Route {
    segments: Vec<SegmentId>,
}

impl Route {
    /// A route over the given segments.
    ///
    /// Connectivity is *not* checked here (it needs the network); call
    /// [`Route::is_connected`] to verify.
    #[must_use]
    pub fn new(segments: Vec<SegmentId>) -> Self {
        Route { segments }
    }

    /// The empty route.
    #[must_use]
    pub fn empty() -> Self {
        Route {
            segments: Vec::new(),
        }
    }

    /// Segment ids in travel order.
    #[inline]
    #[must_use]
    pub fn segments(&self) -> &[SegmentId] {
        &self.segments
    }

    /// Number of segments.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` for the empty route.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Start vertex (`R.s = r₁.s`); `None` for the empty route.
    #[must_use]
    pub fn start_node(&self, net: &RoadNetwork) -> Option<NodeId> {
        self.segments.first().map(|&s| net.segment(s).from)
    }

    /// End vertex (`R.e = rₙ.e`); `None` for the empty route.
    #[must_use]
    pub fn end_node(&self, net: &RoadNetwork) -> Option<NodeId> {
        self.segments.last().map(|&s| net.segment(s).to)
    }

    /// Total length in metres.
    #[must_use]
    pub fn length(&self, net: &RoadNetwork) -> f64 {
        self.segments.iter().map(|&s| net.segment(s).length).sum()
    }

    /// Free-flow travel time in seconds.
    #[must_use]
    pub fn travel_time(&self, net: &RoadNetwork) -> f64 {
        self.segments
            .iter()
            .map(|&s| net.segment(s).travel_time())
            .sum()
    }

    /// `true` if every consecutive pair connects head-to-tail.
    /// The empty route and single-segment routes are trivially connected.
    #[must_use]
    pub fn is_connected(&self, net: &RoadNetwork) -> bool {
        self.segments
            .windows(2)
            .all(|w| net.segment(w[0]).to == net.segment(w[1]).from)
    }

    /// Concatenates with `other` (`R₁ ⋄ R₂` in the paper's notation),
    /// dropping a duplicated joint segment if `other` starts with the same
    /// segment `self` ends with.
    #[must_use]
    pub fn concat(&self, other: &Route) -> Route {
        let mut segments = self.segments.clone();
        let skip_first = match (segments.last(), other.segments.first()) {
            (Some(&a), Some(&b)) => a == b,
            _ => false,
        };
        segments.extend_from_slice(&other.segments[usize::from(skip_first)..]);
        Route { segments }
    }

    /// Appends one segment.
    pub fn push(&mut self, seg: SegmentId) {
        self.segments.push(seg);
    }

    /// Removes loops: whenever the route revisits a vertex, the segments
    /// between the two visits are excised. Connectivity is preserved (the
    /// route re-enters exactly where it left). Bridging mismatched local
    /// routes at query points can create such backtracking (Section III-C's
    /// "use shortest path to bridge this gap"); excising it keeps inferred
    /// routes from ballooning past the ground truth.
    #[must_use]
    pub fn without_loops(&self, net: &RoadNetwork) -> Route {
        if self.segments.len() < 2 {
            return self.clone();
        }
        let mut out: Vec<SegmentId> = Vec::with_capacity(self.segments.len());
        // Position in `out` *after* which each node occurs (out[..pos] ends
        // at that node). The start node occurs at position 0.
        let mut seen: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        let start = net.segment(self.segments[0]).from;
        seen.insert(start, 0);
        for &sid in &self.segments {
            let end = net.segment(sid).to;
            out.push(sid);
            if let Some(&pos) = seen.get(&end) {
                // Loop: cut everything after `pos`, then forget the nodes
                // introduced by the excised stretch.
                out.truncate(pos);
                seen.retain(|_, &mut p| p <= pos);
            } else {
                seen.insert(end, out.len());
            }
        }
        Route { segments: out }
    }

    /// Renders the route as a single polyline; `None` for the empty route.
    #[must_use]
    pub fn polyline(&self, net: &RoadNetwork) -> Option<Polyline> {
        Polyline::concat(self.segments.iter().map(|&s| &net.segment(s).geometry))
    }

    /// Evenly-spaced points along the route, including both endpoints.
    #[must_use]
    pub fn sample_points(&self, net: &RoadNetwork, n: usize) -> Vec<Point> {
        self.polyline(net)
            .map_or_else(Vec::new, |pl| pl.resample(n.max(2)))
    }

    /// Length of the longest common run of road segments with `other`,
    /// in metres. This is the `LCR` numerator of the paper's accuracy
    /// metric `A_L` when applied to contiguous runs; see `hris-eval` for the
    /// full metric.
    #[must_use]
    pub fn common_length(&self, other: &Route, net: &RoadNetwork) -> f64 {
        use std::collections::HashSet;
        let theirs: HashSet<SegmentId> = other.segments.iter().copied().collect();
        self.segments
            .iter()
            .filter(|s| theirs.contains(s))
            .map(|&s| net.segment(s).length)
            .sum()
    }
}

impl FromIterator<SegmentId> for Route {
    fn from_iter<I: IntoIterator<Item = SegmentId>>(iter: I) -> Self {
        Route {
            segments: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::RoadClass;
    use hris_geo::Point;

    /// Straight corridor 0→1→2→3, 100 m per segment, plus reverse edges.
    fn corridor() -> (RoadNetwork, Vec<SegmentId>) {
        let mut b = RoadNetwork::builder();
        let nodes: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(Point::new(i as f64 * 100.0, 0.0)))
            .collect();
        let mut fwd = Vec::new();
        for w in nodes.windows(2) {
            let shape = Polyline::straight(b.node(w[0]), b.node(w[1]));
            let (f, _) = b.add_two_way(w[0], w[1], shape, 10.0, RoadClass::Residential);
            fwd.push(f);
        }
        (b.build(), fwd)
    }

    #[test]
    fn route_basics() {
        let (net, fwd) = corridor();
        let r = Route::new(fwd.clone());
        assert_eq!(r.len(), 3);
        assert!(r.is_connected(&net));
        assert!((r.length(&net) - 300.0).abs() < 1e-9);
        assert!((r.travel_time(&net) - 30.0).abs() < 1e-9);
        assert_eq!(r.start_node(&net), Some(NodeId(0)));
        assert_eq!(r.end_node(&net), Some(NodeId(3)));
    }

    #[test]
    fn empty_route() {
        let (net, _) = corridor();
        let r = Route::empty();
        assert!(r.is_empty());
        assert!(r.is_connected(&net));
        assert_eq!(r.length(&net), 0.0);
        assert!(r.start_node(&net).is_none());
        assert!(r.polyline(&net).is_none());
    }

    #[test]
    fn disconnected_route_detected() {
        let (net, fwd) = corridor();
        // Skip the middle segment.
        let r = Route::new(vec![fwd[0], fwd[2]]);
        assert!(!r.is_connected(&net));
    }

    #[test]
    fn concat_dedups_joint() {
        let (net, fwd) = corridor();
        let a = Route::new(vec![fwd[0], fwd[1]]);
        let b = Route::new(vec![fwd[1], fwd[2]]);
        let c = a.concat(&b);
        assert_eq!(c.segments(), &[fwd[0], fwd[1], fwd[2]]);
        assert!(c.is_connected(&net));
        // Without overlap, plain append.
        let d = Route::new(vec![fwd[0]]).concat(&Route::new(vec![fwd[1]]));
        assert_eq!(d.segments(), &[fwd[0], fwd[1]]);
    }

    #[test]
    fn polyline_covers_route() {
        let (net, fwd) = corridor();
        let r = Route::new(fwd);
        let pl = r.polyline(&net).unwrap();
        assert!((pl.length() - 300.0).abs() < 1e-9);
        assert_eq!(pl.start(), Point::new(0.0, 0.0));
        assert_eq!(pl.end(), Point::new(300.0, 0.0));
    }

    #[test]
    fn common_length_overlap() {
        let (net, fwd) = corridor();
        let a = Route::new(vec![fwd[0], fwd[1]]);
        let b = Route::new(vec![fwd[1], fwd[2]]);
        assert!((a.common_length(&b, &net) - 100.0).abs() < 1e-9);
        assert!((a.common_length(&a, &net) - 200.0).abs() < 1e-9);
        assert_eq!(a.common_length(&Route::empty(), &net), 0.0);
    }

    #[test]
    fn without_loops_cuts_backtracking() {
        let (net, fwd) = corridor();
        // Find the reverse twin of fwd[1].
        let rev1 = net
            .segments()
            .iter()
            .find(|s| s.from == net.segment(fwd[1]).to && s.to == net.segment(fwd[1]).from)
            .unwrap()
            .id;
        // 0→1→2, backtrack 2→1, then 1→2→3: the excursion collapses.
        let r = Route::new(vec![fwd[0], fwd[1], rev1, fwd[1], fwd[2]]);
        assert!(r.is_connected(&net));
        let clean = r.without_loops(&net);
        assert_eq!(clean.segments(), &[fwd[0], fwd[1], fwd[2]]);
        assert!(clean.is_connected(&net));
    }

    #[test]
    fn without_loops_keeps_simple_routes() {
        let (net, fwd) = corridor();
        let r = Route::new(fwd.clone());
        assert_eq!(r.without_loops(&net), r);
        assert_eq!(Route::empty().without_loops(&net), Route::empty());
        let single = Route::new(vec![fwd[0]]);
        assert_eq!(single.without_loops(&net), single);
    }

    #[test]
    fn sample_points_endpoints() {
        let (net, fwd) = corridor();
        let r = Route::new(fwd);
        let pts = r.sample_points(&net, 7);
        assert_eq!(pts.len(), 7);
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[6], Point::new(300.0, 0.0));
    }
}
