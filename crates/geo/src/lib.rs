//! Planar and geodetic geometry kernels used throughout the HRIS workspace.
//!
//! All online computation happens in a **local planar frame** measured in
//! metres: road networks, trajectories and queries all carry [`Point`]
//! coordinates. Real-world GPS input expressed in latitude/longitude can be
//! brought into (and out of) this frame with a [`geodesy::LocalProjection`].
//!
//! The crate is intentionally dependency-light and allocation-averse: the hot
//! kernels (`point ↔ segment` projection, polyline offsets) are called once
//! per GPS point per candidate edge in the map-matching and inference layers.

#![warn(missing_docs)]

pub mod bbox;
pub mod frechet;
pub mod geodesy;
pub mod point;
pub mod polyline;
pub mod segment;

pub use bbox::BBox;
pub use frechet::{discrete_frechet, mean_deviation};
pub use geodesy::{haversine_m, LatLon, LocalProjection, EARTH_RADIUS_M};
pub use point::Point;
pub use polyline::{Polyline, PolylineProjection};
pub use segment::SegmentGeom;

/// Square-kilometre area of a bounding box given in metres.
///
/// Convenience for the reference-point density `ρ = |P| / area(MBB(P))`
/// used by the hybrid local-inference switch (Section III-B.3 of the paper).
#[must_use]
pub fn area_km2(bbox: &BBox) -> f64 {
    bbox.area_m2() / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_km2_converts_square_metres() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(2000.0, 500.0));
        assert!((area_km2(&b) - 1.0).abs() < 1e-12);
    }
}
