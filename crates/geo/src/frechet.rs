//! Curve similarity: discrete Fréchet distance and mean symmetric
//! deviation. Used to evaluate the *network-free* route inference
//! extension, where inferred routes are free-space polylines that cannot be
//! compared segment-by-segment.

use crate::point::Point;
use crate::polyline::Polyline;

/// Discrete Fréchet distance between two point sequences.
///
/// The classic "dog walking" metric: the minimal leash length that lets two
/// walkers traverse their curves monotonically. `O(n·m)` dynamic program
/// (Eiter & Mannila).
///
/// Returns `f64::INFINITY` when either sequence is empty.
#[must_use]
pub fn discrete_frechet(a: &[Point], b: &[Point]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    let m = b.len();
    // Rolling rows of the coupling table.
    let mut prev = vec![0.0f64; m];
    let mut cur = vec![0.0f64; m];
    for (i, &pa) in a.iter().enumerate() {
        for (j, &pb) in b.iter().enumerate() {
            let d = pa.dist(pb);
            let reach = if i == 0 && j == 0 {
                d
            } else if i == 0 {
                cur[j - 1].max(d)
            } else if j == 0 {
                prev[0].max(d)
            } else {
                prev[j].min(prev[j - 1]).min(cur[j - 1]).max(d)
            };
            cur[j] = reach;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m - 1]
}

/// Mean symmetric deviation between two polylines: the average over both
/// directions of each curve's sampled points' distance to the other curve.
///
/// Less adversarial than Fréchet (no single worst point dominates); `n`
/// sample points per curve.
#[must_use]
pub fn mean_deviation(a: &Polyline, b: &Polyline, n: usize) -> f64 {
    let n = n.max(2);
    let sa = a.resample(n);
    let sb = b.resample(n);
    let d_ab: f64 = sa.iter().map(|&p| b.dist_to_point(p)).sum::<f64>() / n as f64;
    let d_ba: f64 = sb.iter().map(|&p| a.dist_to_point(p)).sum::<f64>() / n as f64;
    (d_ab + d_ba) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(points: &[(f64, f64)]) -> Vec<Point> {
        points.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn identical_curves_have_zero_frechet() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0), (20.0, 5.0)]);
        assert_eq!(discrete_frechet(&a, &a), 0.0);
    }

    #[test]
    fn parallel_lines_distance() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]);
        let b = line(&[(0.0, 3.0), (10.0, 3.0), (20.0, 3.0)]);
        assert!((discrete_frechet(&a, &b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn frechet_exceeds_hausdorff_on_backtracking() {
        // Curves as point sets are close, but traversal order forces a
        // long leash.
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = line(&[(10.0, 1.0), (0.0, 1.0)]); // reversed direction
        let d = discrete_frechet(&a, &b);
        assert!(d >= 10.0, "got {d}");
    }

    #[test]
    fn frechet_symmetry() {
        let a = line(&[(0.0, 0.0), (5.0, 5.0), (10.0, 0.0)]);
        let b = line(&[(0.0, 1.0), (4.0, 6.0), (11.0, 1.0), (12.0, 0.0)]);
        assert!((discrete_frechet(&a, &b) - discrete_frechet(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_infinite() {
        let a = line(&[(0.0, 0.0)]);
        assert_eq!(discrete_frechet(&a, &[]), f64::INFINITY);
        assert_eq!(discrete_frechet(&[], &a), f64::INFINITY);
    }

    #[test]
    fn frechet_at_least_endpoint_distances() {
        let a = line(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = line(&[(0.0, 4.0), (15.0, 0.0)]);
        let d = discrete_frechet(&a, &b);
        assert!(
            d >= 5.0 - 1e-9,
            "leash must cover the endpoint gap, got {d}"
        );
    }

    #[test]
    fn mean_deviation_zero_for_identical() {
        let p = Polyline::new(line(&[(0.0, 0.0), (100.0, 0.0), (100.0, 100.0)]));
        assert!(mean_deviation(&p, &p, 50) < 1e-9);
    }

    #[test]
    fn mean_deviation_parallel() {
        let a = Polyline::new(line(&[(0.0, 0.0), (100.0, 0.0)]));
        let b = Polyline::new(line(&[(0.0, 10.0), (100.0, 10.0)]));
        let d = mean_deviation(&a, &b, 20);
        assert!((d - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mean_deviation_is_symmetric() {
        let a = Polyline::new(line(&[(0.0, 0.0), (50.0, 30.0), (100.0, 0.0)]));
        let b = Polyline::new(line(&[(0.0, 5.0), (100.0, 5.0)]));
        assert!((mean_deviation(&a, &b, 40) - mean_deviation(&b, &a, 40)).abs() < 1e-9);
    }
}
