//! Line-segment geometry: projection, distance and interpolation kernels.

use crate::bbox::BBox;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// The geometry of a straight segment between two points.
///
/// This is the inner-loop primitive of map matching: `dist(p, r)` from
/// Definition 5 of the paper reduces to point–segment distances over the
/// polyline pieces of a road segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentGeom {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl SegmentGeom {
    /// Creates a segment from `a` to `b`.
    #[inline]
    #[must_use]
    pub const fn new(a: Point, b: Point) -> Self {
        SegmentGeom { a, b }
    }

    /// Segment length in metres.
    #[inline]
    #[must_use]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Axis-aligned bounding box.
    #[inline]
    #[must_use]
    pub fn bbox(&self) -> BBox {
        BBox::new(self.a, self.b)
    }

    /// Clamped projection parameter `t ∈ [0, 1]` of `p` onto the segment.
    ///
    /// `t = 0` maps to `a`, `t = 1` to `b`. Degenerate (zero-length)
    /// segments return `t = 0`.
    #[must_use]
    pub fn project_t(&self, p: Point) -> f64 {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq <= f64::EPSILON {
            return 0.0;
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// Closest point on the segment to `p`.
    #[inline]
    #[must_use]
    pub fn closest_point(&self, p: Point) -> Point {
        self.a.lerp(self.b, self.project_t(p))
    }

    /// Distance from `p` to the segment in metres.
    #[inline]
    #[must_use]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Point at arc-length `offset` metres from `a`, clamped to the segment.
    #[must_use]
    pub fn point_at(&self, offset: f64) -> Point {
        let len = self.length();
        if len <= f64::EPSILON {
            return self.a;
        }
        self.a.lerp(self.b, (offset / len).clamp(0.0, 1.0))
    }

    /// Unit direction from `a` to `b`, or `None` for degenerate segments.
    #[inline]
    #[must_use]
    pub fn direction(&self) -> Option<Point> {
        (self.b - self.a).normalized()
    }

    /// Heading in radians of the direction `a → b` (0 for degenerate segments).
    #[must_use]
    pub fn heading(&self) -> f64 {
        (self.b - self.a).heading()
    }

    /// Reversed segment (`b → a`).
    #[inline]
    #[must_use]
    pub fn reversed(&self) -> SegmentGeom {
        SegmentGeom::new(self.b, self.a)
    }

    /// `true` if the two closed segments intersect.
    ///
    /// Robust orientation-based test; collinear overlaps count as
    /// intersections. Used by the spliced-reference spatial join and
    /// by network-generator sanity checks.
    #[must_use]
    pub fn intersects(&self, other: &SegmentGeom) -> bool {
        fn orient(a: Point, b: Point, c: Point) -> f64 {
            (b - a).cross(c - a)
        }
        fn on_segment(a: Point, b: Point, c: Point) -> bool {
            c.x >= a.x.min(b.x) && c.x <= a.x.max(b.x) && c.y >= a.y.min(b.y) && c.y <= a.y.max(b.y)
        }
        let (p1, p2, p3, p4) = (self.a, self.b, other.a, other.b);
        let d1 = orient(p3, p4, p1);
        let d2 = orient(p3, p4, p2);
        let d3 = orient(p1, p2, p3);
        let d4 = orient(p1, p2, p4);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(p3, p4, p1))
            || (d2 == 0.0 && on_segment(p3, p4, p2))
            || (d3 == 0.0 && on_segment(p1, p2, p3))
            || (d4 == 0.0 && on_segment(p1, p2, p4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> SegmentGeom {
        SegmentGeom::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn projection_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.project_t(Point::new(-5.0, 3.0)), 0.0);
        assert_eq!(s.project_t(Point::new(15.0, -2.0)), 1.0);
        assert!((s.project_t(Point::new(4.0, 7.0)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn closest_point_and_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Point::new(4.0, 3.0)), Point::new(4.0, 0.0));
        assert!((s.dist_to_point(Point::new(4.0, 3.0)) - 3.0).abs() < 1e-12);
        // Beyond the end: distance to the endpoint.
        assert!((s.dist_to_point(Point::new(13.0, 4.0)) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(2.0, 2.0, 2.0, 2.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.project_t(Point::new(9.0, 9.0)), 0.0);
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(2.0, 2.0));
        assert!(s.direction().is_none());
        assert_eq!(s.point_at(5.0), Point::new(2.0, 2.0));
    }

    #[test]
    fn point_at_offsets() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(s.point_at(4.0), Point::new(4.0, 0.0));
        // Clamped beyond the end.
        assert_eq!(s.point_at(25.0), Point::new(10.0, 0.0));
        assert_eq!(s.point_at(-3.0), Point::new(0.0, 0.0));
    }

    #[test]
    fn intersection_crossing() {
        let a = seg(0.0, 0.0, 10.0, 10.0);
        let b = seg(0.0, 10.0, 10.0, 0.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersection_touching_endpoint() {
        let a = seg(0.0, 0.0, 5.0, 5.0);
        let b = seg(5.0, 5.0, 9.0, 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn intersection_disjoint_and_parallel() {
        let a = seg(0.0, 0.0, 5.0, 0.0);
        let b = seg(0.0, 1.0, 5.0, 1.0);
        assert!(!a.intersects(&b));
        let c = seg(6.0, 0.0, 9.0, 0.0);
        assert!(!a.intersects(&c));
        // Collinear overlapping.
        let d = seg(3.0, 0.0, 8.0, 0.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let s = seg(1.0, 2.0, 3.0, 4.0);
        let r = s.reversed();
        assert_eq!(r.a, s.b);
        assert_eq!(r.b, s.a);
        assert_eq!(s.length(), r.length());
    }
}
