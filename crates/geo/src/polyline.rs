//! Polylines: the shape of road segments and of inferred routes.

use crate::bbox::BBox;
use crate::point::Point;
use crate::segment::SegmentGeom;
use serde::{Deserialize, Serialize};

/// Result of projecting a point onto a [`Polyline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolylineProjection {
    /// The closest point on the polyline.
    pub point: Point,
    /// Distance from the query point to `point`, metres.
    pub dist: f64,
    /// Arc-length offset of `point` from the start of the polyline, metres.
    pub offset: f64,
    /// Index of the polyline piece (`vertices[i] → vertices[i+1]`) containing `point`.
    pub piece: usize,
}

/// A piecewise-linear curve through two or more vertices.
///
/// Road segments in the network carry a `Polyline` shape (Definition 2 of the
/// paper: terminal points plus intermediate points). Routes are rendered as
/// concatenated polylines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    vertices: Vec<Point>,
    /// Cumulative arc length at each vertex; `cum[0] = 0`, `cum.last() = length`.
    #[serde(skip)]
    cum: Vec<f64>,
}

impl Polyline {
    /// Builds a polyline from at least two vertices.
    ///
    /// # Panics
    /// Panics if fewer than two vertices are supplied — a polyline with no
    /// extent has no meaningful projection or offset semantics.
    #[must_use]
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(
            vertices.len() >= 2,
            "polyline needs at least 2 vertices, got {}",
            vertices.len()
        );
        let cum = Self::cumulative(&vertices);
        Polyline { vertices, cum }
    }

    /// Straight polyline between two points.
    #[must_use]
    pub fn straight(a: Point, b: Point) -> Self {
        Polyline::new(vec![a, b])
    }

    fn cumulative(vertices: &[Point]) -> Vec<f64> {
        let mut cum = Vec::with_capacity(vertices.len());
        let mut acc = 0.0;
        cum.push(0.0);
        for w in vertices.windows(2) {
            acc += w[0].dist(w[1]);
            cum.push(acc);
        }
        cum
    }

    /// Re-establishes the cached cumulative lengths (needed after `serde`
    /// deserialisation, which skips the cache).
    pub fn rebuild_cache(&mut self) {
        self.cum = Self::cumulative(&self.vertices);
    }

    /// The vertices of the polyline.
    #[inline]
    #[must_use]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// First vertex.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Point {
        self.vertices[0]
    }

    /// Last vertex.
    #[inline]
    #[must_use]
    pub fn end(&self) -> Point {
        *self.vertices.last().expect("non-empty by construction")
    }

    /// Total arc length in metres.
    #[inline]
    #[must_use]
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("non-empty by construction")
    }

    /// Number of straight pieces (`vertices - 1`).
    #[inline]
    #[must_use]
    pub fn num_pieces(&self) -> usize {
        self.vertices.len() - 1
    }

    /// The `i`-th straight piece.
    #[inline]
    #[must_use]
    pub fn piece(&self, i: usize) -> SegmentGeom {
        SegmentGeom::new(self.vertices[i], self.vertices[i + 1])
    }

    /// Bounding box of all vertices.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        BBox::covering(self.vertices.iter().copied())
    }

    /// Projects `p` onto the polyline, returning the closest point, its
    /// distance, arc-length offset and piece index.
    #[must_use]
    pub fn project(&self, p: Point) -> PolylineProjection {
        let mut best = PolylineProjection {
            point: self.vertices[0],
            dist: f64::INFINITY,
            offset: 0.0,
            piece: 0,
        };
        for i in 0..self.num_pieces() {
            let seg = self.piece(i);
            let t = seg.project_t(p);
            let q = seg.a.lerp(seg.b, t);
            let d = q.dist(p);
            if d < best.dist {
                best = PolylineProjection {
                    point: q,
                    dist: d,
                    offset: self.cum[i] + seg.length() * t,
                    piece: i,
                };
            }
        }
        best
    }

    /// Distance from `p` to the polyline (Definition 5's `dist(p, r)`).
    #[inline]
    #[must_use]
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.project(p).dist
    }

    /// Point at arc-length `offset` from the start, clamped to `[0, length]`.
    #[must_use]
    pub fn point_at(&self, offset: f64) -> Point {
        let offset = offset.clamp(0.0, self.length());
        // Binary search for the piece containing `offset`.
        let i = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&offset).expect("finite lengths"))
        {
            Ok(i) => i.min(self.num_pieces()),
            Err(i) => i - 1,
        };
        if i >= self.num_pieces() {
            return self.end();
        }
        self.piece(i).point_at(offset - self.cum[i])
    }

    /// Evenly resamples the polyline into `n >= 2` points including both ends.
    #[must_use]
    pub fn resample(&self, n: usize) -> Vec<Point> {
        assert!(n >= 2, "resample needs at least 2 output points");
        let len = self.length();
        (0..n)
            .map(|i| self.point_at(len * i as f64 / (n - 1) as f64))
            .collect()
    }

    /// Concatenates polylines, dropping duplicated join vertices.
    ///
    /// Returns `None` if `lines` is empty.
    #[must_use]
    pub fn concat<'a, I: IntoIterator<Item = &'a Polyline>>(lines: I) -> Option<Polyline> {
        let mut vertices: Vec<Point> = Vec::new();
        for line in lines {
            for &v in line.vertices() {
                if vertices.last().is_some_and(|&last| last.dist(v) < 1e-9) {
                    continue;
                }
                vertices.push(v);
            }
        }
        if vertices.len() == 1 {
            // A chain of coincident points still needs 2 vertices to be a polyline.
            let v = vertices[0];
            vertices.push(v);
        }
        (vertices.len() >= 2).then(|| Polyline::new(vertices))
    }

    /// Reversed copy of the polyline.
    #[must_use]
    pub fn reversed(&self) -> Polyline {
        let mut v = self.vertices.clone();
        v.reverse();
        Polyline::new(v)
    }

    /// Douglas–Peucker simplification: drops vertices deviating less than
    /// `epsilon` metres from the simplified shape. Endpoints always
    /// survive; `epsilon <= 0` returns a clone.
    #[must_use]
    pub fn simplified(&self, epsilon: f64) -> Polyline {
        if epsilon <= 0.0 || self.vertices.len() <= 2 {
            return self.clone();
        }
        let mut keep = vec![false; self.vertices.len()];
        keep[0] = true;
        keep[self.vertices.len() - 1] = true;
        // Iterative stack of (start, end) ranges.
        let mut stack = vec![(0usize, self.vertices.len() - 1)];
        while let Some((a, b)) = stack.pop() {
            if b <= a + 1 {
                continue;
            }
            let chord = SegmentGeom::new(self.vertices[a], self.vertices[b]);
            let (mut worst, mut worst_d) = (a, 0.0f64);
            for i in (a + 1)..b {
                let d = chord.dist_to_point(self.vertices[i]);
                if d > worst_d {
                    worst = i;
                    worst_d = d;
                }
            }
            if worst_d > epsilon {
                keep[worst] = true;
                stack.push((a, worst));
                stack.push((worst, b));
            }
        }
        Polyline::new(
            self.vertices
                .iter()
                .zip(keep.iter())
                .filter(|(_, &k)| k)
                .map(|(&v, _)| v)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        // (0,0) → (10,0) → (10,10): length 20.
        Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
    }

    #[test]
    #[should_panic(expected = "at least 2 vertices")]
    fn rejects_single_vertex() {
        let _ = Polyline::new(vec![Point::ORIGIN]);
    }

    #[test]
    fn length_accumulates() {
        assert!((l_shape().length() - 20.0).abs() < 1e-12);
        assert_eq!(l_shape().num_pieces(), 2);
    }

    #[test]
    fn projection_picks_correct_piece() {
        let pl = l_shape();
        let pr = pl.project(Point::new(5.0, 2.0));
        assert_eq!(pr.piece, 0);
        assert!((pr.dist - 2.0).abs() < 1e-12);
        assert!((pr.offset - 5.0).abs() < 1e-12);
        let pr2 = pl.project(Point::new(12.0, 7.0));
        assert_eq!(pr2.piece, 1);
        assert!((pr2.dist - 2.0).abs() < 1e-12);
        assert!((pr2.offset - 17.0).abs() < 1e-12);
    }

    #[test]
    fn projection_at_corner() {
        let pr = l_shape().project(Point::new(12.0, -2.0));
        assert_eq!(pr.point, Point::new(10.0, 0.0));
        assert!((pr.offset - 10.0).abs() < 1e-12);
    }

    #[test]
    fn point_at_walks_arclength() {
        let pl = l_shape();
        assert_eq!(pl.point_at(0.0), Point::new(0.0, 0.0));
        assert_eq!(pl.point_at(5.0), Point::new(5.0, 0.0));
        assert_eq!(pl.point_at(10.0), Point::new(10.0, 0.0));
        assert_eq!(pl.point_at(15.0), Point::new(10.0, 5.0));
        assert_eq!(pl.point_at(20.0), Point::new(10.0, 10.0));
        // Clamping.
        assert_eq!(pl.point_at(-5.0), Point::new(0.0, 0.0));
        assert_eq!(pl.point_at(99.0), Point::new(10.0, 10.0));
    }

    #[test]
    fn resample_endpoints_and_spacing() {
        let pl = l_shape();
        let pts = pl.resample(5);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], pl.start());
        assert_eq!(pts[4], pl.end());
        assert_eq!(pts[2], Point::new(10.0, 0.0));
    }

    #[test]
    fn concat_drops_duplicate_joins() {
        let a = Polyline::straight(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        let b = Polyline::straight(Point::new(5.0, 0.0), Point::new(5.0, 5.0));
        let c = Polyline::concat([&a, &b]).unwrap();
        assert_eq!(c.vertices().len(), 3);
        assert!((c.length() - 10.0).abs() < 1e-12);
        assert!(Polyline::concat(std::iter::empty()).is_none());
    }

    #[test]
    fn reversal_preserves_length() {
        let pl = l_shape();
        let rv = pl.reversed();
        assert_eq!(rv.start(), pl.end());
        assert_eq!(rv.end(), pl.start());
        assert!((rv.length() - pl.length()).abs() < 1e-12);
    }

    #[test]
    fn simplify_drops_collinear_vertices() {
        let pl = Polyline::new(vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.01),
            Point::new(10.0, 0.0),
            Point::new(15.0, -0.01),
            Point::new(20.0, 0.0),
        ]);
        let s = pl.simplified(1.0);
        assert_eq!(s.vertices().len(), 2);
        assert_eq!(s.start(), pl.start());
        assert_eq!(s.end(), pl.end());
    }

    #[test]
    fn simplify_keeps_significant_corners() {
        let pl = l_shape();
        let s = pl.simplified(1.0);
        // The 90° corner deviates ~7 m from the chord; it must survive.
        assert_eq!(s.vertices().len(), 3);
        assert!((s.length() - pl.length()).abs() < 1e-9);
    }

    #[test]
    fn simplify_bounded_deviation() {
        // A jagged line: simplification at ε keeps the curve within ε.
        let pl = Polyline::new(
            (0..30)
                .map(|k| Point::new(k as f64 * 10.0, if k % 2 == 0 { 0.0 } else { 3.0 }))
                .collect(),
        );
        let s = pl.simplified(5.0);
        assert!(s.vertices().len() < pl.vertices().len());
        for &v in pl.vertices() {
            assert!(s.dist_to_point(v) <= 5.0 + 1e-9);
        }
        // Zero epsilon is the identity.
        assert_eq!(pl.simplified(0.0), pl);
    }

    #[test]
    fn bbox_covers_all_vertices() {
        let b = l_shape().bbox();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(10.0, 10.0));
    }
}
