//! Planar points in a local metric frame.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the local planar frame, in metres.
///
/// `Point` doubles as a 2-D vector type: subtraction of two points yields the
/// displacement vector, and the usual scalar operations are provided. This
/// mirrors how small geometry libraries (e.g. `geo-types`) treat coordinates
/// and keeps the hot kernels free of conversions.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Easting in metres.
    pub x: f64,
    /// Northing in metres.
    pub y: f64,
}

impl Point {
    /// Origin of the local frame.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from easting/northing metres.
    #[inline]
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` in metres.
    #[inline]
    #[must_use]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance; cheaper when only comparisons are needed.
    #[inline]
    #[must_use]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length (distance from the origin).
    #[inline]
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared vector length.
    #[inline]
    #[must_use]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other` interpreted as vectors.
    #[inline]
    #[must_use]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product with `other` (signed parallelogram area).
    #[inline]
    #[must_use]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    #[must_use]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    #[must_use]
    pub fn midpoint(&self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Unit vector pointing in the same direction, or `None` for the zero vector.
    #[must_use]
    pub fn normalized(&self) -> Option<Point> {
        let n = self.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(Point::new(self.x / n, self.y / n))
        }
    }

    /// Heading in radians in `(-π, π]`, measured counter-clockwise from +x.
    #[inline]
    #[must_use]
    pub fn heading(&self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.dist(b) - 5.0).abs() < 1e-12);
        assert!((a.dist_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-7.5, 2.0);
        let b = Point::new(11.0, -3.25);
        assert_eq!(a.dist(b), b.dist(a));
    }

    #[test]
    fn vector_algebra() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        assert!((a.dot(b) - 1.0).abs() < 1e-12);
        assert!((a.cross(b) + 7.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
    }

    #[test]
    fn normalized_zero_vector_is_none() {
        assert!(Point::ORIGIN.normalized().is_none());
        let u = Point::new(0.0, 5.0).normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!((u.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heading_quadrants() {
        assert!((Point::new(1.0, 0.0).heading() - 0.0).abs() < 1e-12);
        assert!((Point::new(0.0, 1.0).heading() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((Point::new(-1.0, 0.0).heading() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn non_finite_detected() {
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
        assert!(Point::new(1.0, 2.0).is_finite());
    }
}
