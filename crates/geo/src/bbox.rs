//! Axis-aligned bounding boxes.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding rectangle in the local planar frame (metres).
///
/// The canonical form has `min.x <= max.x` and `min.y <= max.y`; constructors
/// normalise their inputs. An *empty* box (see [`BBox::empty`]) is the
/// identity element of [`BBox::union`] and contains nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BBox {
    /// Builds a box from two opposite corners (in any order).
    #[must_use]
    pub fn new(a: Point, b: Point) -> Self {
        BBox {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// A degenerate box covering exactly one point.
    #[inline]
    #[must_use]
    pub fn from_point(p: Point) -> Self {
        BBox { min: p, max: p }
    }

    /// The empty box: union identity, intersects nothing, contains nothing.
    #[must_use]
    pub fn empty() -> Self {
        BBox {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// `true` if the box covers no area and no point.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Smallest box covering a set of points; empty for an empty iterator.
    #[must_use]
    pub fn covering<I: IntoIterator<Item = Point>>(points: I) -> Self {
        let mut b = BBox::empty();
        for p in points {
            b.expand_point(p);
        }
        b
    }

    /// Width (x-extent) in metres; zero for empty boxes.
    #[inline]
    #[must_use]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y-extent) in metres; zero for empty boxes.
    #[inline]
    #[must_use]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area in square metres.
    #[inline]
    #[must_use]
    pub fn area_m2(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (`width + height`), the classic R-tree "margin" measure.
    #[inline]
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre of the box; meaningless for empty boxes.
    #[inline]
    #[must_use]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Grows the box in place to cover `p`.
    #[inline]
    pub fn expand_point(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the box in place to cover `other`.
    #[inline]
    pub fn expand(&mut self, other: &BBox) {
        self.min.x = self.min.x.min(other.min.x);
        self.min.y = self.min.y.min(other.min.y);
        self.max.x = self.max.x.max(other.max.x);
        self.max.y = self.max.y.max(other.max.y);
    }

    /// Union of two boxes.
    #[inline]
    #[must_use]
    pub fn union(&self, other: &BBox) -> BBox {
        let mut b = *self;
        b.expand(other);
        b
    }

    /// Box inflated by `r` metres on every side.
    #[must_use]
    pub fn inflated(&self, r: f64) -> BBox {
        BBox {
            min: Point::new(self.min.x - r, self.min.y - r),
            max: Point::new(self.max.x + r, self.max.y + r),
        }
    }

    /// `true` if the boxes overlap (closed boxes: shared edges count).
    #[inline]
    #[must_use]
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// `true` if `p` lies inside or on the boundary.
    #[inline]
    #[must_use]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// `true` if `other` lies entirely inside `self`.
    #[inline]
    #[must_use]
    pub fn contains(&self, other: &BBox) -> bool {
        other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Area of overlap with `other` in square metres (zero when disjoint).
    #[must_use]
    pub fn intersection_area(&self, other: &BBox) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// Minimum distance from `p` to the box (zero when inside).
    ///
    /// This is the `MINDIST` bound used by best-first kNN search on R-trees.
    #[must_use]
    pub fn min_dist(&self, p: Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared minimum distance from `p` to the box.
    #[must_use]
    pub fn min_dist_sq(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }
}

impl Default for BBox {
    fn default() -> Self {
        BBox::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> BBox {
        BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    #[test]
    fn constructor_normalises_corners() {
        let b = BBox::new(Point::new(5.0, -1.0), Point::new(-2.0, 3.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 3.0));
    }

    #[test]
    fn empty_box_behaviour() {
        let e = BBox::empty();
        assert!(e.is_empty());
        assert_eq!(e.area_m2(), 0.0);
        assert!(!e.contains_point(Point::ORIGIN));
        assert!(!e.intersects(&unit()));
        // Union identity.
        assert_eq!(e.union(&unit()), unit());
    }

    #[test]
    fn covering_points() {
        let b = BBox::covering([
            Point::new(1.0, 5.0),
            Point::new(-3.0, 2.0),
            Point::new(0.0, 7.0),
        ]);
        assert_eq!(b.min, Point::new(-3.0, 2.0));
        assert_eq!(b.max, Point::new(1.0, 7.0));
    }

    #[test]
    fn intersects_shares_edge() {
        let a = unit();
        let b = BBox::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        let c = BBox::new(Point::new(1.01, 0.0), Point::new(2.0, 1.0));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn containment() {
        let big = BBox::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let small = BBox::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains_point(Point::new(10.0, 10.0)));
        assert!(!big.contains_point(Point::new(10.0, 10.01)));
    }

    #[test]
    fn min_dist_regions() {
        let b = unit();
        // Inside.
        assert_eq!(b.min_dist(Point::new(0.5, 0.5)), 0.0);
        // Beside (closest point is an edge).
        assert!((b.min_dist(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
        // Diagonal (closest point is a corner).
        assert!((b.min_dist(Point::new(2.0, 2.0)) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_cases() {
        let a = BBox::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = BBox::new(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        assert!((a.intersection_area(&b) - 4.0).abs() < 1e-12);
        let c = BBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn inflate_grows_all_sides() {
        let b = unit().inflated(2.0);
        assert_eq!(b.min, Point::new(-2.0, -2.0));
        assert_eq!(b.max, Point::new(3.0, 3.0));
    }

    #[test]
    fn margin_is_half_perimeter() {
        let b = BBox::new(Point::new(0.0, 0.0), Point::new(3.0, 4.0));
        assert!((b.margin() - 7.0).abs() < 1e-12);
    }
}
