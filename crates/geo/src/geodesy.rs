//! Geodetic helpers: haversine distance and a local tangent-plane projection.
//!
//! The rest of the workspace computes in planar metres. Real GPS feeds
//! (latitude/longitude) are converted once at the boundary using an
//! equirectangular projection around a reference latitude — accurate to well
//! under GPS noise (≈10 m) for city-scale extents (≲100 km).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 latitude/longitude pair in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl LatLon {
    /// Creates a latitude/longitude pair (degrees).
    #[must_use]
    pub const fn new(lat: f64, lon: f64) -> Self {
        LatLon { lat, lon }
    }
}

/// Great-circle distance between two lat/lon positions in metres (haversine).
#[must_use]
pub fn haversine_m(a: LatLon, b: LatLon) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// Equirectangular projection centred on an origin position.
///
/// `to_local` maps lat/lon to planar metres relative to the origin, with x
/// pointing east and y pointing north; `to_latlon` inverts it.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalProjection {
    origin: LatLon,
    /// Metres per degree of longitude at the origin latitude.
    m_per_deg_lon: f64,
    /// Metres per degree of latitude.
    m_per_deg_lat: f64,
}

impl LocalProjection {
    /// Builds a projection centred at `origin`.
    #[must_use]
    pub fn new(origin: LatLon) -> Self {
        let m_per_deg_lat = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
        let m_per_deg_lon = m_per_deg_lat * origin.lat.to_radians().cos();
        LocalProjection {
            origin,
            m_per_deg_lon,
            m_per_deg_lat,
        }
    }

    /// The projection origin.
    #[must_use]
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// Projects `pos` into the local planar frame (metres).
    #[must_use]
    pub fn to_local(&self, pos: LatLon) -> Point {
        Point::new(
            (pos.lon - self.origin.lon) * self.m_per_deg_lon,
            (pos.lat - self.origin.lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse projection back to lat/lon degrees.
    #[must_use]
    pub fn to_latlon(&self, p: Point) -> LatLon {
        LatLon {
            lat: self.origin.lat + p.y / self.m_per_deg_lat,
            lon: self.origin.lon + p.x / self.m_per_deg_lon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BEIJING: LatLon = LatLon::new(39.9042, 116.4074);

    #[test]
    fn haversine_known_distance() {
        // Beijing → Shanghai ≈ 1068 km.
        let shanghai = LatLon::new(31.2304, 121.4737);
        let d = haversine_m(BEIJING, shanghai);
        assert!((d - 1_068_000.0).abs() < 10_000.0, "got {d}");
    }

    #[test]
    fn haversine_zero_and_symmetry() {
        assert_eq!(haversine_m(BEIJING, BEIJING), 0.0);
        let other = LatLon::new(40.0, 116.5);
        assert!((haversine_m(BEIJING, other) - haversine_m(other, BEIJING)).abs() < 1e-9);
    }

    #[test]
    fn projection_roundtrip() {
        let proj = LocalProjection::new(BEIJING);
        let pos = LatLon::new(39.95, 116.50);
        let p = proj.to_local(pos);
        let back = proj.to_latlon(p);
        assert!((back.lat - pos.lat).abs() < 1e-12);
        assert!((back.lon - pos.lon).abs() < 1e-12);
    }

    #[test]
    fn projection_matches_haversine_at_city_scale() {
        let proj = LocalProjection::new(BEIJING);
        let pos = LatLon::new(39.98, 116.32); // ~11 km away
        let planar = proj.to_local(pos).norm();
        let true_d = haversine_m(BEIJING, pos);
        let rel_err = (planar - true_d).abs() / true_d;
        assert!(rel_err < 2e-3, "relative error {rel_err}");
    }

    #[test]
    fn origin_maps_to_zero() {
        let proj = LocalProjection::new(BEIJING);
        let p = proj.to_local(BEIJING);
        assert!(p.norm() < 1e-9);
    }
}
