//! Property-based tests for the geometry kernels.

use hris_geo::{BBox, Point, Polyline, SegmentGeom};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -50_000.0..50_000.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn dist_triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-6);
    }

    #[test]
    fn dist_symmetry_and_identity(a in point(), b in point()) {
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-9);
        prop_assert_eq!(a.dist(a), 0.0);
    }

    #[test]
    fn segment_projection_is_nearest(a in point(), b in point(), p in point(), t in 0.0..1.0f64) {
        let s = SegmentGeom::new(a, b);
        let d = s.dist_to_point(p);
        // No point on the segment is closer than the projection.
        let q = a.lerp(b, t);
        prop_assert!(d <= p.dist(q) + 1e-6);
    }

    #[test]
    fn segment_projection_within_endpoint_distance(a in point(), b in point(), p in point()) {
        let s = SegmentGeom::new(a, b);
        let d = s.dist_to_point(p);
        prop_assert!(d <= p.dist(a) + 1e-9);
        prop_assert!(d <= p.dist(b) + 1e-9);
    }

    #[test]
    fn bbox_union_contains_both(a in point(), b in point(), c in point(), d in point()) {
        let b1 = BBox::new(a, b);
        let b2 = BBox::new(c, d);
        let u = b1.union(&b2);
        prop_assert!(u.contains(&b1));
        prop_assert!(u.contains(&b2));
    }

    #[test]
    fn bbox_min_dist_lower_bounds_contents(a in point(), b in point(), p in point(), t in 0.0..1.0f64, u in 0.0..1.0f64) {
        let bb = BBox::new(a, b);
        // Any point inside the box is at least min_dist away from p.
        let inside = Point::new(
            bb.min.x + (bb.max.x - bb.min.x) * t,
            bb.min.y + (bb.max.y - bb.min.y) * u,
        );
        prop_assert!(bb.min_dist(p) <= p.dist(inside) + 1e-6);
    }

    #[test]
    fn polyline_point_at_roundtrips_offset(pts in prop::collection::vec(point(), 2..10), f in 0.0..1.0f64) {
        let pl = Polyline::new(pts);
        let len = pl.length();
        prop_assume!(len > 1.0);
        let offset = len * f;
        let p = pl.point_at(offset);
        let proj = pl.project(p);
        // Projecting a point that lies on the line gives ~zero distance.
        prop_assert!(proj.dist < 1e-6);
    }

    #[test]
    fn polyline_projection_beats_vertices(pts in prop::collection::vec(point(), 2..10), p in point()) {
        let pl = Polyline::new(pts.clone());
        let proj = pl.project(p);
        for v in &pts {
            prop_assert!(proj.dist <= p.dist(*v) + 1e-6);
        }
    }

    #[test]
    fn polyline_length_at_least_endpoint_distance(pts in prop::collection::vec(point(), 2..10)) {
        let pl = Polyline::new(pts);
        prop_assert!(pl.length() + 1e-6 >= pl.start().dist(pl.end()));
    }

    #[test]
    fn projection_roundtrip_is_exact(
        origin_lat in -60.0..60.0f64,
        origin_lon in -179.0..179.0f64,
        dlat in -0.3..0.3f64,
        dlon in -0.3..0.3f64,
    ) {
        use hris_geo::{LatLon, LocalProjection};
        let proj = LocalProjection::new(LatLon::new(origin_lat, origin_lon));
        let pos = LatLon::new(origin_lat + dlat, origin_lon + dlon);
        let back = proj.to_latlon(proj.to_local(pos));
        prop_assert!((back.lat - pos.lat).abs() < 1e-9);
        prop_assert!((back.lon - pos.lon).abs() < 1e-9);
    }

    #[test]
    fn haversine_metric_properties(
        lat1 in -80.0..80.0f64, lon1 in -179.0..179.0f64,
        lat2 in -80.0..80.0f64, lon2 in -179.0..179.0f64,
    ) {
        use hris_geo::{haversine_m, LatLon};
        let a = LatLon::new(lat1, lon1);
        let b = LatLon::new(lat2, lon2);
        let d = haversine_m(a, b);
        prop_assert!(d >= 0.0);
        prop_assert!((d - haversine_m(b, a)).abs() < 1e-6);
        // Bounded by half the Earth's circumference.
        prop_assert!(d <= std::f64::consts::PI * hris_geo::EARTH_RADIUS_M + 1.0);
        prop_assert!(haversine_m(a, a) < 1e-9);
    }

    #[test]
    fn frechet_bounds_mean_deviation(
        a in prop::collection::vec(point(), 2..8),
        b in prop::collection::vec(point(), 2..8),
    ) {
        use hris_geo::{discrete_frechet, mean_deviation};
        let pa = Polyline::new(a.clone());
        let pb = Polyline::new(b.clone());
        let n = 40;
        let f = discrete_frechet(&pa.resample(n), &pb.resample(n));
        let m = mean_deviation(&pa, &pb, n);
        // The mean symmetric deviation can never exceed the Fréchet leash
        // on the same sampling.
        prop_assert!(m <= f + 1e-6, "mean {m} > frechet {f}");
        prop_assert!(f.is_finite() && m.is_finite());
    }

    #[test]
    fn simplified_stays_within_epsilon(
        pts in prop::collection::vec(point(), 2..20),
        eps in 1.0..500.0f64,
    ) {
        let pl = Polyline::new(pts.clone());
        let s = pl.simplified(eps);
        prop_assert!(s.vertices().len() <= pl.vertices().len());
        prop_assert!(s.start().dist(pl.start()) < 1e-9);
        prop_assert!(s.end().dist(pl.end()) < 1e-9);
        for &v in pl.vertices() {
            prop_assert!(s.dist_to_point(v) <= eps + 1e-6);
        }
    }

    #[test]
    fn resample_preserves_endpoints(pts in prop::collection::vec(point(), 2..8), n in 2usize..20) {
        let pl = Polyline::new(pts);
        let rs = pl.resample(n);
        prop_assert_eq!(rs.len(), n);
        prop_assert!(rs[0].dist(pl.start()) < 1e-9);
        prop_assert!(rs[n - 1].dist(pl.end()) < 1e-9);
    }
}
