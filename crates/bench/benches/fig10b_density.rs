//! Figure 10b — TGI vs NNI running time as the reference-point density
//! varies (controlled through archive thinning).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hris::{Hris, HrisParams, LocalAlgorithm};
use hris_bench::{bench_scenario, resampled_queries};

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let queries = resampled_queries(&s, 180.0);
    let mut g = c.benchmark_group("fig10b_density");
    for frac_pct in [10u64, 30, 100] {
        let archive = s.thinned_archive(frac_pct as f64 / 100.0);
        for (name, algo) in [("tgi", LocalAlgorithm::Tgi), ("nni", LocalAlgorithm::Nni)] {
            let params = HrisParams {
                local_algorithm: algo,
                ..HrisParams::default()
            };
            let hris = Hris::new(&s.net, archive.clone(), params);
            g.bench_with_input(
                BenchmarkId::new(name, format!("{frac_pct}pct")),
                &hris,
                |b, hris| {
                    b.iter(|| {
                        for q in &queries {
                            black_box(hris.infer_routes(q, 2));
                        }
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
