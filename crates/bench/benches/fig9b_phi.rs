//! Figure 9b — HRIS per-query running time as the reference search radius
//! `φ` grows (more references pulled into local inference).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hris::{Hris, HrisParams};
use hris_bench::{bench_scenario, resampled_queries};

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let queries = resampled_queries(&s, 180.0);
    let mut g = c.benchmark_group("fig9b_phi");
    for phi in [100.0f64, 300.0, 500.0, 700.0, 900.0] {
        let params = HrisParams {
            phi_m: phi,
            ..HrisParams::default()
        };
        let hris = Hris::new(&s.net, s.archive.clone(), params);
        g.bench_with_input(BenchmarkId::from_parameter(phi as u64), &hris, |b, hris| {
            b.iter(|| {
                for q in &queries {
                    black_box(hris.infer_routes(q, 2));
                }
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
