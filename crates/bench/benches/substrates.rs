//! Micro-benchmarks of the substrate data structures: R-tree build/query,
//! road-network shortest paths, Yen's KSP, archive range queries.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hris_geo::Point;
use hris_roadnet::shortest::{k_shortest_routes, shortest_path};
use hris_roadnet::{generator, CostModel, NetworkConfig, NodeId};
use hris_rtree::RTree;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..10_000.0), rng.gen_range(0.0..10_000.0)))
        .collect()
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    for n in [1_000usize, 10_000, 100_000] {
        let pts = random_points(n, 1);
        g.bench_with_input(BenchmarkId::new("bulk_load", n), &pts, |b, pts| {
            b.iter(|| RTree::bulk_load(black_box(pts.clone())));
        });
        let tree = RTree::bulk_load(pts);
        g.bench_with_input(BenchmarkId::new("circle_500m", n), &tree, |b, tree| {
            b.iter(|| {
                tree.query_circle(black_box(Point::new(5_000.0, 5_000.0)), 500.0, |p, q| {
                    p.dist(q)
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("knn_10", n), &tree, |b, tree| {
            b.iter(|| {
                tree.nearest(black_box(Point::new(5_000.0, 5_000.0)), 10, |p, q| {
                    p.dist(q)
                })
            });
        });
    }
    g.finish();
}

fn bench_roadnet(c: &mut Criterion) {
    let net = generator::generate(&NetworkConfig {
        blocks_x: 32,
        blocks_y: 32,
        ..NetworkConfig::default()
    });
    let n = net.num_nodes() as u32;
    let mut g = c.benchmark_group("roadnet");
    g.bench_function("dijkstra_cross_city", |b| {
        b.iter(|| {
            shortest_path(
                black_box(&net),
                NodeId(0),
                NodeId(n - 1),
                CostModel::Distance,
            )
        });
    });
    g.bench_function("yen_k4_cross_city", |b| {
        b.iter(|| {
            k_shortest_routes(
                black_box(&net),
                NodeId(0),
                NodeId(n - 1),
                4,
                CostModel::Time,
            )
        });
    });
    g.bench_function("candidate_edges_60m", |b| {
        b.iter(|| net.candidate_edges(black_box(Point::new(4_000.0, 4_000.0)), 60.0));
    });
    g.bench_function("lambda_neighborhood_4", |b| {
        let seg = net.segments()[net.num_segments() / 2].id;
        b.iter(|| net.lambda_neighborhood(black_box(seg), 4));
    });
    g.finish();
}

fn bench_archive(c: &mut Criterion) {
    let s = hris_bench::bench_scenario();
    let mut g = c.benchmark_group("archive");
    let center = s.net.bbox().center();
    g.bench_function("points_within_500m", |b| {
        b.iter(|| s.archive.points_within(black_box(center), 500.0));
    });
    g.bench_function("binary_roundtrip", |b| {
        b.iter(|| {
            let blob = s.archive.to_bytes();
            hris_traj::TrajectoryArchive::from_bytes(black_box(blob)).unwrap()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rtree, bench_roadnet, bench_archive
}
criterion_main!(benches);
