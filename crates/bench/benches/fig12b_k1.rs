//! Figure 12b — TGI running time vs `k₁` (the K of Yen's search on the
//! traverse graph), with and without graph reduction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hris::{Hris, HrisParams, LocalAlgorithm};
use hris_bench::{bench_scenario, resampled_queries};

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let queries = resampled_queries(&s, 180.0);
    let mut g = c.benchmark_group("fig12b_k1");
    for k1 in [2usize, 6, 10] {
        for (name, reduce) in [("reduced", true), ("unreduced", false)] {
            let params = HrisParams {
                local_algorithm: LocalAlgorithm::Tgi,
                k1,
                tgi_use_reduction: reduce,
                ..HrisParams::default()
            };
            let hris = Hris::new(&s.net, s.archive.clone(), params);
            g.bench_with_input(BenchmarkId::new(name, k1), &hris, |b, hris| {
                b.iter(|| {
                    for q in &queries {
                        black_box(hris.infer_routes(q, 2));
                    }
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
