//! End-to-end query throughput of the three execution modes of the
//! `QueryEngine` — sequential (plain `Hris` semantics), pair-parallel, and
//! batch fan-out with shared caches — over the standard bench scenario.
//!
//! Besides the criterion timings, the bench measures queries/sec for each
//! mode directly (checking along the way that every mode returns results
//! identical to sequential `Hris`) and writes the numbers to
//! `BENCH_e2e.json` at the workspace root so the baseline is versioned. Two
//! further measured modes isolate the instrumentation cost: `batch_observed`
//! is the batch engine with metrics + tracing on but span capture off, and
//! `batch_spans` adds the default 1-in-16 span sampling — their qps against
//! plain `batch` bound the observability and span overheads respectively,
//! and the observed engine's phase histograms are reported as a per-query
//! breakdown.
//!
//! An `ingest_throughput` section measures the live path: the back half of
//! the archive streams through an [`ArchiveWriter`] (publishing an epoch per
//! chunk) while a live [`EngineHandle`] serves query batches concurrently.
//!
//! A `sharded` section routes a partition-respecting workload through a 2×2
//! [`ShardedEngine`] — after checking every answer byte-identical to the
//! single-shard engine — and records per-shard qps, the scatter fan-out
//! ratio and the seam splice count.
//!
//! A `capacity` section (PR-8) measures the columnar snapshot's storage
//! diet on a city-scale archive and the admission-controlled soak numbers.

// The vendored `serde_json::json!` recurses once per key; the capacity
// report pushes the default limit.
#![recursion_limit = "256"]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hris::prelude::*;
use hris_bench::{bench_scenario, resampled_queries};
use hris_router::{RouteKind, ShardPlan, ShardedEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const K: usize = 2;

fn assert_identical(label: &str, got: &[Vec<ScoredRoute>], want: &[Vec<ScoredRoute>]) {
    assert_eq!(got.len(), want.len(), "{label}: query count");
    for (qi, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{label}: top-K size of query {qi}");
        for (a, b) in g.iter().zip(w) {
            assert!(
                a.route == b.route && a.log_score == b.log_score,
                "{label}: query {qi} diverged from sequential output"
            );
        }
    }
}

/// Wall-clock queries/sec of `run` over `rounds` repetitions of the workload.
fn qps<F: FnMut() -> Vec<Vec<ScoredRoute>>>(n_queries: usize, rounds: usize, mut run: F) -> f64 {
    let _ = run(); // warm-up (also warms the engine caches where present)
    let t0 = Instant::now();
    for _ in 0..rounds {
        black_box(run());
    }
    (n_queries * rounds) as f64 / t0.elapsed().as_secs_f64()
}

/// Per-round queries/sec samples of `run` (one warm-up, then `rounds` timed
/// rounds of `reps` workload repetitions each). The per-round spread bounds
/// the measurement noise, which the overhead comparisons carry as a ±.
fn qps_samples<F: FnMut() -> Vec<Vec<ScoredRoute>>>(
    n_queries: usize,
    rounds: usize,
    reps: usize,
    mut run: F,
) -> Vec<f64> {
    let _ = run(); // warm-up (also warms the engine caches where present)
    (0..rounds)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                black_box(run());
            }
            (n_queries * reps) as f64 / t0.elapsed().as_secs_f64()
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

fn half_range(xs: &[f64]) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if lo <= hi {
        (hi - lo) / 2.0
    } else {
        0.0
    }
}

/// Overhead `1 − mean(a)/mean(b)` with a ± bound propagated from each
/// side's per-round half-range. An overhead whose magnitude is inside the
/// bound is indistinguishable from zero on this host.
fn overhead_with_noise(a: &[f64], b: &[f64]) -> (f64, f64) {
    let (ma, mb) = (mean(a), mean(b));
    let ratio = ma / mb;
    let noise = ratio * (half_range(a) / ma + half_range(b) / mb);
    (1.0 - ratio, noise)
}

/// Numbers from the ingest-while-querying run.
struct IngestNumbers {
    trajectories_per_sec: f64,
    points_per_sec: f64,
    epochs_published: usize,
    concurrent_batch_qps: f64,
}

/// Streams the back half of the archive through an [`ArchiveWriter`] (one
/// publish per chunk) while a live [`EngineHandle`] answers query batches
/// on another thread, and measures both sides' throughput.
fn measure_ingest(
    s: &hris_eval::scenario::Scenario,
    queries: &[hris_traj::Trajectory],
) -> IngestNumbers {
    const CHUNK: usize = 25;
    let (seed_archive, stream) = s.ingestion_split(0.5);
    let mut writer = ArchiveWriter::new(seed_archive);
    let live = Arc::new(EngineHandle::live(
        Arc::new(s.net.clone()),
        writer.reader(),
        HrisParams::default(),
        EngineConfig::default(),
    ));

    let stop = Arc::new(AtomicBool::new(false));
    let query_thread = {
        let live = Arc::clone(&live);
        let stop = Arc::clone(&stop);
        let queries = queries.to_vec();
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut answered = 0usize;
            while !stop.load(Ordering::Acquire) || answered == 0 {
                answered += black_box(live.infer_batch(&queries, K)).len();
            }
            answered as f64 / t0.elapsed().as_secs_f64()
        })
    };

    let stream_points: usize = stream.iter().map(|t| t.len()).sum();
    let t0 = Instant::now();
    let mut epochs = 0usize;
    for chunk in stream.chunks(CHUNK) {
        writer.append_batch(chunk.to_vec());
        writer.publish();
        epochs += 1;
    }
    let ingest_s = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    let concurrent_batch_qps = query_thread.join().expect("query thread");

    // The stream is clean simulator output: nothing may be quarantined, and
    // the final epoch must hold the whole archive.
    assert_eq!(writer.report().trajectories_quarantined, 0);
    let last = writer.snapshot();
    assert_eq!(last.num_trajectories(), s.archive.num_trajectories());

    IngestNumbers {
        trajectories_per_sec: stream.len() as f64 / ingest_s,
        points_per_sec: stream_points as f64 / ingest_s,
        epochs_published: epochs,
        concurrent_batch_qps,
    }
}

/// Numbers from the sharded scatter-gather run.
struct ShardedNumbers {
    grid: (usize, usize),
    margin_m: f64,
    replication_factor: f64,
    per_shard_qps: Vec<f64>,
    sharded_qps: f64,
    fan_out_ratio: f64,
    scatter_queries: usize,
    splices_total: usize,
    workload_queries: usize,
}

/// A deterministic `n`-point walk starting at `(x, y)` with per-hop step
/// `(dx, dy)` and a small seeded wobble — no RNG state to thread around.
fn walk(id: u32, x: f64, y: f64, dx: f64, dy: f64, n: usize, seed: u64) -> hris_traj::Trajectory {
    use hris_traj::{GpsPoint, TrajId};
    hris_traj::Trajectory::new(
        TrajId(id),
        (0..n)
            .map(|i| {
                let h = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64 * 0x2545_F491_4F6C_DD1D);
                let wob = ((h >> 33) % 200) as f64 - 100.0;
                GpsPoint::new(
                    hris_geo::Point::new(x + i as f64 * dx + wob, y + i as f64 * dy - wob * 0.5),
                    i as f64 * 120.0,
                )
            })
            .collect(),
    )
}

/// Routes a partition-respecting workload (in-core walks per shard plus
/// seam-straddling walks within the margin slack) through a 2×2
/// [`ShardedEngine`], proves every answer byte-identical to the single-shard
/// engine, and measures throughput and fan-out.
fn measure_sharded(s: &hris_eval::scenario::Scenario, rounds: usize) -> ShardedNumbers {
    let net = Arc::new(s.net.clone());
    let phi = HrisParams::default().phi_m;
    // φ + 900 m of slack: seam pairs stepping ≤ 900 m stay
    // partition-respecting, so even scattered answers are byte-identical.
    let plan = ShardPlan::grid(&net, 2, 2, phi + 900.0);
    let num_shards = plan.num_shards();
    let sharded = ShardedEngine::build(
        Arc::clone(&net),
        &s.archive,
        HrisParams::default(),
        EngineConfig::default(),
        plan,
    );
    let single = EngineHandle::new(Arc::clone(&net), s.archive.clone(), HrisParams::default());

    // Six walks per shard clustered around the core center — far enough
    // from every seam that the φ-bbox fits only the home region, so the
    // router must delegate to that shard — plus six seam walks crossing the
    // vertical seam in 700 m steps.
    let mut per_shard: Vec<Vec<hris_traj::Trajectory>> = Vec::new();
    for sh in 0..num_shards {
        let c = sharded.plan().core(sh);
        per_shard.push(
            (0..6u32)
                .map(|q| {
                    walk(
                        q,
                        c.center().x - 400.0 + q as f64 * 120.0,
                        c.center().y - 300.0 + q as f64 * 100.0,
                        90.0,
                        70.0,
                        5,
                        sh as u64 * 101 + q as u64,
                    )
                })
                .collect(),
        );
    }
    let seam_x = sharded.plan().core(0).max.x;
    let seam: Vec<hris_traj::Trajectory> = (0..6u32)
        .map(|q| {
            let cy = sharded.plan().core(0).center().y + q as f64 * 250.0;
            walk(
                100 + q,
                seam_x - 1_050.0,
                cy,
                700.0,
                40.0,
                4,
                900 + q as u64,
            )
        })
        .collect();

    // Correctness gate before any timing: the sharded engine must reproduce
    // the single-shard engine byte-for-byte on this workload, and the
    // routing must be what the workload was built to exercise.
    let mut dispatches = 0usize;
    let mut scatter_queries = 0usize;
    let mut splices_total = 0usize;
    let mut check = |q: &hris_traj::Trajectory, want_single: Option<usize>| {
        let (got, trace) = sharded.infer_query_traced(q, K);
        let want = single.infer_query(q, K);
        assert_eq!(got.outcome, want.outcome, "sharded outcome parity");
        assert_eq!(got.globals.len(), want.globals.len());
        for (a, b) in got.globals.iter().zip(&want.globals) {
            assert!(
                a.route == b.route && a.log_score.to_bits() == b.log_score.to_bits(),
                "sharded answer diverged from single-shard"
            );
        }
        match trace.kind {
            RouteKind::Single(sh) => {
                if let Some(w) = want_single {
                    assert_eq!(sh, w, "in-core query routed to its own shard");
                }
                dispatches += 1;
            }
            RouteKind::Scatter => {
                let touched: std::collections::HashSet<usize> =
                    trace.pair_shards.iter().copied().collect();
                dispatches += touched.len();
                scatter_queries += 1;
                splices_total += trace.splice_points.len();
            }
            RouteKind::Rejected => panic!("bench workload must not be rejected"),
        }
    };
    for (sh, qs) in per_shard.iter().enumerate() {
        for q in qs {
            check(q, Some(sh));
        }
    }
    for q in &seam {
        check(q, None);
    }
    assert!(scatter_queries > 0, "seam workload must scatter");

    let workload_queries = per_shard.iter().map(Vec::len).sum::<usize>() + seam.len();
    let per_shard_qps: Vec<f64> = per_shard
        .iter()
        .map(|qs| {
            qps(qs.len(), rounds, || {
                qs.iter()
                    .map(|q| {
                        let r = sharded.infer_query(q, K);
                        r.globals
                            .into_iter()
                            .map(|g| ScoredRoute {
                                route: g.route,
                                log_score: g.log_score,
                            })
                            .collect()
                    })
                    .collect()
            })
        })
        .collect();
    let all: Vec<&hris_traj::Trajectory> = per_shard.iter().flatten().chain(seam.iter()).collect();
    let sharded_qps = qps(all.len(), rounds, || {
        all.iter()
            .map(|q| {
                let r = sharded.infer_query(q, K);
                r.globals
                    .into_iter()
                    .map(|g| ScoredRoute {
                        route: g.route,
                        log_score: g.log_score,
                    })
                    .collect()
            })
            .collect()
    });

    ShardedNumbers {
        grid: sharded.plan().grid_dims(),
        margin_m: sharded.plan().margin_m(),
        replication_factor: sharded.replication_factor(),
        per_shard_qps,
        sharded_qps,
        fan_out_ratio: dispatches as f64 / workload_queries as f64,
        scatter_queries,
        splices_total,
        workload_queries,
    }
}

/// Numbers from the storage-diet + soak capacity run.
struct CapacityNumbers {
    trips: usize,
    points: usize,
    materialized_bytes: usize,
    flat_bytes: usize,
    columnar_bytes: usize,
    encode_s: f64,
    decode_s: f64,
    soak: hris_eval::SoakReport,
}

/// Measures the columnar snapshot's storage diet on a city-scale synthetic
/// archive (10× the bench fleet, coordinates quantized to mm and
/// timestamps to ms — the precision GPS hardware actually delivers, and
/// what lets the FIXED column path engage), proves the decode
/// bit-identical, then runs a short warm → overload → recover soak against
/// a gated live handle for the shed-accounting numbers.
fn measure_capacity(
    s: &hris_eval::scenario::Scenario,
    queries: &[hris_traj::Trajectory],
) -> CapacityNumbers {
    use hris_traj::{encode_snapshot, ColumnarSnapshot, SimConfig, Simulator};

    let mut sim = Simulator::new(
        &s.net,
        SimConfig {
            num_trips: 8_000,
            num_od_patterns: 60,
            min_trip_dist_m: 2_000.0,
            seed: 4_242,
            ..SimConfig::default()
        },
    );
    let (raw, _) = sim.generate_archive();
    let trips: Vec<hris_traj::Trajectory> = raw
        .trajectories()
        .iter()
        .map(|t| {
            let q = |v: f64| (v * 1_000.0).round() / 1_000.0;
            hris_traj::Trajectory::new(
                t.id,
                t.points
                    .iter()
                    .map(|p| {
                        hris_traj::GpsPoint::new(
                            hris_geo::Point::new(q(p.pos.x), q(p.pos.y)),
                            q(p.t),
                        )
                    })
                    .collect(),
            )
        })
        .collect();
    let archive = TrajectoryArchive::new(trips);

    let materialized_bytes = archive.memory_footprint();
    let flat_bytes = archive.to_bytes().len();
    let t0 = Instant::now();
    let blob = encode_snapshot(&archive, 1);
    let encode_s = t0.elapsed().as_secs_f64();
    let columnar_bytes = blob.len();
    let t0 = Instant::now();
    let decoded = ColumnarSnapshot::open(blob)
        .expect("open capacity snapshot")
        .decode_archive()
        .expect("decode capacity snapshot");
    let decode_s = t0.elapsed().as_secs_f64();

    // Correctness gate before the numbers count: bit-identical decode.
    assert_eq!(decoded.num_trajectories(), archive.num_trajectories());
    assert_eq!(decoded.num_points(), archive.num_points());
    for (a, b) in decoded.trajectories().iter().zip(archive.trajectories()) {
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert!(
                pa.t.to_bits() == pb.t.to_bits()
                    && pa.pos.x.to_bits() == pb.pos.x.to_bits()
                    && pa.pos.y.to_bits() == pb.pos.y.to_bits(),
                "columnar decode diverged from the source archive"
            );
        }
    }
    assert!(
        materialized_bytes as f64 / columnar_bytes as f64 >= 2.0,
        "columnar snapshot must at least halve resident archive bytes: \
         {materialized_bytes} materialized vs {columnar_bytes} columnar"
    );

    // Replay soak against the bench scenario's engine with a small gate.
    let cfg = EngineConfig::builder()
        .observability(true)
        .admission(2, 8)
        .build()
        .expect("static engine configuration");
    let handle = Arc::new(EngineHandle::with_config(
        Arc::new(s.net.clone()),
        s.archive.clone(),
        HrisParams::default(),
        cfg,
    ));
    let soak = hris_eval::run_soak(
        &handle,
        queries,
        &hris_eval::SoakConfig {
            warm_qps: 10.0,
            warm_s: 0.5,
            overload_qps: 500.0,
            overload_s: 1.5,
            recover_timeout_s: 15.0,
            k: K,
        },
    );
    assert!(soak.overload.shed > 0, "overload burst must shed");
    assert!(
        soak.queued_high_watermark <= soak.max_queued,
        "waiting room exceeded its bound"
    );

    CapacityNumbers {
        trips: archive.num_trajectories(),
        points: archive.num_points(),
        materialized_bytes,
        flat_bytes,
        columnar_bytes,
        encode_s,
        decode_s,
        soak,
    }
}

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let queries = resampled_queries(&s, 180.0);
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());

    // Ground truth: the plain sequential pipeline.
    let baseline: Vec<Vec<ScoredRoute>> = queries.iter().map(|q| hris.infer_routes(q, K)).collect();

    let sequential = QueryEngine::with_config(&hris, EngineConfig::sequential());
    let pair_parallel = QueryEngine::with_config(
        &hris,
        EngineConfig {
            batch_parallel: false,
            ..EngineConfig::default()
        },
    );
    let batch = QueryEngine::new(&hris);
    // Two instrumented engines: `observed` is metrics + tracing with span
    // capture switched off (the cheap steady-state config), `spans` adds the
    // default 1-in-16 span sampling on top so the delta isolates span cost.
    let observed = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .observability(true)
            .span_sampling(0)
            .build()
            .expect("static engine configuration"),
    );
    let spans = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .observability(true)
            .build()
            .expect("static engine configuration"),
    );

    let run_seq = || -> Vec<Vec<ScoredRoute>> {
        queries
            .iter()
            .map(|q| sequential.infer_routes(q, K))
            .collect()
    };
    let run_pair = || -> Vec<Vec<ScoredRoute>> {
        queries
            .iter()
            .map(|q| pair_parallel.infer_routes(q, K))
            .collect()
    };
    let run_batch = || -> Vec<Vec<ScoredRoute>> { batch.infer_batch(&queries, K) };
    let run_observed = || -> Vec<Vec<ScoredRoute>> { observed.infer_batch(&queries, K) };
    let run_spans = || -> Vec<Vec<ScoredRoute>> { spans.infer_batch(&queries, K) };

    // Correctness gate before any timing: every mode — instrumented or not —
    // must reproduce the sequential pipeline byte-for-byte.
    assert_identical("sequential engine", &run_seq(), &baseline);
    assert_identical("pair-parallel engine", &run_pair(), &baseline);
    assert_identical("batch engine", &run_batch(), &baseline);
    assert_identical("observed batch engine", &run_observed(), &baseline);
    assert_identical("span-sampling batch engine", &run_spans(), &baseline);

    let rounds = 3;
    let qps_seq = qps(queries.len(), rounds, run_seq);
    let qps_pair = qps(queries.len(), rounds, run_pair);
    // The instrumentation overheads are far smaller than the 3-round sweep's
    // round-to-round noise (a 4-query round is ~15 ms; the old numbers even
    // went negative). The three compared modes get 10 rounds of 5 workload
    // repetitions each, and every overhead carries the propagated per-round
    // spread as a ± bound.
    let (oh_rounds, oh_reps) = (10, 25);
    let batch_samples = qps_samples(queries.len(), oh_rounds, oh_reps, run_batch);
    let observed_samples = qps_samples(queries.len(), oh_rounds, oh_reps, run_observed);
    let spans_samples = qps_samples(queries.len(), oh_rounds, oh_reps, run_spans);
    let qps_batch = mean(&batch_samples);
    let qps_observed = mean(&observed_samples);
    let qps_spans = mean(&spans_samples);
    let (obs_overhead, obs_noise) = overhead_with_noise(&observed_samples, &batch_samples);
    let (span_overhead, span_noise) = overhead_with_noise(&spans_samples, &batch_samples);

    // Per-phase seconds per query, from the observed engine's histograms.
    let obs_snapshot = observed
        .observability()
        .expect("observed engine")
        .snapshot();
    let obs_queries = obs_snapshot
        .counter("hris_engine_queries_total")
        .unwrap_or(0)
        .max(1) as f64;
    let phase_breakdown: Vec<(&str, f64)> = ["candidates", "local", "global", "refine"]
        .iter()
        .map(|phase| {
            let sum = obs_snapshot
                .histogram_sum("hris_engine_phase_seconds", &[("phase", phase)])
                .unwrap_or(0.0);
            (*phase, sum / obs_queries)
        })
        .collect();

    // Learned re-ranking: off is the default (already proven byte-identical
    // to sequential `Hris` above — re-ranking never ran); on pays feature
    // extraction + model scoring per candidate, and may only permute each
    // query's top-K.
    let rr_cfg = hris_eval::TrainConfig {
        interval_s: 180.0,
        max_trips: 40,
        ..hris_eval::TrainConfig::default()
    };
    let rr_pairs = hris_eval::training_pairs(&s, &HrisParams::default(), &rr_cfg);
    let rr_model = hris::train_logistic(&rr_pairs, &rr_cfg.sgd);
    let rerank_engine = QueryEngine::with_config(
        &hris,
        EngineConfig::builder()
            .rerank(rr_model)
            .build()
            .expect("static engine configuration"),
    );
    let run_rerank = || -> Vec<Vec<ScoredRoute>> { rerank_engine.infer_batch(&queries, K) };
    let rerank_results = run_rerank();
    let mut rerank_reordered = 0usize;
    for (qi, (g, w)) in rerank_results.iter().zip(&baseline).enumerate() {
        let key = |r: &ScoredRoute| (r.route.segments().to_vec(), r.log_score.to_bits());
        let mut a: Vec<_> = g.iter().map(key).collect();
        let mut b: Vec<_> = w.iter().map(key).collect();
        if a != b {
            rerank_reordered += 1;
        }
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "rerank must permute query {qi}'s top-K, not rescore it"
        );
    }
    let rerank_samples = qps_samples(queries.len(), oh_rounds, oh_reps, run_rerank);
    let qps_rerank_on = mean(&rerank_samples);
    let (rerank_overhead, rerank_noise) = overhead_with_noise(&rerank_samples, &batch_samples);

    let ingest = measure_ingest(&s, &queries);
    let sharded = measure_sharded(&s, rounds);
    let capacity = measure_capacity(&s, &queries);

    // Shortest-path-oracle economics: one-off preprocessing cost, cache
    // behaviour over the run, and the sequential qps movement against the
    // recorded PR-5 baseline (the pre-oracle hot path on this workload).
    const QPS_SEQUENTIAL_PR5: f64 = 70.261_814_197_632_66;
    let oracle = s.net.sp_oracle();

    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let report = serde_json::json!({
        "bench": "e2e_throughput",
        "scenario": {
            "queries": queries.len(),
            "interval_s": 180.0,
            "k": K,
            "rounds": rounds,
            "overhead_rounds": oh_rounds,
            "overhead_reps": oh_reps,
        },
        "threads": threads,
        "queries_per_sec": {
            "sequential": qps_seq,
            "pair_parallel": qps_pair,
            "batch": qps_batch,
            "batch_observed": qps_observed,
            "batch_spans": qps_spans,
        },
        "speedup_over_sequential": {
            "pair_parallel": qps_pair / qps_seq,
            "batch": qps_batch / qps_seq,
        },
        "observability_overhead": obs_overhead,
        "observability_overhead_noise": obs_noise,
        "span_overhead": span_overhead,
        "span_overhead_noise": span_noise,
        "ingest_throughput": {
            "trajectories_per_sec": ingest.trajectories_per_sec,
            "points_per_sec": ingest.points_per_sec,
            "epochs_published": ingest.epochs_published,
            "concurrent_batch_qps": ingest.concurrent_batch_qps,
        },
        "phase_seconds_per_query": {
            "candidates": phase_breakdown[0].1,
            "local": phase_breakdown[1].1,
            "global": phase_breakdown[2].1,
            "refine": phase_breakdown[3].1,
        },
        "oracle": {
            "preprocessing_s": oracle.preprocessing_seconds(),
            "spt_hits": oracle.hits(),
            "spt_misses": oracle.misses(),
            "cached_trees": oracle.cached_trees(),
            "qps_sequential_before": QPS_SEQUENTIAL_PR5,
            "qps_sequential_after": qps_seq,
            "sequential_speedup": qps_seq / QPS_SEQUENTIAL_PR5,
        },
        "outputs_identical_to_sequential": true,
        "rerank": {
            "train_pairs": rr_pairs.len(),
            "qps_off": qps_batch,
            "qps_on": qps_rerank_on,
            "overhead": rerank_overhead,
            "overhead_noise": rerank_noise,
            "queries_reordered": rerank_reordered,
            "outputs_identical_when_off": true,
            "on_is_permutation_of_off": true,
        },
        "sharded": {
            "grid": format!("{}x{}", sharded.grid.0, sharded.grid.1),
            "margin_m": sharded.margin_m,
            "replication_factor": sharded.replication_factor,
            "workload_queries": sharded.workload_queries,
            "per_shard_qps": sharded.per_shard_qps,
            "sharded_qps": sharded.sharded_qps,
            "fan_out_ratio": sharded.fan_out_ratio,
            "scatter_queries": sharded.scatter_queries,
            "splices_total": sharded.splices_total,
            "outputs_identical_to_single_shard": true,
        },
        "capacity": {
            "archive": {
                "trips": capacity.trips,
                "points": capacity.points,
            },
            "storage": {
                "materialized_bytes": capacity.materialized_bytes,
                "flat_bytes": capacity.flat_bytes,
                "columnar_bytes": capacity.columnar_bytes,
                "reduction_vs_materialized":
                    capacity.materialized_bytes as f64 / capacity.columnar_bytes as f64,
                "reduction_vs_flat":
                    capacity.flat_bytes as f64 / capacity.columnar_bytes as f64,
                "columnar_bytes_per_point":
                    capacity.columnar_bytes as f64 / capacity.points as f64,
                "encode_s": capacity.encode_s,
                "decode_s": capacity.decode_s,
                "decode_byte_identical": true,
            },
            "soak": {
                "warm_qps_offered": capacity.soak.warm.achieved_qps,
                "warm_shed": capacity.soak.warm.shed,
                "overload_offered": capacity.soak.overload.offered,
                "overload_shed": capacity.soak.overload.shed,
                "overload_shed_rate": capacity.soak.overload.shed_rate(),
                "shed_total": capacity.soak.shed_total,
                "queued_high_watermark": capacity.soak.queued_high_watermark,
                "max_queued": capacity.soak.max_queued,
                "saw_unhealthy_under_overload": capacity.soak.saw_unhealthy_under_overload,
                "recovery_s": capacity.soak.recovery_s,
                "resident_growth_bytes": capacity.soak.resident_growth_bytes(),
            },
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e2e.json");
    std::fs::write(path, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .expect("write BENCH_e2e.json");
    println!(
        "e2e qps ({threads} thread(s)): sequential {qps_seq:.2}, \
         pair-parallel {qps_pair:.2}, batch {qps_batch:.2}, \
         batch+obs {qps_observed:.2} ({:.2}% ± {:.2}% overhead), \
         batch+spans {qps_spans:.2} ({:.2}% ± {:.2}% overhead)",
        100.0 * obs_overhead,
        100.0 * obs_noise,
        100.0 * span_overhead,
        100.0 * span_noise
    );
    println!(
        "rerank: {:.2} qps on vs {:.2} qps off ({:.2}% ± {:.2}% overhead), \
         {} pairs trained, {}/{} queries reordered",
        qps_rerank_on,
        qps_batch,
        100.0 * rerank_overhead,
        100.0 * rerank_noise,
        rr_pairs.len(),
        rerank_reordered,
        queries.len()
    );
    print!("phase seconds/query:");
    for (phase, s) in &phase_breakdown {
        print!(" {phase} {s:.5}");
    }
    println!();
    println!(
        "ingest: {:.1} traj/s ({:.0} points/s) over {} epochs, \
         {:.2} qps served concurrently",
        ingest.trajectories_per_sec,
        ingest.points_per_sec,
        ingest.epochs_published,
        ingest.concurrent_batch_qps
    );
    println!(
        "sharded {}x{} (margin {:.0} m, replication {:.2}x): {:.2} qps, \
         fan-out {:.2}, {} scatter queries / {} splices, per-shard {:?}",
        sharded.grid.0,
        sharded.grid.1,
        sharded.margin_m,
        sharded.replication_factor,
        sharded.sharded_qps,
        sharded.fan_out_ratio,
        sharded.scatter_queries,
        sharded.splices_total,
        sharded
            .per_shard_qps
            .iter()
            .map(|q| (q * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    println!(
        "capacity: {} trips / {} points; {:.1} MiB materialized -> {:.1} MiB columnar \
         ({:.2}x; flat {:.2}x), {:.3} B/point; soak shed {}/{} ({:.0}%), \
         watermark {}/{}, recovery {:?}s",
        capacity.trips,
        capacity.points,
        capacity.materialized_bytes as f64 / (1024.0 * 1024.0),
        capacity.columnar_bytes as f64 / (1024.0 * 1024.0),
        capacity.materialized_bytes as f64 / capacity.columnar_bytes as f64,
        capacity.flat_bytes as f64 / capacity.columnar_bytes as f64,
        capacity.columnar_bytes as f64 / capacity.points as f64,
        capacity.soak.overload.shed,
        capacity.soak.overload.offered,
        100.0 * capacity.soak.overload.shed_rate(),
        capacity.soak.queued_high_watermark,
        capacity.soak.max_queued,
        capacity.soak.recovery_s,
    );

    let mut g = c.benchmark_group("e2e_throughput");
    g.sample_size(10);
    for (name, mode) in [
        ("sequential", ExecMode::Sequential),
        ("pair_parallel", ExecMode::PairParallel),
    ] {
        let engine = QueryEngine::with_config(
            &hris,
            EngineConfig {
                mode,
                batch_parallel: false,
                ..EngineConfig::default()
            },
        );
        g.bench_function(name, |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(engine.infer_routes(q, K));
                }
            });
        });
    }
    g.bench_function("batch", |b| {
        b.iter(|| black_box(batch.infer_batch(&queries, K)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
