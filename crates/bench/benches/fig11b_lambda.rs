//! Figure 11b — TGI running time vs `λ`, with and without the transitive
//! graph-reduction optimisation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hris::{Hris, HrisParams, LocalAlgorithm};
use hris_bench::{bench_scenario, resampled_queries};

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let queries = resampled_queries(&s, 180.0);
    let mut g = c.benchmark_group("fig11b_lambda");
    for lambda in [2usize, 4, 6] {
        for (name, reduce) in [("reduced", true), ("unreduced", false)] {
            let params = HrisParams {
                local_algorithm: LocalAlgorithm::Tgi,
                lambda,
                tgi_use_reduction: reduce,
                ..HrisParams::default()
            };
            let hris = Hris::new(&s.net, s.archive.clone(), params);
            g.bench_with_input(BenchmarkId::new(name, lambda), &hris, |b, hris| {
                b.iter(|| {
                    for q in &queries {
                        black_box(hris.infer_routes(q, 2));
                    }
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
