//! Figure 13b — NNI running time vs `k₂` (constrained-kNN fan-out), with
//! and without the common-substructure sharing of the transit graph.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hris::{Hris, HrisParams, LocalAlgorithm};
use hris_bench::{bench_scenario, resampled_queries};

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let queries = resampled_queries(&s, 180.0);
    let mut g = c.benchmark_group("fig13b_k2");
    for k2 in [2usize, 4, 8] {
        for (name, share) in [("shared", true), ("unshared", false)] {
            let params = HrisParams {
                local_algorithm: LocalAlgorithm::Nni,
                k2,
                nni_share_substructures: share,
                ..HrisParams::default()
            };
            let hris = Hris::new(&s.net, s.archive.clone(), params);
            g.bench_with_input(BenchmarkId::new(name, k2), &hris, |b, hris| {
                b.iter(|| {
                    for q in &queries {
                        black_box(hris.infer_routes(q, 2));
                    }
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
