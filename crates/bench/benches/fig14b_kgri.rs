//! Figure 14b — K-GRI dynamic programming vs brute-force enumeration for
//! top-K global route inference, as the number of query pairs grows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use hris::{Hris, HrisParams, PaperScorer, RouteScorer, ScoringCtx};
use hris_bench::bench_scenario;
use hris_traj::resample_to_interval;

fn bench(c: &mut Criterion) {
    let s = bench_scenario();
    let params = HrisParams {
        max_local_routes: 5,
        ..HrisParams::default()
    };
    let hris = Hris::new(&s.net, s.archive.clone(), params.clone());
    // Densely resample the first query so it has many pairs to truncate.
    let query = resample_to_interval(&s.queries[0].dense, 40.0);
    let locals = hris.local_inference(&query);

    let mut g = c.benchmark_group("fig14b_kgri");
    for n in [2usize, 4, 6, 8] {
        if n > locals.len() {
            break;
        }
        let slice = &locals[..n];
        let scorer = PaperScorer::from_params(&params);
        g.bench_with_input(BenchmarkId::new("k_gri", n), &slice, |b, slice| {
            b.iter(|| black_box(scorer.top_k(&ScoringCtx::new(&s.net, slice, 2))));
        });
        let combos: f64 = slice.iter().map(|l| l.routes.len() as f64).product();
        if combos <= 1e6 {
            g.bench_with_input(BenchmarkId::new("brute_force", n), &slice, |b, slice| {
                b.iter(|| black_box(scorer.top_k_brute_force(&ScoringCtx::new(&s.net, slice, 2))));
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
