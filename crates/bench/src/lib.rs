//! Shared fixtures for the criterion benchmark suite.
//!
//! Each `benches/figNNx_*.rs` target re-times one of the paper's
//! performance figures on a deterministic miniature scenario; the
//! `substrates` target micro-benchmarks the underlying data structures.
//! The scenario here is intentionally smaller than the experiment runner's
//! (criterion repeats each measurement many times).

use hris_eval::scenario::{Scenario, ScenarioConfig};
use hris_roadnet::NetworkConfig;
use hris_traj::{resample_to_interval, Trajectory};

/// A small deterministic scenario for benchmarking (≈7 km city, 800 trips,
/// 4 queries of 4–6 km).
#[must_use]
pub fn bench_scenario() -> Scenario {
    let mut cfg = ScenarioConfig::quick(77);
    cfg.net = NetworkConfig {
        blocks_x: 24,
        blocks_y: 24,
        block_m: 300.0,
        arterial_every: 6,
        seed: 77,
        ..NetworkConfig::default()
    };
    cfg.sim.num_trips = 800;
    cfg.sim.num_od_patterns = 30;
    cfg.sim.min_trip_dist_m = 3_000.0;
    cfg.num_queries = 4;
    cfg.query_len_m = (4_000.0, 6_500.0);
    Scenario::build(cfg)
}

/// The scenario's queries, resampled to `interval_s`.
#[must_use]
pub fn resampled_queries(s: &Scenario, interval_s: f64) -> Vec<Trajectory> {
    s.queries
        .iter()
        .map(|q| resample_to_interval(&q.dense, interval_s))
        .collect()
}
