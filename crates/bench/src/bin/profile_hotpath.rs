//! Ad-hoc hot-path profiler: runs the e2e bench workload in a loop so
//! `perf`/instrumentation can see where local inference spends its time.

use hris::prelude::*;
use hris_bench::{bench_scenario, resampled_queries};
use std::time::Instant;

fn main() {
    let s = bench_scenario();
    let queries = resampled_queries(&s, 180.0);
    let hris = Hris::new(&s.net, s.archive.clone(), HrisParams::default());
    let engine = QueryEngine::with_config(&hris, EngineConfig::sequential());
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);
    let t0 = Instant::now();
    let mut n = 0usize;
    for _ in 0..rounds {
        for q in &queries {
            n += engine.infer_routes(q, 2).len();
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "{} query runs in {:.3}s => {:.1} qps (checksum {n})",
        rounds * queries.len(),
        dt,
        (rounds * queries.len()) as f64 / dt
    );
}
