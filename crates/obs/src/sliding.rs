//! Windowed aggregation: a sliding histogram over a ring of fixed epochs.
//!
//! Cumulative histograms answer "since boot"; operations wants "over the
//! last minute". A [`SlidingHistogram`] keeps the same fixed buckets as a
//! [`Histogram`](crate::Histogram) but partitions time into equal epochs
//! held in a ring: an observation lands in the epoch containing its
//! timestamp, reads merge the epochs overlapping the requested window, and
//! epochs older than the ring are overwritten in place — constant memory,
//! no background thread, no per-observation allocation.
//!
//! The merge of a window is an ordinary
//! [`HistogramSnapshot`](crate::HistogramSnapshot), so rolling quantiles
//! come from the same interpolation as the cumulative exports
//! ([`HistogramSnapshot::quantile`](crate::HistogramSnapshot::quantile)).
//!
//! Resolution trade-off: the visible window is quantized to whole epochs,
//! so a "1 minute" read over 30-second epochs actually covers between 60
//! and 90 seconds of data depending on phase. Epochs should therefore be a
//! small fraction of the shortest window served (the engine uses 30-second
//! epochs for 1m/5m windows).

use crate::histogram::HistogramSnapshot;
use std::sync::Mutex;
use std::time::Instant;

/// A fixed-bucket histogram sliced into a ring of time epochs, supporting
/// rolling-window snapshots, quantiles and rates.
///
/// All methods take `&self`; the state sits behind one mutex (observations
/// are far rarer than the atomic metrics — one per query, not per phase —
/// and reads happen at scrape time only).
#[derive(Debug)]
pub struct SlidingHistogram {
    bounds: Vec<f64>,
    epoch_len_s: f64,
    origin: Instant,
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    /// Epoch index of the newest epoch the ring has advanced to.
    head: u64,
    epochs: Vec<Epoch>,
    /// Observations discarded because their epoch had already rotated out.
    dropped_late: u64,
}

#[derive(Debug, Clone)]
struct Epoch {
    /// Which absolute epoch this slot currently holds.
    index: u64,
    /// Per-bucket counts incl. the trailing `+Inf` slot.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Epoch {
    fn empty(index: u64, buckets: usize) -> Self {
        Epoch {
            index,
            counts: vec![0; buckets],
            sum: 0.0,
            count: 0,
        }
    }
}

impl SlidingHistogram {
    /// A sliding histogram with the given upper bounds, `num_epochs` ring
    /// slots of `epoch_len_s` seconds each. The covered horizon is
    /// `epoch_len_s * num_epochs`; reads for longer windows saturate at
    /// the horizon.
    ///
    /// # Panics
    /// Panics when the bounds are not strictly increasing finite values,
    /// `epoch_len_s` is not a positive finite number, or `num_epochs`
    /// is 0.
    #[must_use]
    pub fn new(bounds: &[f64], epoch_len_s: f64, num_epochs: usize) -> Self {
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            epoch_len_s.is_finite() && epoch_len_s > 0.0,
            "epoch length must be positive"
        );
        assert!(num_epochs > 0, "need at least one epoch");
        let buckets = bounds.len() + 1;
        SlidingHistogram {
            bounds: bounds.to_vec(),
            epoch_len_s,
            origin: crate::clock::now(),
            inner: Mutex::new(Ring {
                head: 0,
                epochs: (0..num_epochs as u64)
                    .map(|_| Epoch::empty(u64::MAX, buckets))
                    .collect(),
                dropped_late: 0,
            }),
        }
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// The epoch length in seconds.
    #[must_use]
    pub fn epoch_len_s(&self) -> f64 {
        self.epoch_len_s
    }

    /// The total horizon the ring can cover, in seconds.
    #[must_use]
    pub fn horizon_s(&self) -> f64 {
        let n = self.inner.lock().expect("sliding histogram").epochs.len();
        self.epoch_len_s * n as f64
    }

    /// Seconds elapsed since this histogram was created — the timeline all
    /// `*_at` methods are expressed in.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        crate::clock::now()
            .duration_since(self.origin)
            .as_secs_f64()
    }

    /// Records one observation at the current time.
    pub fn observe(&self, v: f64) {
        self.observe_at(v, self.now_s());
    }

    /// Records one observation at an explicit timeline position `t_s`
    /// (seconds; negative values clamp to 0). Out-of-order observations
    /// land in their own epoch while it is still in the ring; older ones
    /// are counted as dropped.
    pub fn observe_at(&self, v: f64, t_s: f64) {
        let e = self.epoch_of(t_s);
        let mut ring = self.inner.lock().expect("sliding histogram");
        self.advance(&mut ring, e);
        let n = ring.epochs.len() as u64;
        if ring.head >= n && e <= ring.head - n {
            ring.dropped_late += 1;
            return;
        }
        let slot = (e % n) as usize;
        let epoch = &mut ring.epochs[slot];
        if epoch.index != e {
            *epoch = Epoch::empty(e, self.bounds.len() + 1);
        }
        let idx = if v.is_finite() {
            self.bounds.partition_point(|&b| b < v)
        } else {
            self.bounds.len()
        };
        epoch.counts[idx] += 1;
        if v.is_finite() {
            epoch.sum += v;
        }
        epoch.count += 1;
    }

    /// Merges the epochs overlapping the trailing `window_s` seconds into
    /// one snapshot (quantized to whole epochs, saturating at the ring
    /// horizon).
    #[must_use]
    pub fn window_snapshot(&self, window_s: f64) -> HistogramSnapshot {
        self.window_snapshot_at(window_s, self.now_s())
    }

    /// [`SlidingHistogram::window_snapshot`] with an explicit "now".
    #[must_use]
    pub fn window_snapshot_at(&self, window_s: f64, now_s: f64) -> HistogramSnapshot {
        let head = self.epoch_of(now_s);
        let first = self.epoch_of((now_s - window_s.max(0.0)).max(0.0));
        let mut ring = self.inner.lock().expect("sliding histogram");
        self.advance(&mut ring, head);
        let buckets = self.bounds.len() + 1;
        let mut counts = vec![0u64; buckets];
        let mut sum = 0.0;
        let mut count = 0u64;
        for epoch in &ring.epochs {
            if epoch.index < first || epoch.index > head || epoch.index == u64::MAX {
                continue;
            }
            for (acc, c) in counts.iter_mut().zip(&epoch.counts) {
                *acc += c;
            }
            sum += epoch.sum;
            count += epoch.count;
        }
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts,
            sum,
            count,
            exemplars: vec![None; buckets],
        }
    }

    /// Rolling `q`-quantile over the trailing window (`None` when the
    /// window holds no observations).
    #[must_use]
    pub fn quantile(&self, q: f64, window_s: f64) -> Option<f64> {
        self.window_snapshot(window_s).quantile(q)
    }

    /// Observations per second over the trailing window.
    #[must_use]
    pub fn rate(&self, window_s: f64) -> f64 {
        if window_s <= 0.0 {
            return 0.0;
        }
        self.window_snapshot(window_s).count as f64 / window_s
    }

    /// Observations discarded because they arrived after their epoch had
    /// rotated out of the ring.
    #[must_use]
    pub fn dropped_late(&self) -> u64 {
        self.inner.lock().expect("sliding histogram").dropped_late
    }

    fn epoch_of(&self, t_s: f64) -> u64 {
        (t_s.max(0.0) / self.epoch_len_s) as u64
    }

    /// Moves the ring head forward to epoch `e`, clearing every slot the
    /// head passes over so stale epochs can never leak into a merge.
    fn advance(&self, ring: &mut Ring, e: u64) {
        if e <= ring.head {
            return;
        }
        let n = ring.epochs.len() as u64;
        let buckets = self.bounds.len() + 1;
        if e - ring.head >= n {
            for slot in ring.epochs.iter_mut() {
                *slot = Epoch::empty(u64::MAX, buckets);
            }
        } else {
            for idx in (ring.head + 1)..=e {
                let slot = (idx % n) as usize;
                ring.epochs[slot] = Epoch::empty(u64::MAX, buckets);
            }
        }
        ring.head = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_merge_matches_direct_counts() {
        let s = SlidingHistogram::new(&[1.0, 2.0], 1.0, 10);
        s.observe_at(0.5, 0.1);
        s.observe_at(1.5, 1.1);
        s.observe_at(5.0, 2.1);
        let snap = s.window_snapshot_at(10.0, 2.5);
        assert_eq!(snap.counts, vec![1, 1, 1]);
        assert_eq!(snap.count, 3);
        assert!((snap.sum - 7.0).abs() < 1e-12);
    }

    #[test]
    fn old_epochs_rotate_out() {
        let s = SlidingHistogram::new(&[1.0], 1.0, 3);
        s.observe_at(0.5, 0.0); // epoch 0
        s.observe_at(0.5, 1.0); // epoch 1
                                // Advance far enough that epoch 0 is out of the 3-slot ring.
        s.observe_at(0.5, 3.5); // epoch 3: ring now holds 1..=3
        let all = s.window_snapshot_at(100.0, 3.5);
        assert_eq!(all.count, 2, "epoch 0 must have been overwritten");
        // A narrow window sees only the newest epoch.
        let narrow = s.window_snapshot_at(0.4, 3.5);
        assert_eq!(narrow.count, 1);
    }

    #[test]
    fn late_observations_past_the_ring_are_dropped() {
        let s = SlidingHistogram::new(&[1.0], 1.0, 2);
        s.observe_at(0.5, 5.0);
        s.observe_at(0.5, 1.0); // epoch 1 rotated out long ago
        assert_eq!(s.dropped_late(), 1);
        assert_eq!(s.window_snapshot_at(100.0, 5.0).count, 1);
    }

    #[test]
    fn big_jump_clears_every_slot() {
        let s = SlidingHistogram::new(&[1.0], 1.0, 4);
        for t in 0..4 {
            s.observe_at(0.5, t as f64);
        }
        s.observe_at(0.5, 1000.0);
        assert_eq!(s.window_snapshot_at(2000.0, 1000.0).count, 1);
    }

    #[test]
    fn rolling_quantile_and_rate() {
        let s = SlidingHistogram::new(&[0.1, 1.0, 10.0], 1.0, 60);
        for i in 0..60 {
            s.observe_at(0.05, i as f64 * 0.5); // 30 s of fast queries
        }
        s.observe_at(5.0, 29.9); // one slow one at the end
        let p50 = s.window_snapshot_at(30.0, 29.9).quantile(0.5).unwrap();
        assert!(p50 <= 0.1, "p50 = {p50}");
        let p99 = s.window_snapshot_at(30.0, 29.9).quantile(0.995).unwrap();
        assert!(p99 > 1.0, "p99 = {p99}");
        let snap = s.window_snapshot_at(30.0, 29.9);
        assert_eq!(snap.count, 61);
    }

    #[test]
    fn wall_clock_observe_lands_in_current_window() {
        let s = SlidingHistogram::new(&[1.0], 30.0, 11);
        s.observe(0.5);
        s.observe(2.0);
        assert_eq!(s.window_snapshot(60.0).count, 2);
        assert!(s.rate(60.0) > 0.0);
        assert!((s.horizon_s() - 330.0).abs() < 1e-9);
    }
}
