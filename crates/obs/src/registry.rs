//! The metrics registry: named handles over shared atomics.

use crate::export::MetricsSnapshot;
use crate::histogram::{Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not yet registered anywhere).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways. Cloning shares storage.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A free-standing gauge (not yet registered anywhere).
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A hit/miss counter pair packed into one `AtomicU64` (hits in the high
/// 32 bits, misses in the low 32), so one atomic load yields a mutually
/// consistent `(hits, misses)` tuple: `hits + misses` is exactly the number
/// of events recorded before the load, never a torn mix of two instants.
///
/// This is the fix for the classic two-relaxed-loads snapshot race: with
/// independent atomics, a reader between a lookup's "miss" increment and the
/// next lookup's "hit" increment can report totals that never coexisted.
///
/// Capacity: each side is exact up to `2^32 - 1` events (≈4.3 billion); past
/// that an increment carries into the other half. Per-process cache counters
/// stay far below this; a service restarting its registry daily has five
/// orders of magnitude of headroom.
#[derive(Clone, Debug, Default)]
pub struct PairedCounter(Arc<AtomicU64>);

impl PairedCounter {
    /// A fresh pair at `(0, 0)`.
    #[must_use]
    pub fn new() -> Self {
        PairedCounter::default()
    }

    /// Records a hit.
    pub fn hit(&self) {
        self.0.fetch_add(1 << 32, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// One consistent `(hits, misses)` reading.
    #[must_use]
    pub fn get(&self) -> (u64, u64) {
        let v = self.0.load(Ordering::Relaxed);
        (v >> 32, v & 0xFFFF_FFFF)
    }

    /// Hits half of [`PairedCounter::get`].
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.get().0
    }

    /// Misses half of [`PairedCounter::get`].
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.get().1
    }
}

/// One registered metric.
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    kind: Kind,
}

enum Kind {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    /// Exported as two counters, `{base}_hits_total` / `{base}_misses_total`.
    Paired(PairedCounter),
}

/// A snapshot of one exported metric (paired counters expand to two).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label pairs, sorted by label name.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: SnapshotValue,
}

/// The value half of a [`SnapshotEntry`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// A thread-safe registry of named metrics.
///
/// Registration is get-or-create: asking twice for the same `(name, labels)`
/// returns a handle to the same storage. The registry holds one `Mutex`
/// around its *directory* only — metric updates through the returned handles
/// never touch the lock.
///
/// Metric names must match `[a-zA-Z_:][a-zA-Z0-9_:]*` and label names
/// `[a-zA-Z_][a-zA-Z0-9_]*` (the Prometheus exposition grammar); label
/// values may not contain `"`, `\` or newlines. Violations panic at
/// registration, so exporters never need escaping.
#[derive(Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// A counter named `name` (get-or-create).
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with_labels(name, help, &[])
    }

    /// A labelled counter (get-or-create).
    ///
    /// # Panics
    /// Panics on an invalid name/label, or when `(name, labels)` is already
    /// registered as a different metric kind.
    pub fn counter_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            name,
            help,
            labels,
            || Kind::Counter(Counter::new()),
            |k| match k {
                Kind::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// A gauge named `name` (get-or-create).
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with_labels(name, help, &[])
    }

    /// A labelled gauge (get-or-create).
    ///
    /// # Panics
    /// Panics on an invalid name/label or a metric-kind clash.
    pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            name,
            help,
            labels,
            || Kind::Gauge(Gauge::new()),
            |k| match k {
                Kind::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// A fixed-bucket histogram (get-or-create; `bounds` must match any
    /// existing registration).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with_labels(name, help, bounds, &[])
    }

    /// A labelled fixed-bucket histogram (get-or-create).
    ///
    /// # Panics
    /// Panics on an invalid name/label, a metric-kind clash, or when the
    /// same `(name, labels)` was registered with different bounds.
    pub fn histogram_with_labels(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        let h = self.get_or_insert(
            name,
            help,
            labels,
            || Kind::Histogram(Histogram::new(bounds)),
            |k| match k {
                Kind::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        );
        assert!(
            h.bounds() == bounds,
            "histogram `{name}` re-registered with different bounds"
        );
        h
    }

    /// Registers an existing [`PairedCounter`] under `base`: the snapshot
    /// exports it as the two counters `{base}_hits_total` and
    /// `{base}_misses_total`, both read from the same single atomic load so
    /// the exported pair is mutually consistent.
    ///
    /// Returns a clone of the pair (get-or-create: re-registering `base`
    /// returns the originally registered pair and ignores the argument).
    ///
    /// # Panics
    /// Panics on an invalid name or a metric-kind clash.
    pub fn register_paired(&self, base: &str, help: &str, pair: PairedCounter) -> PairedCounter {
        self.get_or_insert(
            base,
            help,
            &[],
            || Kind::Paired(pair.clone()),
            |k| match k {
                Kind::Paired(p) => Some(p.clone()),
                _ => None,
            },
        )
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Kind,
        extract: impl Fn(&Kind) -> Option<T>,
    ) -> T {
        validate_name(name);
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                validate_label(k, v);
                ((*k).to_string(), (*v).to_string())
            })
            .collect();
        labels.sort();
        let mut entries = self.entries.lock().expect("metrics registry directory");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return extract(&e.kind)
                .unwrap_or_else(|| panic!("metric `{name}` already registered as another kind"));
        }
        let kind = make();
        let out = extract(&kind).expect("freshly made metric matches its own kind");
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            kind,
        });
        out
    }

    /// A point-in-time copy of every registered metric, sorted by
    /// `(name, labels)` so exports are deterministic. Paired counters expand
    /// into their two `_hits_total` / `_misses_total` counters, read from
    /// one atomic load each.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry directory");
        let mut out: Vec<SnapshotEntry> = Vec::with_capacity(entries.len());
        for e in entries.iter() {
            match &e.kind {
                Kind::Counter(c) => out.push(SnapshotEntry {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: SnapshotValue::Counter(c.get()),
                }),
                Kind::Gauge(g) => out.push(SnapshotEntry {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: SnapshotValue::Gauge(g.get()),
                }),
                Kind::Histogram(h) => out.push(SnapshotEntry {
                    name: e.name.clone(),
                    help: e.help.clone(),
                    labels: e.labels.clone(),
                    value: SnapshotValue::Histogram(h.snapshot()),
                }),
                Kind::Paired(p) => {
                    let (hits, misses) = p.get();
                    for (suffix, v) in [("hits", hits), ("misses", misses)] {
                        out.push(SnapshotEntry {
                            name: format!("{}_{suffix}_total", e.name),
                            help: e.help.clone(),
                            labels: e.labels.clone(),
                            value: SnapshotValue::Counter(v),
                        });
                    }
                }
            }
        }
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { entries: out }
    }
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok = match chars.next() {
        Some(c) => {
            (c.is_ascii_alphabetic() || c == '_' || c == ':')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        None => false,
    };
    assert!(ok, "invalid metric name `{name}`");
}

fn validate_label(key: &str, value: &str) {
    let mut chars = key.chars();
    let ok = match chars.next() {
        Some(c) => {
            (c.is_ascii_alphabetic() || c == '_')
                && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        None => false,
    };
    assert!(ok, "invalid label name `{key}`");
    assert!(
        !value.contains(['"', '\\', '\n']),
        "label value for `{key}` contains a character that would need escaping"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_storage() {
        let r = MetricsRegistry::new();
        let a = r.counter("hits_total", "Hits.");
        let b = r.counter("hits_total", "Hits.");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        // Different labels → different storage.
        let c = r.counter_with_labels("hits_total", "Hits.", &[("shard", "0")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn paired_counter_is_consistent_per_load() {
        let p = PairedCounter::new();
        p.hit();
        p.miss();
        p.miss();
        assert_eq!(p.get(), (1, 2));
        assert_eq!(p.hits() + p.misses(), 3);
    }

    #[test]
    fn paired_registration_expands_in_snapshot() {
        let r = MetricsRegistry::new();
        let p = r.register_paired("cache", "Cache lookups.", PairedCounter::new());
        p.hit();
        p.hit();
        p.miss();
        let s = r.snapshot();
        assert_eq!(s.counter("cache_hits_total"), Some(2));
        assert_eq!(s.counter("cache_misses_total"), Some(1));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth", "Queue depth.");
        g.set(5);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_clash_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x", "");
        let _ = r.gauge("x", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("1bad", "");
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_bounds_clash_panics() {
        let r = MetricsRegistry::new();
        let _ = r.histogram("h", "", &[1.0]);
        let _ = r.histogram("h", "", &[2.0]);
    }

    #[test]
    fn snapshot_sorted_by_name_then_labels() {
        let r = MetricsRegistry::new();
        let _ = r.counter_with_labels("b", "", &[("x", "2")]);
        let _ = r.counter_with_labels("b", "", &[("x", "1")]);
        let _ = r.counter("a", "");
        let names: Vec<String> = r
            .snapshot()
            .entries
            .iter()
            .map(|e| format!("{}{:?}", e.name, e.labels))
            .collect();
        assert!(names.windows(2).all(|w| w[0] <= w[1]));
    }
}
