//! Per-query explain/audit records and their bounded ring buffer.
//!
//! "Why did this route win?" is unanswerable from aggregate metrics, and
//! re-running the query only works if the archive has not moved. The audit
//! layer answers it after the fact: an engine or router with explain
//! enabled records one structured JSON document per query — candidate
//! counts, the top-K routes with their score components, the rerank feature
//! vector with per-feature weight·feature attributions, and any
//! fallback/repair/shed events — keyed by the query's trace id.
//!
//! The ring deliberately stores the document as an opaque pre-rendered
//! JSON string: `hris-obs` stays engine-agnostic (it never learns what a
//! route or a feature is), and serving `/debug/explain/<trace_id>` is a
//! lookup plus a write, no serialization on the read path.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// One query's audit document: the trace/query identity plus the
/// pre-rendered JSON explain record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// The trace id the document belongs to (key of `/debug/explain/<id>`).
    pub trace_id: u64,
    /// Engine- or router-assigned sequence number.
    pub query_id: u64,
    /// The structured explain document, already rendered as one JSON
    /// object (see `hris::QueryAudit` for the schema).
    pub json: String,
}

/// A bounded ring of the most recent [`AuditRecord`]s: pushing past the
/// capacity drops the oldest record and counts it. Clones share storage,
/// so the engine that writes audits and the telemetry server that serves
/// them hold handles to the same ring.
#[derive(Debug, Clone)]
pub struct AuditRing {
    capacity: usize,
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    buf: VecDeque<AuditRecord>,
    dropped: u64,
}

impl AuditRing {
    /// A ring keeping at most `capacity` records (0 keeps none: every push
    /// is counted as dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        AuditRing {
            capacity,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Two handles push into the same storage iff they are clones of one
    /// ring.
    #[must_use]
    pub fn same_storage(&self, other: &AuditRing) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record; returns `true` when an old record (or, at zero
    /// capacity, this record) was dropped to make room.
    pub fn push(&self, rec: AuditRecord) -> bool {
        let mut inner = self.inner.lock().expect("audit ring");
        if self.capacity == 0 {
            inner.dropped += 1;
            return true;
        }
        let evict = inner.buf.len() == self.capacity;
        if evict {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(rec);
        evict
    }

    /// The most recent retained record for this trace id, if any.
    #[must_use]
    pub fn find(&self, trace_id: u64) -> Option<AuditRecord> {
        self.inner
            .lock()
            .expect("audit ring")
            .buf
            .iter()
            .rev()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }

    /// Copies out the retained records, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<AuditRecord> {
        self.inner
            .lock()
            .expect("audit ring")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the retained records, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<AuditRecord> {
        self.inner
            .lock()
            .expect("audit ring")
            .buf
            .drain(..)
            .collect()
    }

    /// How many records have been dropped since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("audit ring").dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace_id: u64) -> AuditRecord {
        AuditRecord {
            trace_id,
            query_id: trace_id,
            json: format!("{{\"trace_id\":{trace_id}}}"),
        }
    }

    #[test]
    fn bounded_eviction_and_lookup() {
        let ring = AuditRing::new(2);
        assert!(!ring.push(rec(1)));
        assert!(!ring.push(rec(2)));
        assert!(ring.push(rec(3)));
        assert_eq!(ring.dropped(), 1);
        assert!(ring.find(1).is_none(), "oldest evicted");
        assert_eq!(ring.find(3).expect("kept").json, "{\"trace_id\":3}");
        let ids: Vec<u64> = ring.snapshot().iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn find_returns_most_recent_for_duplicate_ids() {
        let ring = AuditRing::new(4);
        let _ = ring.push(rec(5));
        let _ = ring.push(AuditRecord {
            trace_id: 5,
            query_id: 99,
            json: "{}".to_string(),
        });
        assert_eq!(ring.find(5).expect("found").query_id, 99);
    }

    #[test]
    fn zero_capacity_drops_everything_and_clones_share() {
        let ring = AuditRing::new(0);
        assert!(ring.push(rec(1)));
        assert!(ring.snapshot().is_empty());
        let shared = AuditRing::new(3);
        let other = shared.clone();
        let _ = other.push(rec(2));
        assert_eq!(shared.snapshot().len(), 1);
        assert!(shared.same_storage(&other));
        assert!(!shared.same_storage(&AuditRing::new(3)));
        assert_eq!(shared.drain().len(), 1);
        assert!(shared.snapshot().is_empty());
    }
}
