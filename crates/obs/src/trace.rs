//! Per-query trace records and their bounded ring buffer.

use crate::span::Span;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Everything worth knowing about one served query: where its wall time
/// went, how much work each phase did, and how the shared caches treated it.
///
/// Phase names follow the engine's decomposition of the paper's pipeline:
/// `candidates` (candidate-edge lookup per query point), `local` (reference
/// search + local route inference per consecutive pair), `global` (K-GRI
/// scoring), `refine` (result assembly / instrumentation collection).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecord {
    /// Process-unique trace id tying this record to its distributed span
    /// tree and audit record (0 = untraced / pre-tracing record).
    pub trace_id: u64,
    /// Engine-assigned sequence number (monotonic per engine).
    pub query_id: u64,
    /// Query points.
    pub points: usize,
    /// Consecutive point pairs inferred (`points - 1` for real queries).
    pub pairs: usize,
    /// Total candidate edges across all query points.
    pub candidates: usize,
    /// Global routes returned.
    pub routes: usize,
    /// Log-score of the top-1 route, when any route was returned.
    pub top_log_score: Option<f64>,
    /// Wall seconds spent in candidate lookup.
    pub candidates_s: f64,
    /// Wall seconds spent in per-pair local inference.
    pub local_s: f64,
    /// Wall seconds spent in K-GRI global scoring.
    pub global_s: f64,
    /// Wall seconds spent assembling results.
    pub refine_s: f64,
    /// Wall seconds for the whole query (≥ the four phases' sum).
    pub total_s: f64,
    /// Shortest-path cache hits charged to this query.
    pub sp_hits: u64,
    /// Shortest-path cache misses charged to this query.
    pub sp_misses: u64,
    /// Candidate-memo hits charged to this query.
    pub cand_hits: u64,
    /// Candidate-memo misses charged to this query.
    pub cand_misses: u64,
    /// True when `total_s` exceeded the engine's slow-query threshold.
    pub slow: bool,
    /// Root id of the span tree in `spans` (0 when no tree was captured).
    pub root_span: u64,
    /// The query's span tree, sorted by `(start_s, id)`; empty when the
    /// query was not sampled and not slow.
    pub spans: Vec<Span>,
}

impl TraceRecord {
    /// This record as one JSON object (compact, stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let score = match self.top_log_score {
            Some(s) if s.is_finite() => crate::export::fmt_f64(s),
            _ => "null".to_string(),
        };
        let spans = self
            .spans
            .iter()
            .map(Span::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"trace_id\":{},\"query_id\":{},\"points\":{},\"pairs\":{},\"candidates\":{},",
                "\"routes\":{},\"top_log_score\":{},",
                "\"candidates_s\":{},\"local_s\":{},\"global_s\":{},\"refine_s\":{},",
                "\"total_s\":{},\"sp_hits\":{},\"sp_misses\":{},",
                "\"cand_hits\":{},\"cand_misses\":{},\"slow\":{},",
                "\"root_span\":{},\"spans\":[{}]}}"
            ),
            self.trace_id,
            self.query_id,
            self.points,
            self.pairs,
            self.candidates,
            self.routes,
            score,
            crate::export::fmt_f64(self.candidates_s),
            crate::export::fmt_f64(self.local_s),
            crate::export::fmt_f64(self.global_s),
            crate::export::fmt_f64(self.refine_s),
            crate::export::fmt_f64(self.total_s),
            self.sp_hits,
            self.sp_misses,
            self.cand_hits,
            self.cand_misses,
            self.slow,
            self.root_span,
            spans,
        )
    }
}

/// A bounded ring of the most recent [`TraceRecord`]s: pushing past the
/// capacity drops the oldest record and counts it.
///
/// Cloning shares the underlying storage (the ring is an `Arc` inside), so
/// the engine that writes records and a telemetry server that reads them
/// can hold handles to the same ring.
#[derive(Debug, Clone)]
pub struct TraceRing {
    capacity: usize,
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl TraceRing {
    /// A ring keeping at most `capacity` records (0 keeps none: every push
    /// is counted as dropped, which lets callers leave tracing "on" with a
    /// zero-retention budget).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Two handles push into the same storage iff they are clones of one
    /// ring.
    #[must_use]
    pub fn same_storage(&self, other: &TraceRing) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record; returns `true` when an old record (or, at zero
    /// capacity, this record) was dropped to make room.
    pub fn push(&self, rec: TraceRecord) -> bool {
        let mut inner = self.inner.lock().expect("trace ring");
        if self.capacity == 0 {
            inner.dropped += 1;
            return true;
        }
        let evict = inner.buf.len() == self.capacity;
        if evict {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(rec);
        evict
    }

    /// Copies out the retained records, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .expect("trace ring")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    /// The most recent retained record carrying this trace id, if any.
    #[must_use]
    pub fn find(&self, trace_id: u64) -> Option<TraceRecord> {
        self.inner
            .lock()
            .expect("trace ring")
            .buf
            .iter()
            .rev()
            .find(|r| r.trace_id == trace_id)
            .cloned()
    }

    /// Removes and returns the retained records, oldest first.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceRecord> {
        self.inner
            .lock()
            .expect("trace ring")
            .buf
            .drain(..)
            .collect()
    }

    /// How many records have been dropped since construction.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("trace ring").dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> TraceRecord {
        TraceRecord {
            query_id: id,
            ..TraceRecord::default()
        }
    }

    #[test]
    fn keeps_most_recent_and_counts_drops() {
        let ring = TraceRing::new(2);
        assert!(!ring.push(rec(1)));
        assert!(!ring.push(rec(2)));
        assert!(ring.push(rec(3)));
        let ids: Vec<u64> = ring.snapshot().iter().map(|r| r.query_id).collect();
        assert_eq!(ids, vec![2, 3]);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let ring = TraceRing::new(0);
        assert!(ring.push(rec(1)));
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let ring = TraceRing::new(4);
        let _ = ring.push(rec(1));
        let _ = ring.push(rec(2));
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn json_shape() {
        let r = TraceRecord {
            query_id: 7,
            points: 5,
            pairs: 4,
            top_log_score: Some(-1.5),
            total_s: 0.25,
            slow: true,
            ..TraceRecord::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"query_id\":7"));
        assert!(j.contains("\"top_log_score\":-1.5"));
        assert!(j.contains("\"slow\":true"));
        let none = TraceRecord::default().to_json();
        assert!(none.contains("\"top_log_score\":null"));
        assert!(none.contains("\"root_span\":0"));
        assert!(none.contains("\"spans\":[]"));
    }

    #[test]
    fn spans_ride_along_in_json() {
        let r = TraceRecord {
            query_id: 1,
            root_span: 10,
            spans: vec![crate::span::Span {
                id: 10,
                parent: 0,
                name: "query".to_string(),
                start_s: 0.0,
                duration_s: 0.5,
                attrs: Vec::new(),
            }],
            ..TraceRecord::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"root_span\":10"));
        assert!(j.contains("\"spans\":[{\"id\":10,"));
    }

    #[test]
    fn clones_share_the_ring() {
        let ring = TraceRing::new(4);
        let other = ring.clone();
        let _ = other.push(rec(1));
        assert_eq!(ring.snapshot().len(), 1);
        assert!(ring.same_storage(&other));
        assert!(!ring.same_storage(&TraceRing::new(4)));
    }
}
