//! **hris-obs** — zero-dependency observability for the HRIS serving stack.
//!
//! The pipeline's three online phases (local inference → global inference →
//! refinement) are only tunable when their runtime cost is visible, so this
//! crate provides the smallest toolkit that makes the hot path introspectable
//! without perturbing it:
//!
//! * [`MetricsRegistry`] — a thread-safe registry of named metrics backed by
//!   plain atomics: monotonic [`Counter`]s, [`Gauge`]s, fixed-bucket
//!   [`Histogram`]s, and [`PairedCounter`]s (a hit/miss pair packed into one
//!   atomic word so a snapshot of the pair is always mutually consistent).
//! * [`PhaseTimer`] — an RAII wall-clock timer that records into a histogram
//!   when dropped; one `Instant::now()` on start and one on stop.
//! * [`TraceRecord`] / [`TraceRing`] — opt-in per-query traces (phase
//!   durations, candidate counts, cache outcomes, route score) kept in a
//!   bounded ring buffer with a slow-query flag.
//! * [`MetricsSnapshot`] — a point-in-time copy of the registry that renders
//!   to Prometheus text exposition format or JSON.
//! * [`Span`] / [`SpanCollector`] — sampled per-query span trees (phase
//!   hierarchy with wall-clock extents and attrs) shipped inside
//!   [`TraceRecord`]s; histogram buckets can carry **exemplar** span ids
//!   ([`Histogram::observe_with_exemplar`]) linking a latency bucket to a
//!   concrete trace.
//! * [`SlidingHistogram`] — a ring of fixed-bucket time epochs merged on
//!   read, for rolling-window quantiles and rates.
//! * [`serve`] — a zero-dependency blocking HTTP server exposing
//!   `/metrics`, `/healthz`, `/varz` and `/debug/traces` + `/debug/slow`,
//!   plus mountable prefix handlers for router-level debug endpoints
//!   (`/debug/shards`, `/debug/explain/<trace_id>`).
//! * [`TraceContext`] / [`TraceAssembler`] — distributed-trace propagation:
//!   a router mints a process-unique trace id at its routing decision,
//!   threads it through delegation and scatter batches, and stitches every
//!   stage's spans into one validated tree.
//! * [`AuditRecord`] / [`AuditRing`] — opt-in per-query explain documents
//!   (pre-rendered JSON, engine-defined schema) in a bounded ring keyed by
//!   trace id.
//! * [`clock`] — the counted monotonic clock every instrumented code path
//!   reads through, making the zero-clock-read disabled-path contract
//!   test-enforceable.
//!
//! # Consistency model
//!
//! Every metric is updated with `Ordering::Relaxed` atomics: each individual
//! counter, gauge, bucket and sum is exact, but a snapshot taken while
//! writers are active may observe *different* metrics at slightly different
//! instants. The two exceptions are deliberate:
//!
//! * a [`PairedCounter`] packs its hit and miss counts into one `AtomicU64`
//!   (32 bits each), so the `(hits, misses)` tuple read by
//!   [`PairedCounter::get`] always corresponds to one single program state —
//!   `hits + misses` is exactly the number of lookups issued before the
//!   load;
//! * a [`Histogram`] snapshot reads `count` last, so `count` is always ≥ the
//!   sum of the bucket counts read before it (never the reverse).
//!
//! Snapshots of a *quiescent* registry (no concurrent writers) are exact.
//!
//! # Overhead
//!
//! Disabled instrumentation must cost nothing: every consumer in this
//! workspace gates metric updates on an `Option` that is `None` by default,
//! so the disabled path executes zero atomic operations and zero clock
//! reads. Enabled, the per-query cost is a handful of relaxed atomic
//! read-modify-writes and four `Instant` pairs — see DESIGN.md §5d for the
//! measured budget.

#![warn(missing_docs)]

pub mod admission;
mod assemble;
mod audit;
pub mod clock;
pub mod export;
mod histogram;
mod registry;
pub mod serve;
mod sliding;
mod span;
mod timer;
mod trace;

pub use admission::{Admission, AdmissionGate, AdmissionPermit};
pub use assemble::{AssembleError, TraceAssembler};
pub use audit::{AuditRecord, AuditRing};
pub use export::MetricsSnapshot;
pub use histogram::{Histogram, HistogramSnapshot, DEFAULT_TIME_BOUNDS, FINE_TIME_BOUNDS};
pub use registry::{Counter, Gauge, MetricsRegistry, PairedCounter, SnapshotEntry, SnapshotValue};
pub use serve::{Health, MetricsServer, ServeState};
pub use sliding::SlidingHistogram;
pub use span::{
    next_span_id, next_trace_id, synthetic_tree, AttrValue, Span, SpanCollector, SpanGuard,
    SpanSampler, TraceContext,
};
pub use timer::PhaseTimer;
pub use trace::{TraceRecord, TraceRing};
