//! Snapshot rendering: Prometheus text exposition format and JSON.

use crate::histogram::HistogramSnapshot;
use crate::registry::{SnapshotEntry, SnapshotValue};

/// A point-in-time copy of a whole [`MetricsRegistry`](crate::MetricsRegistry),
/// sorted by `(name, labels)`. All exports are deterministic functions of the
/// snapshot, so the metric names and label sets form a stable contract
/// (pinned by the golden-export test).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The exported metrics.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// The entry with this exact name and label set.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotEntry> {
        self.entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
    }

    /// Value of the first counter named `name` (any label set).
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| match &e.value {
                SnapshotValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// Value of the first gauge named `name` (any label set).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| match &e.value {
                SnapshotValue::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// The histogram with this exact name and label set.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.get(name, labels).and_then(|e| match &e.value {
            SnapshotValue::Histogram(h) => Some(h),
            _ => None,
        })
    }

    /// Sum of the histogram with this exact name and label set.
    #[must_use]
    pub fn histogram_sum(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.histogram(name, labels).map(|h| h.sum)
    }

    /// The same snapshot with `extra` label pairs stamped onto every entry
    /// (label sets stay sorted by label name). This is the federation
    /// primitive for sharded serving: each shard keeps its own registry, and
    /// an aggregator relabels each shard's snapshot with `("shard", "<i>")`
    /// before merging, so identically-named per-shard metrics stay distinct
    /// series in one exposition.
    ///
    /// Entries that already carry one of the `extra` label names keep their
    /// own value (the stamp never overwrites an explicit label).
    #[must_use]
    pub fn with_labels(mut self, extra: &[(&str, &str)]) -> MetricsSnapshot {
        for e in &mut self.entries {
            for &(k, v) in extra {
                if e.labels.iter().any(|(name, _)| name == k) {
                    continue;
                }
                e.labels.push((k.to_string(), v.to_string()));
            }
            e.labels.sort();
        }
        self
    }

    /// One snapshot holding every entry of `parts`, in order. Combine with
    /// [`MetricsSnapshot::with_labels`] to build a single deterministic
    /// exposition over many registries (exports sort by `(name, labels)`,
    /// so the concatenation order does not leak into the output).
    #[must_use]
    pub fn merged(parts: impl IntoIterator<Item = MetricsSnapshot>) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: parts.into_iter().flat_map(|s| s.entries).collect(),
        }
    }

    /// The entries re-sorted by `(name, labels)` at export time. Registry
    /// snapshots arrive sorted already, but `entries` is a public field a
    /// caller may have assembled by hand — sorting here makes every export
    /// deterministic regardless of construction order.
    fn sorted_entries(&self) -> Vec<&SnapshotEntry> {
        let mut entries: Vec<&SnapshotEntry> = self.entries.iter().collect();
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        entries
    }

    /// Prometheus text exposition format: one `# HELP`/`# TYPE` header per
    /// metric family, histograms expanded into cumulative `_bucket` series
    /// plus `_sum` and `_count`. Families and label sets are emitted in
    /// sorted `(name, labels)` order, so the output is byte-deterministic
    /// for a given snapshot.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in self.sorted_entries() {
            if last_name != Some(e.name.as_str()) {
                let kind = match &e.value {
                    SnapshotValue::Counter(_) => "counter",
                    SnapshotValue::Gauge(_) => "gauge",
                    SnapshotValue::Histogram(_) => "histogram",
                };
                out.push_str(&format!(
                    "# HELP {} {}\n# TYPE {} {kind}\n",
                    e.name,
                    escape_help(&e.help),
                    e.name
                ));
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", e.name, label_block(&e.labels, None)));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", e.name, label_block(&e.labels, None)));
                }
                SnapshotValue::Histogram(h) => {
                    let cum = h.cumulative();
                    for (i, c) in cum.iter().enumerate() {
                        let le = match h.bounds.get(i) {
                            Some(b) => prom_f64(*b),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {c}\n",
                            e.name,
                            label_block(&e.labels, Some(&le))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        prom_f64(h.sum)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }

    /// The snapshot as one JSON document:
    /// `{"metrics": [{"name", "type", "labels", ...value fields}]}`.
    /// Histograms carry their bounds and *non-cumulative* bucket counts plus
    /// the `+Inf` overflow count, so the registry state round-trips exactly.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, e) in self.sorted_entries().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":{}",
                e.name,
                labels_json(&e.labels)
            ));
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}}}"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{v}}}"));
                }
                SnapshotValue::Histogram(h) => {
                    out.push_str(",\"type\":\"histogram\",\"buckets\":[");
                    for (j, b) in h.bounds.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!(
                            "{{\"le\":{},\"count\":{}{}}}",
                            fmt_f64(*b),
                            h.counts[j],
                            exemplar_json(&h.exemplars, j, "exemplar_span"),
                        ));
                    }
                    out.push_str(&format!(
                        "],\"inf_count\":{}{},\"sum\":{},\"count\":{}}}",
                        h.counts[h.bounds.len()],
                        exemplar_json(&h.exemplars, h.bounds.len(), "inf_exemplar_span"),
                        fmt_f64(h.sum),
                        h.count
                    ));
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Renders a snapshot in Prometheus text exposition format. This is the
/// canonical serving-path entry point: the `/metrics` endpoint of
/// [`serve`](crate::serve) emits exactly this function's output, byte for
/// byte, for the snapshot it takes at scrape time.
#[must_use]
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    snapshot.to_prometheus()
}

/// Renders a snapshot as one JSON document (see
/// [`MetricsSnapshot::to_json`]); the `/varz` endpoint embeds this output.
#[must_use]
pub fn json_text(snapshot: &MetricsSnapshot) -> String {
    snapshot.to_json()
}

fn labels_eq(have: &[(String, String)], want: &[(&str, &str)]) -> bool {
    let mut want: Vec<(&str, &str)> = want.to_vec();
    want.sort_unstable();
    have.len() == want.len()
        && have
            .iter()
            .zip(&want)
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// `{a="1",b="2"}` (optionally with a trailing `le`), or `""` when empty.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn labels_json(labels: &[(String, String)]) -> String {
    let parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{k}\":\"{v}\""))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// `,"<key>":<span_id>` when bucket `idx` carries an exemplar, else `""`.
/// Exemplars appear only in the JSON export: the Prometheus text format
/// stays byte-identical to its pre-exemplar form.
fn exemplar_json(exemplars: &[Option<u64>], idx: usize, key: &str) -> String {
    match exemplars.get(idx).copied().flatten() {
        Some(id) => format!(",\"{key}\":{id}"),
        None => String::new(),
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Minimal JSON string escaping for names and attribute text: backslash,
/// quote, and control characters.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float text (`null` for non-finite; registration rules make
/// these unreachable for bounds, but sums of user observations may see NaN).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_string()
    }
}

/// Prometheus float text (`+Inf` / `-Inf` / `NaN` spellings).
fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::{MetricsRegistry, PairedCounter};

    fn demo() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("req_total", "Requests.").add(3);
        r.gauge("depth", "Depth.").set(-2);
        let h = r.histogram_with_labels("lat_seconds", "Latency.", &[0.1, 1.0], &[("phase", "a")]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(2.0);
        let p = r.register_paired("cache", "Cache.", PairedCounter::new());
        p.hit();
        p.miss();
        r
    }

    #[test]
    fn prometheus_shape() {
        let text = demo().snapshot().to_prometheus();
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total 3"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("lat_seconds_bucket{phase=\"a\",le=\"0.1\"} 1"));
        assert!(text.contains("lat_seconds_bucket{phase=\"a\",le=\"1\"} 2"));
        assert!(text.contains("lat_seconds_bucket{phase=\"a\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count{phase=\"a\"} 3"));
        assert!(text.contains("cache_hits_total 1"));
        assert!(text.contains("cache_misses_total 1"));
        // One header per family.
        assert_eq!(text.matches("# TYPE lat_seconds histogram").count(), 1);
    }

    #[test]
    fn exports_sort_hand_built_entries() {
        use crate::registry::{SnapshotEntry, SnapshotValue};
        use crate::MetricsSnapshot;
        let entry = |name: &str| SnapshotEntry {
            name: name.to_string(),
            help: String::new(),
            labels: Vec::new(),
            value: SnapshotValue::Counter(1),
        };
        let scrambled = MetricsSnapshot {
            entries: vec![entry("b_total"), entry("a_total")],
        };
        let sorted = MetricsSnapshot {
            entries: vec![entry("a_total"), entry("b_total")],
        };
        assert_eq!(scrambled.to_prometheus(), sorted.to_prometheus());
        assert_eq!(scrambled.to_json(), sorted.to_json());
        assert_eq!(
            crate::export::prometheus_text(&scrambled),
            scrambled.to_prometheus()
        );
    }

    #[test]
    fn exemplars_appear_in_json_but_not_prometheus() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_seconds", "L.", &[1.0]);
        h.observe_with_exemplar(0.5, 7);
        h.observe_with_exemplar(3.0, 9);
        let s = r.snapshot();
        let j = s.to_json();
        assert!(j.contains("\"exemplar_span\":7"));
        assert!(j.contains("\"inf_exemplar_span\":9"));
        assert!(!s.to_prometheus().contains("exemplar"));
    }

    #[test]
    fn json_shape_and_accessors() {
        let s = demo().snapshot();
        let j = s.to_json();
        assert!(j.contains("\"name\":\"req_total\""));
        assert!(j.contains("\"inf_count\":1"));
        assert_eq!(s.counter("req_total"), Some(3));
        assert_eq!(s.gauge("depth"), Some(-2));
        let h = s.histogram("lat_seconds", &[("phase", "a")]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(
            s.histogram_sum("lat_seconds", &[("phase", "a")]),
            Some(h.sum)
        );
        assert!(s.get("lat_seconds", &[]).is_none());
    }
}

#[cfg(test)]
mod federation_tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn with_labels_stamps_every_entry_and_keeps_sorted_order() {
        let r = MetricsRegistry::new();
        r.counter("queries_total", "Q.").add(4);
        r.histogram_with_labels("lat_seconds", "L.", &[1.0], &[("phase", "a")])
            .observe(0.5);
        let s = r.snapshot().with_labels(&[("shard", "3")]);
        assert!(s.get("queries_total", &[("shard", "3")]).is_some());
        // Existing labels are preserved and the combined set is sorted.
        let e = s
            .get("lat_seconds", &[("phase", "a"), ("shard", "3")])
            .expect("relabelled histogram");
        assert!(e.labels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn with_labels_never_overwrites_an_explicit_label() {
        let r = MetricsRegistry::new();
        r.counter_with_labels("queries_total", "Q.", &[("shard", "9")])
            .inc();
        let s = r.snapshot().with_labels(&[("shard", "0")]);
        assert!(s.get("queries_total", &[("shard", "9")]).is_some());
        assert!(s.get("queries_total", &[("shard", "0")]).is_none());
    }

    #[test]
    fn merged_federates_shard_registries_into_distinct_series() {
        let snaps: Vec<MetricsSnapshot> = (0..3)
            .map(|i| {
                let r = MetricsRegistry::new();
                r.counter("queries_total", "Q.").add(i + 1);
                r.snapshot().with_labels(&[("shard", &i.to_string())])
            })
            .collect();
        let all = MetricsSnapshot::merged(snaps);
        assert_eq!(all.entries.len(), 3);
        for i in 0..3u64 {
            let got = all
                .get("queries_total", &[("shard", &i.to_string())])
                .expect("per-shard series");
            assert_eq!(got.value, SnapshotValue::Counter(i + 1));
        }
        // The exposition is deterministic and shows each series once.
        let text = all.to_prometheus();
        assert_eq!(text.matches("queries_total{shard=").count(), 3);
        assert_eq!(text.matches("# HELP queries_total").count(), 1);
    }
}
