//! Counted monotonic clock — the enforcement point of the zero-clock-read
//! guarantee.
//!
//! Every wall-clock read taken by the observability layer (span guards,
//! phase timers, sliding windows) and by the engine's instrumented code
//! paths goes through [`now`], which bumps a process-global counter before
//! delegating to [`Instant::now`]. The disabled-path contract — *an engine
//! with observability and explain off performs zero clock reads per query* —
//! then stops being a doc comment and becomes a testable number: a dedicated
//! test binary records [`reads`] before and after a workload and asserts the
//! delta is zero (`crates/core/tests/zero_clock.rs`,
//! `crates/router/tests/router_zero_clock.rs`).
//!
//! The counter is scoped to clock reads *routed through this module*; code
//! outside the instrumentation seam (the telemetry server's poll loop, the
//! oracle's one-off preprocessing stopwatch) deliberately keeps plain
//! `Instant::now` so background threads cannot pollute the guarantee.
//!
//! Overhead: one relaxed `fetch_add` per clock read, only ever on paths
//! that were about to pay for a syscall-backed clock read anyway.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static READS: AtomicU64 = AtomicU64::new(0);

/// A monotonic clock read, counted. Drop-in replacement for
/// [`Instant::now`] on every instrumented code path.
#[must_use]
pub fn now() -> Instant {
    READS.fetch_add(1, Ordering::Relaxed);
    Instant::now()
}

/// Total clock reads taken through [`now`] since process start.
///
/// Tests take the difference around a workload; the absolute value also
/// counts reads from other threads of the process, so zero-clock assertions
/// belong in their own test binary.
#[must_use]
pub fn reads() -> u64 {
    READS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_counts_and_advances() {
        let before = reads();
        let a = now();
        let b = now();
        assert!(b >= a);
        assert!(reads() >= before + 2);
    }
}
