//! Bounded admission gate for load shedding.
//!
//! The PR-5 serving stack accepts every request and queues unboundedly:
//! under sustained overload, latency grows without limit and memory with
//! it. [`AdmissionGate`] is the backpressure primitive that fixes this —
//! a counting gate with two bounds:
//!
//! * **`max_inflight`** — how many requests may execute concurrently.
//! * **`max_queued`** — how many may *wait* for an execution slot (the
//!   waiting room). When the waiting room is full too, [`admit`] returns
//!   [`Admission::Shed`] immediately — the caller turns that into a
//!   `Rejected{Overloaded}` outcome (HTTP 429 moral equivalent) instead
//!   of stalling.
//!
//! The gate is deliberately metrics-agnostic: it tracks its own inflight
//! and queued counts, a shed counter, and a queued high-watermark, and the
//! owning engine exports those through whatever registry it carries. This
//! keeps the primitive dependency-free and testable in isolation.
//!
//! [`admit`]: AdmissionGate::admit

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Outcome of asking the gate for entry.
#[derive(Debug)]
pub enum Admission {
    /// Request may run; drop the permit when done.
    Admitted(AdmissionPermit),
    /// Both the execution slots and the waiting room are full — shed the
    /// request immediately.
    Shed,
}

impl Admission {
    /// `true` for [`Admission::Shed`].
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(self, Admission::Shed)
    }
}

#[derive(Debug)]
struct GateState {
    inflight: usize,
    queued: usize,
}

#[derive(Debug)]
struct GateInner {
    state: Mutex<GateState>,
    freed: Condvar,
    max_inflight: usize,
    max_queued: usize,
    shed_total: AtomicU64,
    queued_high_watermark: AtomicU64,
}

/// Bounded concurrency gate with a finite waiting room and immediate shed
/// on saturation. Cloning shares the gate.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    inner: Arc<GateInner>,
}

/// RAII permit for one admitted request; releases its execution slot on
/// drop and wakes one waiter.
#[derive(Debug)]
pub struct AdmissionPermit {
    inner: Arc<GateInner>,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("admission gate");
        st.inflight -= 1;
        drop(st);
        self.inner.freed.notify_one();
    }
}

impl AdmissionGate {
    /// Creates a gate with `max_inflight` execution slots and a waiting
    /// room of `max_queued` (0 means shed as soon as all slots are busy).
    ///
    /// # Panics
    /// If `max_inflight` is 0 — a gate nobody can enter is a config bug,
    /// rejected upstream by `EngineConfigBuilder`.
    #[must_use]
    pub fn new(max_inflight: usize, max_queued: usize) -> Self {
        assert!(max_inflight > 0, "admission gate needs at least one slot");
        AdmissionGate {
            inner: Arc::new(GateInner {
                state: Mutex::new(GateState {
                    inflight: 0,
                    queued: 0,
                }),
                freed: Condvar::new(),
                max_inflight,
                max_queued,
                shed_total: AtomicU64::new(0),
                queued_high_watermark: AtomicU64::new(0),
            }),
        }
    }

    /// Asks for entry. Returns immediately with a permit when an
    /// execution slot is free; blocks in the waiting room when slots are
    /// busy but the room has space; returns [`Admission::Shed`] without
    /// blocking when both are full.
    #[must_use]
    pub fn admit(&self) -> Admission {
        let g = &self.inner;
        let mut st = g.state.lock().expect("admission gate");
        if st.inflight < g.max_inflight {
            st.inflight += 1;
            return Admission::Admitted(self.permit());
        }
        if st.queued >= g.max_queued {
            g.shed_total.fetch_add(1, Ordering::Relaxed);
            return Admission::Shed;
        }
        st.queued += 1;
        g.queued_high_watermark
            .fetch_max(st.queued as u64, Ordering::Relaxed);
        while st.inflight >= g.max_inflight {
            st = g.freed.wait(st).expect("admission gate");
        }
        st.queued -= 1;
        st.inflight += 1;
        Admission::Admitted(self.permit())
    }

    /// Non-blocking entry: a permit if an execution slot is free right
    /// now, `None` otherwise (does **not** count as a shed).
    #[must_use]
    pub fn try_admit(&self) -> Option<AdmissionPermit> {
        let g = &self.inner;
        let mut st = g.state.lock().expect("admission gate");
        if st.inflight < g.max_inflight {
            st.inflight += 1;
            Some(self.permit())
        } else {
            None
        }
    }

    fn permit(&self) -> AdmissionPermit {
        AdmissionPermit {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests currently holding execution slots.
    #[must_use]
    pub fn inflight(&self) -> usize {
        self.inner.state.lock().expect("admission gate").inflight
    }

    /// Requests currently blocked in the waiting room.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.inner.state.lock().expect("admission gate").queued
    }

    /// Total requests shed since construction.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.inner.shed_total.load(Ordering::Relaxed)
    }

    /// Highest waiting-room occupancy ever observed — by construction
    /// never exceeds [`max_queued`](Self::max_queued), which is exactly
    /// the "bounded queue depth" assertion the soak harness makes.
    #[must_use]
    pub fn queued_high_watermark(&self) -> u64 {
        self.inner.queued_high_watermark.load(Ordering::Relaxed)
    }

    /// Configured execution-slot count.
    #[must_use]
    pub fn max_inflight(&self) -> usize {
        self.inner.max_inflight
    }

    /// Configured waiting-room size.
    #[must_use]
    pub fn max_queued(&self) -> usize {
        self.inner.max_queued
    }

    /// `true` while the waiting room is at capacity — the saturation
    /// signal behind the `admission_pressure` health check (503 under
    /// overload, back to 200 once the backlog drains).
    #[must_use]
    pub fn saturated(&self) -> bool {
        let st = self.inner.state.lock().expect("admission gate");
        st.inflight >= self.inner.max_inflight && st.queued >= self.inner.max_queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn admits_up_to_max_inflight() {
        let gate = AdmissionGate::new(2, 0);
        let a = gate.admit();
        let b = gate.admit();
        assert!(!a.is_shed());
        assert!(!b.is_shed());
        assert_eq!(gate.inflight(), 2);
        // Third request: no slots, no waiting room → shed.
        assert!(gate.admit().is_shed());
        assert_eq!(gate.shed_total(), 1);
        drop(a);
        assert_eq!(gate.inflight(), 1);
        assert!(!gate.admit().is_shed());
        drop(b);
    }

    #[test]
    fn waiting_room_blocks_then_admits() {
        let gate = AdmissionGate::new(1, 1);
        let first = match gate.admit() {
            Admission::Admitted(p) => p,
            Admission::Shed => panic!("first must be admitted"),
        };
        let (tx, rx) = mpsc::channel();
        let g2 = gate.clone();
        let waiter = thread::spawn(move || {
            let a = g2.admit(); // parks in the waiting room
            tx.send(()).unwrap();
            drop(a);
        });
        // Give the waiter time to park, then confirm it is queued, not shed.
        thread::sleep(Duration::from_millis(50));
        assert_eq!(gate.queued(), 1);
        assert_eq!(gate.queued_high_watermark(), 1);
        assert!(gate.saturated());
        assert!(gate.admit().is_shed(), "room full: next request sheds");
        assert!(rx.try_recv().is_err(), "waiter still parked");
        drop(first);
        rx.recv_timeout(Duration::from_secs(5))
            .expect("waiter admitted after slot freed");
        waiter.join().unwrap();
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.queued(), 0);
        assert_eq!(gate.shed_total(), 1);
    }

    #[test]
    fn try_admit_does_not_shed_or_block() {
        let gate = AdmissionGate::new(1, 4);
        let p = gate.try_admit().expect("slot free");
        assert!(gate.try_admit().is_none());
        assert_eq!(gate.shed_total(), 0);
        drop(p);
        assert!(gate.try_admit().is_some());
    }

    #[test]
    fn counters_drain_to_zero_after_load() {
        let gate = AdmissionGate::new(4, 8);
        let mut handles = Vec::new();
        for _ in 0..16 {
            let g = gate.clone();
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    match g.admit() {
                        Admission::Admitted(p) => {
                            std::hint::black_box(&p);
                            drop(p);
                        }
                        Admission::Shed => {}
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.queued(), 0);
        assert!(gate.queued_high_watermark() <= 8);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_is_a_bug() {
        let _ = AdmissionGate::new(0, 4);
    }
}
