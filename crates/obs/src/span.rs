//! Hierarchical spans: per-query causal trees with wall-clock extents.
//!
//! A [`Span`] is one named interval of work with a parent link, so a query's
//! phases (candidates → local inference per pair → global K-GRI → refine)
//! form a tree rooted at the query span. Spans are collected per query into
//! a [`SpanCollector`] and shipped inside the query's
//! [`TraceRecord`](crate::TraceRecord), which keeps the hot path free of any
//! global span storage: the only cross-query state is the id allocator, one
//! relaxed `fetch_add` per span.
//!
//! Span ids are process-unique (a single atomic counter starting at 1, with
//! 0 reserved as "no span"), which is what lets a histogram **exemplar**
//! ([`Histogram::observe_with_exemplar`](crate::Histogram::observe_with_exemplar))
//! point from a latency bucket back into the trace ring.
//!
//! Capturing a span costs two clock reads (start/finish) plus one mutex push
//! into the collector, so collection is **sampled**: a [`SpanSampler`]
//! admits 1-in-N queries, and the engine synthesizes a tree from its
//! already-measured phase timings for slow queries that missed the sample
//! (see [`synthetic_tree`]) — no extra clock reads on the unsampled path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide span id allocator. Ids start at 1; 0 means "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique span id (never 0).
#[must_use]
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// Process-wide trace id allocator. Ids start at 1; 0 means "untraced".
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique trace id (never 0). One relaxed
/// `fetch_add`, no clock reads — minting a trace id is as cheap as minting
/// a span id, and the single shared counter makes collisions across
/// concurrent batches impossible by construction (pinned by the router's
/// trace-propagation proptests).
#[must_use]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The propagated identity of one distributed query: which trace the work
/// belongs to and which span fathered it.
///
/// The sharded router mints one context per query at the routing decision
/// ([`TraceContext::mint`]) and threads it through delegation, pinned
/// scatter batches and the router-side splice; each stage derives its
/// children with [`TraceContext::child`], so every span of a cross-shard
/// query lands in one stitched tree under one trace id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The query-unique trace id (never 0 for a minted context).
    pub trace_id: u64,
    /// The span id the next stage should parent under (0 = tree root).
    pub parent_span: u64,
}

impl TraceContext {
    /// Mints a fresh root context: a new trace id, parented at the root.
    #[must_use]
    pub fn mint() -> Self {
        TraceContext {
            trace_id: next_trace_id(),
            parent_span: 0,
        }
    }

    /// The same trace, re-parented under `span` — hand this to the next
    /// stage (a shard, the splice) so its spans nest correctly.
    #[must_use]
    pub fn child(self, span: u64) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            parent_span: span,
        }
    }
}

/// One attribute value on a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer payload (counts, sizes).
    Int(i64),
    /// Float payload (scores, seconds).
    Float(f64),
    /// Text payload (modes, outcomes).
    Text(String),
}

impl AttrValue {
    /// This value as one JSON token.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            AttrValue::Int(v) => v.to_string(),
            AttrValue::Float(v) => crate::export::fmt_f64(*v),
            AttrValue::Text(s) => format!("\"{}\"", crate::export::escape_json(s)),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_string())
    }
}

/// One finished span: a named wall-clock interval inside a query, with a
/// parent link (0 = root) and optional key-value attributes.
///
/// `start_s` is the offset from the owning collector's origin (the moment
/// the query's root span opened), so a whole tree is self-contained and
/// needs no absolute timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Process-unique id (never 0).
    pub id: u64,
    /// Parent span id, or 0 for the tree root.
    pub parent: u64,
    /// Phase name (`query`, `candidates`, `local`, `pair`, `global`,
    /// `refine`, …).
    pub name: String,
    /// Start offset in seconds from the collector origin.
    pub start_s: f64,
    /// Wall-clock extent in seconds.
    pub duration_s: f64,
    /// Key-value attributes, in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
}

impl Span {
    /// This span as one JSON object (compact, stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_s\":{},\"duration_s\":{}",
            self.id,
            self.parent,
            crate::export::escape_json(&self.name),
            crate::export::fmt_f64(self.start_s),
            crate::export::fmt_f64(self.duration_s),
        );
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":{}",
                    crate::export::escape_json(k),
                    v.to_json()
                ));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Collects the spans of one query into a tree.
///
/// The collector is `Sync`: concurrent pair workers can open child guards
/// against the same collector (each finished span takes the internal mutex
/// once, on close). Dropping the collector drops its spans — the engine
/// moves them into the query's `TraceRecord` via [`SpanCollector::into_spans`].
#[derive(Debug)]
pub struct SpanCollector {
    origin: Instant,
    spans: Mutex<Vec<Span>>,
}

impl Default for SpanCollector {
    fn default() -> Self {
        SpanCollector::new()
    }
}

impl SpanCollector {
    /// An empty collector; its origin (the zero of every `start_s`) is
    /// pinned to the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        SpanCollector {
            origin: crate::clock::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Opens the root span (parent 0).
    pub fn root(&self, name: &str) -> SpanGuard<'_> {
        self.guard(name, 0)
    }

    /// Opens a child span under `parent` (a span id from a live guard).
    pub fn child(&self, parent: u64, name: &str) -> SpanGuard<'_> {
        self.guard(name, parent)
    }

    fn guard(&self, name: &str, parent: u64) -> SpanGuard<'_> {
        let start = crate::clock::now();
        SpanGuard {
            collector: self,
            id: next_span_id(),
            parent,
            name: name.to_string(),
            start,
            start_s: start.duration_since(self.origin).as_secs_f64(),
            attrs: Vec::new(),
            armed: true,
        }
    }

    /// Appends an externally built span (used for synthetic trees).
    pub fn record(&self, span: Span) {
        self.spans.lock().expect("span collector").push(span);
    }

    /// Records a zero-duration marker span — a **span event** — under
    /// `parent`: shard health flips, reroutes, degraded/rejected outcomes.
    /// One clock read (the event's position on the trace timeline); returns
    /// the event's span id.
    pub fn event(&self, parent: u64, name: &str, attrs: Vec<(String, AttrValue)>) -> u64 {
        let id = next_span_id();
        let start_s = crate::clock::now()
            .duration_since(self.origin)
            .as_secs_f64();
        self.record(Span {
            id,
            parent,
            name: name.to_string(),
            start_s,
            duration_s: 0.0,
            attrs,
        });
        id
    }

    /// Number of finished spans collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span collector").len()
    }

    /// True when no span has finished yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the collector, returning its spans sorted by
    /// `(start_s, id)` — parents precede their children, concurrent
    /// siblings tie-break on allocation order.
    #[must_use]
    pub fn into_spans(self) -> Vec<Span> {
        let mut spans = self.spans.into_inner().expect("span collector");
        spans.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then_with(|| a.id.cmp(&b.id))
        });
        spans
    }
}

/// An open span: records itself into the collector when finished (or
/// dropped), RAII-style. Costs one clock read on open and one on close.
#[must_use = "a dropped-immediately guard records a ~0s span"]
#[derive(Debug)]
pub struct SpanGuard<'c> {
    collector: &'c SpanCollector,
    id: u64,
    parent: u64,
    name: String,
    start: Instant,
    start_s: f64,
    attrs: Vec<(String, AttrValue)>,
    armed: bool,
}

impl SpanGuard<'_> {
    /// This span's id — hand it to children and to histogram exemplars.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a key-value attribute.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        self.attrs.push((key.to_string(), value.into()));
    }

    /// Closes the span now and returns its duration in seconds.
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let duration_s = crate::clock::now()
            .duration_since(self.start)
            .as_secs_f64();
        self.armed = false;
        self.collector.record(Span {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            start_s: self.start_s,
            duration_s,
            attrs: std::mem::take(&mut self.attrs),
        });
        duration_s
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.close();
        }
    }
}

/// Deterministic 1-in-N admission: query `k` is sampled iff `k % every == 0`
/// (with `every == 0` disabling sampling entirely). One relaxed `fetch_add`
/// per decision; no clock reads.
#[derive(Debug)]
pub struct SpanSampler {
    every: u64,
    counter: AtomicU64,
}

impl SpanSampler {
    /// A sampler admitting one query in `every` (0 admits none).
    #[must_use]
    pub fn new(every: u64) -> Self {
        SpanSampler {
            every,
            counter: AtomicU64::new(0),
        }
    }

    /// The configured period.
    #[must_use]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Draws the next admission decision.
    #[must_use]
    pub fn sample(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.every)
    }
}

/// Builds a complete query span tree from already-measured phase durations:
/// a root named `root_name` spanning `total_s`, with one child per
/// `(name, duration_s)` phase laid out back-to-back from the root's start.
///
/// This is how a slow query that missed the 1-in-N sample still ships a
/// full causal tree — the phase durations were measured anyway for the
/// phase histograms, so synthesis costs id allocations only, **zero**
/// additional clock reads. Synthesized spans carry the attr
/// `synthetic: 1`.
///
/// Returns `(root_id, spans)`.
#[must_use]
pub fn synthetic_tree(root_name: &str, total_s: f64, phases: &[(&str, f64)]) -> (u64, Vec<Span>) {
    let root_id = next_span_id();
    let mut spans = Vec::with_capacity(phases.len() + 1);
    spans.push(Span {
        id: root_id,
        parent: 0,
        name: root_name.to_string(),
        start_s: 0.0,
        duration_s: total_s,
        attrs: vec![("synthetic".to_string(), AttrValue::Int(1))],
    });
    let mut at = 0.0;
    for (name, dur) in phases {
        spans.push(Span {
            id: next_span_id(),
            parent: root_id,
            name: (*name).to_string(),
            start_s: at,
            duration_s: *dur,
            attrs: vec![("synthetic".to_string(), AttrValue::Int(1))],
        });
        at += dur;
    }
    (root_id, spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = next_span_id();
        let b = next_span_id();
        assert!(a != 0 && b != 0 && a != b);
    }

    #[test]
    fn trace_ids_are_unique_and_contexts_reparent() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert!(a.trace_id != 0 && b.trace_id != 0 && a.trace_id != b.trace_id);
        assert_eq!(a.parent_span, 0);
        let c = a.child(17);
        assert_eq!(c.trace_id, a.trace_id);
        assert_eq!(c.parent_span, 17);
    }

    #[test]
    fn events_are_zero_duration_marker_spans() {
        let c = SpanCollector::new();
        let root = c.root("query");
        let root_id = root.id();
        let ev = c.event(
            root_id,
            "reroute",
            vec![("from".to_string(), AttrValue::Int(2))],
        );
        let _ = root.finish();
        let spans = c.into_spans();
        let event = spans.iter().find(|s| s.id == ev).expect("event recorded");
        assert_eq!(event.parent, root_id);
        assert_eq!(event.duration_s, 0.0);
        assert_eq!(event.name, "reroute");
        assert_eq!(event.attrs[0].0, "from");
    }

    #[test]
    fn guard_tree_records_parent_links_and_ordering() {
        let c = SpanCollector::new();
        let root = c.root("query");
        let root_id = root.id();
        {
            let mut child = c.child(root_id, "local");
            child.attr("pairs", 4usize);
            let grand = c.child(child.id(), "pair");
            let _ = grand.finish();
            let _ = child.finish();
        }
        let _ = root.finish();
        let spans = c.into_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].name, "local");
        assert_eq!(spans[1].parent, root_id);
        assert_eq!(spans[2].parent, spans[1].id);
        assert_eq!(
            spans[1].attrs,
            vec![("pairs".to_string(), AttrValue::Int(4))]
        );
        // Children start at or after their parent and fit inside it
        // (same-clock reads, so exact inequalities hold).
        assert!(spans[1].start_s >= spans[0].start_s);
        assert!(spans[1].duration_s <= spans[0].duration_s);
    }

    #[test]
    fn dropping_a_guard_records_it() {
        let c = SpanCollector::new();
        {
            let _root = c.root("query");
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn sampler_admits_one_in_n() {
        let s = SpanSampler::new(4);
        let admitted: Vec<bool> = (0..8).map(|_| s.sample()).collect();
        assert_eq!(
            admitted,
            vec![true, false, false, false, true, false, false, false]
        );
        let off = SpanSampler::new(0);
        assert!((0..10).all(|_| !off.sample()));
    }

    #[test]
    fn synthetic_tree_is_complete_and_flagged() {
        let (root_id, spans) = synthetic_tree("query", 1.0, &[("candidates", 0.1), ("local", 0.7)]);
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].id, root_id);
        assert!(spans.iter().skip(1).all(|s| s.parent == root_id));
        assert!((spans[2].start_s - 0.1).abs() < 1e-12);
        assert!(spans.iter().all(|s| s
            .attrs
            .contains(&("synthetic".to_string(), AttrValue::Int(1)))));
        let phase_sum: f64 = spans.iter().skip(1).map(|s| s.duration_s).sum();
        assert!((phase_sum - 0.8).abs() < 1e-12);
    }

    #[test]
    fn span_json_shape() {
        let s = Span {
            id: 3,
            parent: 1,
            name: "local".to_string(),
            start_s: 0.5,
            duration_s: 0.25,
            attrs: vec![
                ("pairs".to_string(), AttrValue::Int(4)),
                ("mode".to_string(), AttrValue::Text("tgi".to_string())),
            ],
        };
        assert_eq!(
            s.to_json(),
            "{\"id\":3,\"parent\":1,\"name\":\"local\",\"start_s\":0.5,\
             \"duration_s\":0.25,\"attrs\":{\"pairs\":4,\"mode\":\"tgi\"}}"
        );
        let bare = Span {
            id: 1,
            parent: 0,
            name: "query".to_string(),
            start_s: 0.0,
            duration_s: 1.0,
            attrs: Vec::new(),
        };
        assert!(!bare.to_json().contains("attrs"));
    }
}
