//! Stitching distributed spans into one validated trace.
//!
//! The sharded router threads one [`SpanCollector`](crate::SpanCollector)
//! (via a [`TraceContext`](crate::TraceContext)) through every stage of a
//! cross-shard query — routing, each shard's pinned local inference, the
//! gather, the splice, the rerank — so all spans share one clock origin.
//! What remains before serving the tree is *validation*: prove the spans
//! really form one tree (exactly one root, every parent resolvable) and
//! stamp them into a [`TraceRecord`]. That is the [`TraceAssembler`]'s job;
//! the router's propagation proptests drive it over arbitrary scatter
//! patterns, and a malformed tree is a loud [`AssembleError`] instead of a
//! silently wrong `/debug/traces` entry.

use crate::span::Span;
use crate::trace::TraceRecord;
use std::collections::HashSet;

/// Why a span set could not be assembled into one stitched trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssembleError {
    /// No span had parent 0 — there is nothing to root the tree at.
    NoRoot,
    /// More than one span had parent 0; the count is attached.
    MultipleRoots(usize),
    /// A span referenced a parent id that is not in the set.
    DanglingParent {
        /// The offending span's id.
        span: u64,
        /// The parent id it referenced.
        parent: u64,
    },
}

impl std::fmt::Display for AssembleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssembleError::NoRoot => write!(f, "span set has no root (parent 0) span"),
            AssembleError::MultipleRoots(n) => {
                write!(f, "span set has {n} roots; a stitched trace has exactly 1")
            }
            AssembleError::DanglingParent { span, parent } => {
                write!(f, "span {span} references missing parent {parent}")
            }
        }
    }
}

impl std::error::Error for AssembleError {}

/// Assembles the spans of one distributed query into a validated, stitched
/// [`TraceRecord`].
///
/// Collect spans from every stage with [`TraceAssembler::add_spans`], then
/// [`TraceAssembler::finish`] validates the tree shape, sorts the spans by
/// `(start_s, id)` and stamps trace id + root span onto the record the
/// caller provides (with its counts and timings already filled in).
#[derive(Debug)]
pub struct TraceAssembler {
    trace_id: u64,
    spans: Vec<Span>,
}

impl TraceAssembler {
    /// An empty assembler for the given trace.
    #[must_use]
    pub fn new(trace_id: u64) -> Self {
        TraceAssembler {
            trace_id,
            spans: Vec::new(),
        }
    }

    /// The trace id this assembler stitches for.
    #[must_use]
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Adds one stage's finished spans (e.g. a collector's
    /// [`into_spans`](crate::SpanCollector::into_spans) output).
    pub fn add_spans(&mut self, spans: Vec<Span>) {
        self.spans.extend(spans);
    }

    /// Spans gathered so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span has been added yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Validates the gathered spans as exactly one tree and returns `rec`
    /// with `trace_id`, `root_span` and the sorted `spans` stamped in.
    ///
    /// # Errors
    /// [`AssembleError`] when the spans have no root, several roots, or a
    /// dangling parent link.
    pub fn finish(self, mut rec: TraceRecord) -> Result<TraceRecord, AssembleError> {
        let ids: HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        let mut root = 0u64;
        let mut roots = 0usize;
        for s in &self.spans {
            if s.parent == 0 {
                root = s.id;
                roots += 1;
            } else if !ids.contains(&s.parent) {
                return Err(AssembleError::DanglingParent {
                    span: s.id,
                    parent: s.parent,
                });
            }
        }
        match roots {
            0 => return Err(AssembleError::NoRoot),
            1 => {}
            n => return Err(AssembleError::MultipleRoots(n)),
        }
        let mut spans = self.spans;
        spans.sort_by(|a, b| {
            a.start_s
                .total_cmp(&b.start_s)
                .then_with(|| a.id.cmp(&b.id))
        });
        rec.trace_id = self.trace_id;
        rec.root_span = root;
        rec.spans = spans;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCollector;

    fn span(id: u64, parent: u64, start_s: f64) -> Span {
        Span {
            id,
            parent,
            name: "s".to_string(),
            start_s,
            duration_s: 0.0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn assembles_one_tree_and_stamps_the_record() {
        let mut asm = TraceAssembler::new(42);
        asm.add_spans(vec![span(10, 0, 0.0)]);
        asm.add_spans(vec![span(12, 11, 0.3), span(11, 10, 0.1)]);
        assert_eq!(asm.len(), 3);
        let rec = asm.finish(TraceRecord::default()).expect("valid tree");
        assert_eq!(rec.trace_id, 42);
        assert_eq!(rec.root_span, 10);
        let ids: Vec<u64> = rec.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![10, 11, 12], "sorted by (start_s, id)");
    }

    #[test]
    fn rejects_rootless_multi_root_and_dangling_sets() {
        let asm = TraceAssembler::new(1);
        assert!(asm.is_empty());
        assert_eq!(
            asm.finish(TraceRecord::default()),
            Err(AssembleError::NoRoot)
        );

        let mut asm = TraceAssembler::new(1);
        asm.add_spans(vec![span(1, 0, 0.0), span(2, 0, 0.1)]);
        assert_eq!(
            asm.finish(TraceRecord::default()),
            Err(AssembleError::MultipleRoots(2))
        );

        let mut asm = TraceAssembler::new(1);
        asm.add_spans(vec![span(1, 0, 0.0), span(3, 99, 0.1)]);
        assert_eq!(
            asm.finish(TraceRecord::default()),
            Err(AssembleError::DanglingParent { span: 3, parent: 99 })
        );
    }

    #[test]
    fn stitches_spans_from_a_real_collector() {
        let c = SpanCollector::new();
        let root = c.root("query");
        let root_id = root.id();
        let child = c.child(root_id, "shard");
        let _ = child.finish();
        let _ = root.finish();
        let mut asm = TraceAssembler::new(7);
        asm.add_spans(c.into_spans());
        let rec = asm.finish(TraceRecord::default()).expect("valid");
        assert_eq!(rec.root_span, root_id);
        assert_eq!(rec.spans.len(), 2);
    }
}
