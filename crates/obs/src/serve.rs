//! A zero-dependency blocking HTTP/1.1 telemetry server.
//!
//! Serves the observability surface of a running engine over plain std
//! networking (`TcpListener`, no crates.io), one short-lived connection at
//! a time — scrape traffic is a Prometheus poll every few seconds plus the
//! occasional operator curl, so a single blocking thread is the simplest
//! thing that is obviously correct. Endpoints:
//!
//! | Path            | Content | Body |
//! |-----------------|---------|------|
//! | `/metrics`      | `text/plain; version=0.0.4` | Prometheus text, byte-identical to [`prometheus_text`](crate::export::prometheus_text) of the scrape-time snapshot |
//! | `/healthz`      | `application/json` | `{"status", "checks"}`; HTTP 503 when any check fails |
//! | `/varz`         | `application/json` | uptime, full metrics snapshot, caller-provided sections (e.g. rolling quantiles) |
//! | `/debug/traces` | `application/json` | the trace ring, span trees included |
//! | `/debug/slow`   | `application/json` | only the slow-flagged traces |
//!
//! Anything else is 404; non-GET methods are 405. Requests are parsed only
//! as far as the request line — headers are read and discarded.
//!
//! The server never touches engine internals directly: it is configured
//! with a registry handle, an optional [`TraceRing`] clone, and closures
//! for health checks, pre-scrape refresh (e.g. updating a staleness gauge)
//! and extra `/varz` sections. That keeps `hris-obs` dependency-free and
//! lets any binary — engine, ingest worker, test — expose telemetry.

use crate::export::{prometheus_text, MetricsSnapshot};
use crate::registry::MetricsRegistry;
use crate::trace::TraceRing;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Outcome of one health check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// The checked subsystem is live.
    Ok,
    /// The checked subsystem is unhealthy, with a reason.
    Unhealthy(String),
}

type CheckFn = Box<dyn Fn() -> Health + Send + Sync>;
type HookFn = Box<dyn Fn() + Send + Sync>;
type VarzFn = Box<dyn Fn() -> String + Send + Sync>;
type SnapshotFn = Box<dyn Fn() -> MetricsSnapshot + Send + Sync>;
type DebugFn = Box<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// Everything a telemetry server serves: built once, then handed to
/// [`ServeState::serve`].
pub struct ServeState {
    registry: Arc<MetricsRegistry>,
    traces: Option<TraceRing>,
    checks: Vec<(String, CheckFn)>,
    pre_scrape: Vec<HookFn>,
    varz: Vec<(String, VarzFn)>,
    snapshot: Option<SnapshotFn>,
    debug: Vec<(String, DebugFn)>,
}

impl ServeState {
    /// A server state exposing this registry (and nothing else yet).
    #[must_use]
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        ServeState {
            registry,
            traces: None,
            checks: Vec::new(),
            pre_scrape: Vec::new(),
            varz: Vec::new(),
            snapshot: None,
            debug: Vec::new(),
        }
    }

    /// Exposes a trace ring on `/debug/traces` and `/debug/slow` (pass a
    /// clone — the ring shares storage).
    #[must_use]
    pub fn with_traces(mut self, ring: TraceRing) -> Self {
        self.traces = Some(ring);
        self
    }

    /// Adds a named health check; `/healthz` reports 503 when any check
    /// returns [`Health::Unhealthy`].
    #[must_use]
    pub fn health_check(
        mut self,
        name: &str,
        check: impl Fn() -> Health + Send + Sync + 'static,
    ) -> Self {
        self.checks.push((name.to_string(), Box::new(check)));
        self
    }

    /// Adds a hook run before every `/metrics`, `/healthz` and `/varz`
    /// response — the place to refresh scrape-time gauges such as
    /// `hris_snapshot_age_seconds`.
    #[must_use]
    pub fn pre_scrape(mut self, hook: impl Fn() + Send + Sync + 'static) -> Self {
        self.pre_scrape.push(Box::new(hook));
        self
    }

    /// Adds a named `/varz` section; the closure must return one JSON
    /// value (object, array or scalar), embedded verbatim.
    #[must_use]
    pub fn varz_section(
        mut self,
        name: &str,
        section: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        self.varz.push((name.to_string(), Box::new(section)));
        self
    }

    /// Replaces the snapshot behind `/metrics` and `/varz` with a
    /// caller-provided one — e.g. a sharded router's federated snapshot
    /// merging every shard's registry under a `shard` label — instead of
    /// the constructor registry's own.
    #[must_use]
    pub fn snapshot_provider(
        mut self,
        provider: impl Fn() -> MetricsSnapshot + Send + Sync + 'static,
    ) -> Self {
        self.snapshot = Some(Box::new(provider));
        self
    }

    /// Mounts a JSON debug handler under a path prefix (e.g.
    /// `/debug/explain`). The handler receives the remainder of the
    /// request path with any leading `/` removed — `""` for the bare
    /// prefix, `"42"` for `/debug/explain/42` — and returns the JSON body,
    /// or `None` for a 404. Built-in paths win over prefixes; prefixes are
    /// tried in registration order.
    #[must_use]
    pub fn debug_handler(
        mut self,
        prefix: &str,
        handler: impl Fn(&str) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        self.debug.push((prefix.to_string(), Box::new(handler)));
        self
    }

    /// Binds `addr` (e.g. `"127.0.0.1:9100"`; port 0 picks a free port)
    /// and starts the serving thread. The returned handle stops the server
    /// when shut down or dropped.
    pub fn serve(self, addr: impl ToSocketAddrs) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let started = Instant::now();
        let handle = std::thread::Builder::new()
            .name("hris-telemetry".to_string())
            .spawn(move || {
                while !stop_thread.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => self.handle_connection(stream, started),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    fn handle_connection(&self, mut stream: TcpStream, started: Instant) {
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let Some((method, path)) = read_request_line(&mut stream) else {
            return;
        };
        let (status, content_type, body) = if method != "GET" {
            (
                405,
                "application/json",
                "{\"error\":\"method not allowed\"}".to_string(),
            )
        } else {
            self.respond(path.split('?').next().unwrap_or(&path), started)
        };
        let reason = match status {
            200 => "OK",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        };
        let _ = write!(
            stream,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = stream.write_all(body.as_bytes());
        let _ = stream.flush();
    }

    /// Routes one GET; returns `(status, content type, body)`.
    fn respond(&self, path: &str, started: Instant) -> (u16, &'static str, String) {
        match path {
            "/metrics" => {
                self.run_pre_scrape();
                let body = prometheus_text(&self.scrape_snapshot());
                (200, "text/plain; version=0.0.4; charset=utf-8", body)
            }
            "/healthz" => {
                self.run_pre_scrape();
                let mut healthy = true;
                let mut checks = String::new();
                for (i, (name, check)) in self.checks.iter().enumerate() {
                    if i > 0 {
                        checks.push(',');
                    }
                    let verdict = match check() {
                        Health::Ok => "\"ok\"".to_string(),
                        Health::Unhealthy(reason) => {
                            healthy = false;
                            format!("\"{}\"", crate::export::escape_json(&reason))
                        }
                    };
                    checks.push_str(&format!(
                        "\"{}\":{verdict}",
                        crate::export::escape_json(name)
                    ));
                }
                let status = if healthy { "ok" } else { "unhealthy" };
                let body = format!("{{\"status\":\"{status}\",\"checks\":{{{checks}}}}}");
                (if healthy { 200 } else { 503 }, "application/json", body)
            }
            "/varz" => {
                self.run_pre_scrape();
                let mut body = format!(
                    "{{\"uptime_seconds\":{},\"metrics\":{}",
                    crate::export::fmt_f64(started.elapsed().as_secs_f64()),
                    self.scrape_snapshot().to_json()
                );
                for (name, section) in &self.varz {
                    body.push_str(&format!(
                        ",\"{}\":{}",
                        crate::export::escape_json(name),
                        section()
                    ));
                }
                body.push('}');
                (200, "application/json", body)
            }
            "/debug/traces" => (200, "application/json", self.traces_json(false)),
            "/debug/slow" => (200, "application/json", self.traces_json(true)),
            other => {
                for (prefix, handler) in &self.debug {
                    let Some(rest) = other.strip_prefix(prefix.as_str()) else {
                        continue;
                    };
                    if !rest.is_empty() && !rest.starts_with('/') {
                        continue; // /debug/explainer must not match /debug/explain
                    }
                    if let Some(body) = handler(rest.strip_prefix('/').unwrap_or(rest)) {
                        return (200, "application/json", body);
                    }
                }
                (
                    404,
                    "application/json",
                    "{\"error\":\"not found\"}".to_string(),
                )
            }
        }
    }

    fn run_pre_scrape(&self) {
        for hook in &self.pre_scrape {
            hook();
        }
    }

    /// The scrape-time snapshot: the provider's when one is configured,
    /// otherwise the constructor registry's.
    fn scrape_snapshot(&self) -> MetricsSnapshot {
        match &self.snapshot {
            Some(provider) => provider(),
            None => self.registry.snapshot(),
        }
    }

    fn traces_json(&self, slow_only: bool) -> String {
        let Some(ring) = &self.traces else {
            return "{\"dropped\":0,\"traces\":[]}".to_string();
        };
        let traces = ring
            .snapshot()
            .iter()
            .filter(|r| !slow_only || r.slow)
            .map(crate::trace::TraceRecord::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!("{{\"dropped\":{},\"traces\":[{traces}]}}", ring.dropped())
    }
}

/// Reads up to the end of the request headers and returns the request
/// line's `(method, path)`. `None` on malformed or timed-out input.
fn read_request_line(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some((method, path))
}

/// A running telemetry server. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the serving thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the serving thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One blocking GET against a local server; returns (status, body).
    pub(crate) fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    fn demo_registry() -> Arc<MetricsRegistry> {
        let r = MetricsRegistry::new();
        r.counter("req_total", "Requests.").add(3);
        r.gauge("depth", "Depth.").set(-2);
        Arc::new(r)
    }

    #[test]
    fn metrics_endpoint_matches_prometheus_text() {
        let registry = demo_registry();
        let server = ServeState::new(Arc::clone(&registry))
            .serve("127.0.0.1:0")
            .expect("bind");
        let (status, body) = http_get(server.addr(), "/metrics");
        assert_eq!(status, 200);
        assert_eq!(body, prometheus_text(&registry.snapshot()));
        server.shutdown();
    }

    #[test]
    fn healthz_reports_and_flips() {
        let healthy = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&healthy);
        let server = ServeState::new(demo_registry())
            .health_check("engine", || Health::Ok)
            .health_check("ingest", move || {
                if flag.load(Ordering::Relaxed) {
                    Health::Ok
                } else {
                    Health::Unhealthy("snapshot too old".to_string())
                }
            })
            .serve("127.0.0.1:0")
            .expect("bind");
        let (status, body) = http_get(server.addr(), "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
        healthy.store(false, Ordering::Relaxed);
        let (status, body) = http_get(server.addr(), "/healthz");
        assert_eq!(status, 503);
        assert!(body.contains("\"status\":\"unhealthy\""));
        assert!(body.contains("snapshot too old"));
    }

    #[test]
    fn varz_embeds_metrics_and_sections() {
        let server = ServeState::new(demo_registry())
            .varz_section("latency", || "{\"p50_1m\":0.1}".to_string())
            .serve("127.0.0.1:0")
            .expect("bind");
        let (status, body) = http_get(server.addr(), "/varz");
        assert_eq!(status, 200);
        assert!(body.contains("\"uptime_seconds\":"));
        assert!(body.contains("\"name\":\"req_total\""));
        assert!(body.contains("\"latency\":{\"p50_1m\":0.1}"));
    }

    #[test]
    fn debug_traces_and_slow_filter() {
        use crate::trace::{TraceRecord, TraceRing};
        let ring = TraceRing::new(8);
        let _ = ring.push(TraceRecord {
            query_id: 1,
            ..TraceRecord::default()
        });
        let _ = ring.push(TraceRecord {
            query_id: 2,
            slow: true,
            ..TraceRecord::default()
        });
        let server = ServeState::new(demo_registry())
            .with_traces(ring.clone())
            .serve("127.0.0.1:0")
            .expect("bind");
        let (_, all) = http_get(server.addr(), "/debug/traces");
        assert!(all.contains("\"query_id\":1") && all.contains("\"query_id\":2"));
        let (_, slow) = http_get(server.addr(), "/debug/slow");
        assert!(!slow.contains("\"query_id\":1") && slow.contains("\"query_id\":2"));
    }

    #[test]
    fn unknown_path_404_and_post_405() {
        let server = ServeState::new(demo_registry())
            .serve("127.0.0.1:0")
            .expect("bind");
        let (status, _) = http_get(server.addr(), "/nope");
        assert_eq!(status, 404);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"));
    }

    #[test]
    fn snapshot_provider_overrides_metrics_and_varz() {
        let federated = MetricsRegistry::new();
        federated.counter("shard_req_total", "Per-shard requests.").add(9);
        let snap = federated.snapshot().with_labels(&[("shard", "3")]);
        let server = ServeState::new(demo_registry())
            .snapshot_provider(move || snap.clone())
            .serve("127.0.0.1:0")
            .expect("bind");
        let (_, body) = http_get(server.addr(), "/metrics");
        assert!(body.contains("shard_req_total{shard=\"3\"} 9"));
        assert!(!body.contains("req_total 3"), "constructor registry replaced");
        let (_, varz) = http_get(server.addr(), "/varz");
        assert!(varz.contains("\"name\":\"shard_req_total\""));
    }

    #[test]
    fn debug_handlers_route_by_prefix() {
        let server = ServeState::new(demo_registry())
            .debug_handler("/debug/shards", |rest| {
                rest.is_empty().then(|| "{\"shards\":2}".to_string())
            })
            .debug_handler("/debug/explain", |id| {
                (id == "42").then(|| "{\"trace_id\":42}".to_string())
            })
            .serve("127.0.0.1:0")
            .expect("bind");
        let (status, body) = http_get(server.addr(), "/debug/shards");
        assert_eq!((status, body.as_str()), (200, "{\"shards\":2}"));
        let (status, body) = http_get(server.addr(), "/debug/explain/42");
        assert_eq!((status, body.as_str()), (200, "{\"trace_id\":42}"));
        let (status, _) = http_get(server.addr(), "/debug/explain/7");
        assert_eq!(status, 404, "handler None is a 404");
        let (status, _) = http_get(server.addr(), "/debug/explainer");
        assert_eq!(status, 404, "prefix must end at a path boundary");
        let (status, _) = http_get(server.addr(), "/debug/traces");
        assert_eq!(status, 200, "built-in paths still served");
    }

    #[test]
    fn pre_scrape_hook_runs_before_metrics() {
        let registry = demo_registry();
        let gauge = registry.gauge("age_seconds", "Age.");
        let server = ServeState::new(Arc::clone(&registry))
            .pre_scrape(move || gauge.set(42))
            .serve("127.0.0.1:0")
            .expect("bind");
        let (_, body) = http_get(server.addr(), "/metrics");
        assert!(body.contains("age_seconds 42"));
    }
}
