//! Fixed-bucket histograms over `f64` observations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default bucket upper bounds for wall-clock phase timings, in seconds:
/// a 1–2.5–5 ladder from 10 µs to 10 s. Chosen so both a sub-millisecond
/// candidate lookup and a multi-second full-city query land in an interior
/// bucket.
pub const DEFAULT_TIME_BOUNDS: [f64; 19] = [
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
];

/// Bucket upper bounds for fine-grained control-plane latencies, in
/// seconds: a 1–2.5–5 ladder from 100 ns to 100 ms. Made for operations
/// that are usually sub-microsecond but occasionally pay a structural cost
/// — e.g. an epoch snapshot swap, which is an `Arc` pointer exchange in
/// the common case but follows an `O(n)` archive clone on publish.
pub const FINE_TIME_BOUNDS: [f64; 19] = [
    1e-7, 2.5e-7, 5e-7, 1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3,
    5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
];

/// A fixed-bucket histogram: `bounds.len() + 1` counters (one per upper
/// bound, plus the implicit `+Inf` overflow bucket), a running sum and a
/// total count, all updated with relaxed atomics.
///
/// Cloning shares the underlying storage, so a `Histogram` handle can be
/// held by many threads; observations are lock-free.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

#[derive(Debug)]
struct HistogramCore {
    /// Strictly increasing, finite upper bounds (Prometheus `le` semantics:
    /// a value `v` lands in the first bucket with `v <= bound`).
    bounds: Vec<f64>,
    /// One counter per bound, plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    /// Per-bucket exemplar slot: the span id of the last
    /// [`Histogram::observe_with_exemplar`] that landed in the bucket
    /// (0 = none; span ids are allocated from 1).
    exemplars: Vec<AtomicU64>,
    /// Bit pattern of the running `f64` sum of finite observations.
    sum_bits: AtomicU64,
    /// Total observations (including non-finite ones).
    count: AtomicU64,
}

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// The upper bounds the histogram was created with.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// overflow bucket, so `counts.len() == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all finite observed values.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
    /// Per-bucket exemplar: the span id of the most recent exemplar-carrying
    /// observation in that bucket, if any. Same length and order as
    /// `counts`.
    pub exemplars: Vec<Option<u64>>,
}

impl Histogram {
    /// A histogram with the given upper bounds.
    ///
    /// # Panics
    /// Panics when a bound is non-finite or the bounds are not strictly
    /// increasing (an empty list is allowed: everything lands in `+Inf`).
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly increasing");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                exemplars: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// A histogram with the [`DEFAULT_TIME_BOUNDS`] seconds ladder.
    #[must_use]
    pub fn time() -> Self {
        Histogram::new(&DEFAULT_TIME_BOUNDS)
    }

    /// Records one observation. A non-finite value counts toward `count`
    /// and the `+Inf` bucket but is excluded from `sum` (mirroring what a
    /// JSON export could represent).
    pub fn observe(&self, v: f64) {
        self.record(v, 0);
    }

    /// Records one observation and stamps the landing bucket's exemplar
    /// slot with `span_id`, linking the bucket to a concrete trace (a
    /// later export shows the last span that landed there). A `span_id`
    /// of 0 means "no exemplar" and behaves like [`Histogram::observe`].
    pub fn observe_with_exemplar(&self, v: f64, span_id: u64) {
        self.record(v, span_id);
    }

    fn record(&self, v: f64, span_id: u64) {
        let idx = if v.is_finite() {
            self.core.bounds.partition_point(|&b| b < v)
        } else {
            self.core.bounds.len()
        };
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if span_id != 0 {
            self.core.exemplars[idx].store(span_id, Ordering::Relaxed);
        }
        if v.is_finite() {
            // CAS loop: `AtomicF64` without leaving std.
            let mut cur = self.core.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.core.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Two handles observe into the same storage iff they are clones of one
    /// histogram.
    #[must_use]
    pub fn same_storage(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.core, &other.core)
    }

    /// Total number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations so far.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.core.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.core.bounds
    }

    /// A point-in-time copy. Buckets and sum are read before `count`, so a
    /// concurrent snapshot can observe `count >= counts.iter().sum()` but
    /// never the reverse.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let exemplars: Vec<Option<u64>> = self
            .core
            .exemplars
            .iter()
            .map(|e| match e.load(Ordering::Relaxed) {
                0 => None,
                id => Some(id),
            })
            .collect();
        let sum = self.sum();
        let count = self.count();
        HistogramSnapshot {
            bounds: self.core.bounds.clone(),
            counts,
            sum,
            count,
            exemplars,
        }
    }
}

impl HistogramSnapshot {
    /// Cumulative bucket counts in Prometheus `le` order, ending with the
    /// `+Inf` bucket (which equals `counts.iter().sum()`).
    #[must_use]
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) with Prometheus
    /// `histogram_quantile` semantics: linear interpolation inside the
    /// target bucket, the first bucket interpolated from 0 when its bound
    /// is positive, and ranks landing in `+Inf` clamped to the largest
    /// finite bound. `None` when the snapshot is empty, the quantile is
    /// out of range, or the histogram has no finite bounds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) || self.counts.iter().sum::<u64>() == 0 {
            return None;
        }
        let total: u64 = self.counts.iter().sum();
        let rank = q * total as f64;
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = acc;
            acc += c;
            if (acc as f64) < rank || c == 0 {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Rank fell in +Inf: clamp to the largest finite bound.
                return self.bounds.last().copied();
            };
            let lower = if i == 0 {
                if upper > 0.0 {
                    0.0
                } else {
                    upper
                }
            } else {
                self.bounds[i - 1]
            };
            let frac = (rank - prev as f64) / c as f64;
            return Some(lower + (upper - lower) * frac.clamp(0.0, 1.0));
        }
        self.bounds.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_le_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // le=1: {0.5, 1.0}; le=2: {1.5, 2.0}; le=4: {3.0, 4.0}; +Inf: {9.0}.
        assert_eq!(s.counts, vec![2, 2, 2, 1]);
        assert_eq!(s.count, 7);
        assert!((s.sum - 21.0).abs() < 1e-12);
        assert_eq!(s.cumulative(), vec![2, 4, 6, 7]);
    }

    #[test]
    fn empty_bounds_all_inf() {
        let h = Histogram::new(&[]);
        h.observe(3.0);
        h.observe(-1.0);
        assert_eq!(h.snapshot().counts, vec![2]);
    }

    #[test]
    fn non_finite_counts_but_does_not_poison_sum() {
        let h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.counts, vec![1, 2]);
        assert!((s.sum - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn exemplar_remembers_last_span_per_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        let s = h.snapshot();
        assert_eq!(s.exemplars, vec![None, None, None]);

        h.observe_with_exemplar(0.7, 41);
        h.observe_with_exemplar(0.9, 42); // same bucket: last write wins
        h.observe_with_exemplar(5.0, 43); // +Inf bucket
        h.observe_with_exemplar(1.5, 0); // 0 = no exemplar
        let s = h.snapshot();
        assert_eq!(s.exemplars, vec![Some(42), None, Some(43)]);
        assert_eq!(s.counts, vec![3, 1, 1]);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.5, 3.0] {
            h.observe(v);
        }
        let s = h.snapshot();
        // Rank 2 of 4 lands at the top of the (1, 2] bucket's first half.
        let p50 = s.quantile(0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "p50 = {p50}");
        // Everything is ≤ 4, so high quantiles stay in the last bucket.
        let p99 = s.quantile(0.99).unwrap();
        assert!((2.0..=4.0).contains(&p99), "p99 = {p99}");
        // Empty snapshot has no quantiles.
        assert_eq!(Histogram::new(&[1.0]).snapshot().quantile(0.5), None);
        // Ranks in +Inf clamp to the largest finite bound.
        let inf = Histogram::new(&[1.0]);
        inf.observe(9.0);
        assert_eq!(inf.snapshot().quantile(0.9), Some(1.0));
    }

    #[test]
    fn clones_share_storage() {
        let h = Histogram::new(&[1.0]);
        let h2 = h.clone();
        h2.observe(0.5);
        assert_eq!(h.count(), 1);
        assert!(h.same_storage(&h2));
        assert!(!h.same_storage(&Histogram::new(&[1.0])));
    }
}
