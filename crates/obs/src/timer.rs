//! RAII wall-clock phase timers.

use crate::histogram::Histogram;
use std::time::Instant;

/// Times one phase: started by [`Histogram::start_timer`], it records the
/// elapsed wall time (seconds) into the histogram when dropped — so a phase
/// is timed correctly even on early return. Costs exactly two clock reads,
/// both taken through [`crate::clock`] so the zero-clock tests see them.
#[must_use = "a dropped-immediately timer records ~0s"]
#[derive(Debug)]
pub struct PhaseTimer<'h> {
    hist: &'h Histogram,
    start: Instant,
    armed: bool,
}

impl Histogram {
    /// Starts an RAII timer recording into this histogram.
    pub fn start_timer(&self) -> PhaseTimer<'_> {
        PhaseTimer {
            hist: self,
            start: crate::clock::now(),
            armed: true,
        }
    }
}

impl PhaseTimer<'_> {
    /// Stops the timer now, records the observation, and returns the
    /// elapsed seconds (instead of waiting for the drop).
    pub fn stop(mut self) -> f64 {
        let dt = crate::clock::now().duration_since(self.start).as_secs_f64();
        self.armed = false;
        self.hist.observe(dt);
        dt
    }

    /// Discards the timer without recording anything.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            let dt = crate::clock::now().duration_since(self.start);
            self.hist.observe(dt.as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let h = Histogram::new(&[10.0]);
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn stop_returns_elapsed_and_records() {
        let h = Histogram::new(&[10.0]);
        let t = h.start_timer();
        let dt = t.stop();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - dt).abs() < 1e-12);
    }

    #[test]
    fn cancel_records_nothing() {
        let h = Histogram::new(&[10.0]);
        h.start_timer().cancel();
        assert_eq!(h.count(), 0);
    }
}
