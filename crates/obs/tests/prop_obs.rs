//! Property tests of `hris-obs`: histogram bucket algebra, counter
//! monotonicity under concurrent increments, and exporter round-trips
//! against an independent JSON parser.

use hris_obs::{
    Histogram, MetricsRegistry, PairedCounter, SlidingHistogram, TraceRecord, TraceRing,
};
use proptest::prelude::*;
use rayon::prelude::*;

/// Strictly increasing finite bounds, 0–6 of them.
fn bounds() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1_000.0..1_000.0f64, 0..6).prop_map(|mut v| {
        v.sort_by(f64::total_cmp);
        v.dedup();
        v
    })
}

/// Observation values, including edge magnitudes the buckets must classify.
fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2_000.0..2_000.0f64, 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket totals, `le` placement, sum and cumulative form all follow
    /// from first principles for any bounds and any finite workload.
    #[test]
    fn histogram_bucket_invariants(bounds in bounds(), values in values()) {
        let h = Histogram::new(&bounds);
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.counts.len(), bounds.len() + 1);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.counts.iter().sum::<u64>(), values.len() as u64);

        // Each bucket's count equals the oracle: values in (prev, bound].
        for (i, b) in bounds.iter().enumerate() {
            let lo = if i == 0 { f64::NEG_INFINITY } else { bounds[i - 1] };
            let want = values.iter().filter(|&&v| v > lo && v <= *b).count() as u64;
            prop_assert_eq!(s.counts[i], want, "bucket le={}", b);
        }
        let overflow = values
            .iter()
            .filter(|&&v| bounds.last().is_none_or(|&b| v > b))
            .count() as u64;
        prop_assert_eq!(s.counts[bounds.len()], overflow);

        // Sum matches within float tolerance (CAS-accumulated vs ordered).
        let want_sum: f64 = values.iter().sum();
        prop_assert!(
            (s.sum - want_sum).abs() <= 1e-9 * (1.0 + want_sum.abs()),
            "sum {} vs {}", s.sum, want_sum
        );

        // Cumulative form is monotone and ends at the total count.
        let cum = s.cumulative();
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*cum.last().unwrap(), s.count);
    }

    /// Counters never lose increments under parallel contention, and a
    /// paired counter's single-load snapshot is exact afterwards.
    #[test]
    fn counters_are_exact_under_parallel_increments(
        adds in prop::collection::vec(0u64..100, 1..50),
        hits in 0usize..500,
        misses in 0usize..500,
    ) {
        let r = MetricsRegistry::new();
        let c = r.counter("par_total", "Parallel adds.");
        let _: Vec<()> = adds.par_iter().map(|&n| c.add(n)).collect();
        prop_assert_eq!(c.get(), adds.iter().sum::<u64>());

        let p = PairedCounter::new();
        let events: Vec<bool> = (0..hits)
            .map(|_| true)
            .chain((0..misses).map(|_| false))
            .collect();
        let _: Vec<()> = events
            .par_iter()
            .map(|&is_hit| if is_hit { p.hit() } else { p.miss() })
            .collect();
        prop_assert_eq!(p.get(), (hits as u64, misses as u64));
    }

    /// A histogram observed from many threads at once drops nothing.
    #[test]
    fn histogram_is_exact_under_parallel_observation(
        values in prop::collection::vec(-100.0..100.0f64, 1..300),
    ) {
        let h = Histogram::new(&[-50.0, 0.0, 50.0]);
        let _: Vec<()> = values.par_iter().map(|&v| h.observe(v)).collect();
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.counts.iter().sum::<u64>(), s.count);
        let want_sum: f64 = values.iter().sum();
        prop_assert!((s.sum - want_sum).abs() <= 1e-6 * (1.0 + want_sum.abs()));
    }

    /// The JSON export parses back (with an independent parser) to exactly
    /// the registry state: names, values, buckets, sums and counts.
    #[test]
    fn json_export_round_trips(
        counter_v in 0u64..1_000_000,
        gauge_v in -1_000_000i64..1_000_000,
        hits in 0u64..1_000,
        misses in 0u64..1_000,
        values in prop::collection::vec(-100.0..100.0f64, 0..50),
    ) {
        let r = MetricsRegistry::new();
        r.counter("c_total", "C.").add(counter_v);
        r.gauge("g", "G.").set(gauge_v);
        let h = r.histogram_with_labels("h_seconds", "H.", &[-10.0, 0.0, 10.0], &[("phase", "x")]);
        for &v in &values {
            h.observe(v);
        }
        let p = r.register_paired("cache", "P.", PairedCounter::new());
        for _ in 0..hits { p.hit(); }
        for _ in 0..misses { p.miss(); }

        let snap = r.snapshot();
        let parsed: serde_json::Value =
            serde_json::from_str(&snap.to_json()).expect("export is valid JSON");
        let metrics = parsed["metrics"].as_array().expect("metrics array");

        let find = |name: &str| -> &serde_json::Value {
            metrics
                .iter()
                .find(|m| m["name"].as_str() == Some(name))
                .unwrap_or_else(|| panic!("metric `{name}` missing from export"))
        };
        prop_assert_eq!(find("c_total")["value"].as_u64(), Some(counter_v));
        prop_assert_eq!(find("g")["value"].as_i64(), Some(gauge_v));
        prop_assert_eq!(find("cache_hits_total")["value"].as_u64(), Some(hits));
        prop_assert_eq!(find("cache_misses_total")["value"].as_u64(), Some(misses));

        let hj = find("h_seconds");
        prop_assert_eq!(hj["labels"]["phase"].as_str(), Some("x"));
        let hs = snap.histogram("h_seconds", &[("phase", "x")]).unwrap();
        let buckets = hj["buckets"].as_array().unwrap();
        prop_assert_eq!(buckets.len(), hs.bounds.len());
        for (b, (bound, count)) in buckets.iter().zip(hs.bounds.iter().zip(&hs.counts)) {
            prop_assert_eq!(b["le"].as_f64(), Some(*bound));
            prop_assert_eq!(b["count"].as_u64(), Some(*count));
        }
        prop_assert_eq!(hj["inf_count"].as_u64(), Some(hs.counts[hs.bounds.len()]));
        prop_assert_eq!(hj["count"].as_u64(), Some(hs.count));
        let sum = hj["sum"].as_f64().expect("finite sum");
        prop_assert!((sum - hs.sum).abs() <= 1e-9 * (1.0 + hs.sum.abs()));
    }

    /// The Prometheus text export is structurally sound for arbitrary
    /// histogram content: one header per family, cumulative buckets, and a
    /// final `+Inf` bucket equal to `_count`.
    #[test]
    fn prometheus_export_is_structurally_sound(values in values()) {
        let r = MetricsRegistry::new();
        let h = r.histogram("hist", "H.", &[-1.0, 1.0]);
        for &v in &values {
            h.observe(v);
        }
        let text = r.snapshot().to_prometheus();
        prop_assert_eq!(text.matches("# TYPE hist histogram").count(), 1);
        let bucket_of = |le: &str| -> u64 {
            let line = text
                .lines()
                .find(|l| l.starts_with(&format!("hist_bucket{{le=\"{le}\"}}")))
                .unwrap_or_else(|| panic!("missing le={le} bucket"));
            line.rsplit(' ').next().unwrap().parse().unwrap()
        };
        let (b1, b2, binf) = (bucket_of("-1"), bucket_of("1"), bucket_of("+Inf"));
        prop_assert!(b1 <= b2 && b2 <= binf, "buckets not cumulative: {b1} {b2} {binf}");
        let count_line = text
            .lines()
            .find(|l| l.starts_with("hist_count"))
            .unwrap();
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        prop_assert_eq!(binf, count);
        prop_assert_eq!(count, values.len() as u64);
    }

    /// Observations landing *exactly on* a bucket bound classify into that
    /// bound's bucket (le-semantics), never the one above — for any bounds.
    #[test]
    fn histogram_boundary_observations_use_le_semantics(
        bounds in prop::collection::vec(-1_000.0..1_000.0f64, 1..6).prop_map(|mut v| {
            v.sort_by(f64::total_cmp);
            v.dedup();
            v
        }),
        repeats in 1usize..5,
    ) {
        let h = Histogram::new(&bounds);
        for &b in &bounds {
            for _ in 0..repeats {
                h.observe(b);
            }
        }
        let s = h.snapshot();
        // One bucket per bound, each holding exactly its own boundary hits;
        // nothing overflows to +Inf.
        for (i, _) in bounds.iter().enumerate() {
            prop_assert_eq!(s.counts[i], repeats as u64, "bucket {}", i);
        }
        prop_assert_eq!(s.counts[bounds.len()], 0, "+Inf must stay empty");
        // The next representable value above the last bound *does* overflow.
        h.observe(bounds.last().unwrap().next_up());
        prop_assert_eq!(h.snapshot().counts[bounds.len()], 1);
    }

    /// A sliding histogram's merged window equals a plain histogram fed the
    /// same samples, whenever every sample falls inside the queried window:
    /// epoch rotation splits the stream but never loses or double-counts.
    #[test]
    fn sliding_window_merge_matches_histogram_of_all_samples(
        mut samples in prop::collection::vec((0.0..100.0f64, 0.0..9.5f64), 1..200),
    ) {
        // 1 s epochs, 12-slot ring, 10 s window queried at t = 100: samples
        // land at t in [90.5, 100], all inside both window and ring.
        let bounds = [1.0, 10.0, 50.0];
        let sliding = SlidingHistogram::new(&bounds, 1.0, 12);
        let plain = Histogram::new(&bounds);
        let now = 100.0;
        // Writers only move forward in time; sort by timestamp.
        samples.sort_by(|a, b| a.1.total_cmp(&b.1));
        for &(v, back) in &samples {
            sliding.observe_at(v, now - 9.5 + back);
            plain.observe(v);
        }
        let merged = sliding.window_snapshot_at(10.0, now);
        let want = plain.snapshot();
        prop_assert_eq!(merged.counts, want.counts);
        prop_assert_eq!(merged.count, want.count);
        prop_assert!((merged.sum - want.sum).abs() <= 1e-9 * (1.0 + want.sum.abs()));
        prop_assert_eq!(sliding.dropped_late(), 0);

        // A zero-width future window sees nothing.
        let empty = sliding.window_snapshot_at(10.0, now + 30.0);
        prop_assert_eq!(empty.count, 0);
    }
}

/// A bounded ring hammered by concurrent writers keeps exactly `capacity`
/// records, counts every eviction, and never tears a record.
#[test]
fn trace_ring_wraparound_under_concurrent_writers() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 100;
    const CAP: usize = 8;
    let ring = TraceRing::new(CAP);
    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let ring = ring.clone();
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    let _ = ring.push(TraceRecord {
                        query_id: w * PER_WRITER + i,
                        points: w as usize,
                        ..TraceRecord::default()
                    });
                }
            });
        }
    });
    let kept = ring.snapshot();
    assert_eq!(kept.len(), CAP);
    assert_eq!(ring.dropped(), WRITERS * PER_WRITER - CAP as u64);
    for r in &kept {
        // No torn records: each retained record is exactly as one writer
        // pushed it.
        assert_eq!(r.points as u64, r.query_id / PER_WRITER);
        assert!(r.query_id < WRITERS * PER_WRITER);
    }
    // Ids are unique — eviction drops whole records, never duplicates.
    let mut ids: Vec<u64> = kept.iter().map(|r| r.query_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), CAP);
}
