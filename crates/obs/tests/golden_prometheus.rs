//! S3 — golden snapshots of the Prometheus text and JSON exports.
//!
//! The workload below is fully scripted (no clocks, no randomness), so both
//! exports are byte-deterministic. The golden files pin the exposition
//! formats themselves — family headers, label ordering, cumulative buckets,
//! paired counter expansion, float spellings, exemplar placement — so any
//! accidental format drift shows up as a one-line diff here rather than as
//! a broken scrape downstream. Note the scripted workload records one
//! histogram exemplar: it must surface in the JSON golden and must *not*
//! appear anywhere in the Prometheus golden.
//!
//! To regenerate after an *intentional* format change:
//! `BLESS=1 cargo test -p hris-obs --test golden_prometheus` and commit the
//! rewritten `golden_prometheus.txt` / `golden_json.txt`.

use hris_obs::{MetricsRegistry, PairedCounter};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_prometheus.txt");
const GOLDEN_JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_json.txt");

/// The engine's metric families, driven with fixed values.
fn scripted_registry() -> MetricsRegistry {
    let r = MetricsRegistry::new();

    r.counter("hris_engine_queries_total", "Queries served.")
        .add(7);
    r.counter("hris_engine_batches_total", "Batches served.")
        .add(2);
    r.counter(
        "hris_engine_slow_queries_total",
        "Queries slower than the configured slow-query threshold.",
    )
    .add(1);

    // Robustness counters: engine repair/degradation ladder plus the
    // tolerant loader's quarantine accounting.
    r.counter(
        "hris_engine_repaired_total",
        "Queries whose input needed sanitization before answering.",
    )
    .add(3);
    r.counter(
        "hris_engine_degraded_total",
        "Repaired queries that also needed the degradation chain.",
    )
    .add(1);
    r.counter(
        "hris_engine_rejected_total",
        "Queries rejected because no usable input remained.",
    )
    .add(2);
    r.counter(
        "hris_engine_points_dropped_total",
        "Query points discarded by input sanitization.",
    )
    .add(4);
    r.counter(
        "hris_records_quarantined_total",
        "Archive trajectories dropped entirely by tolerant loading.",
    )
    .add(2);
    r.counter(
        "hris_points_quarantined_total",
        "Archive points dropped by tolerant-loading repair rules.",
    )
    .add(9);

    let g = r.gauge(
        "hris_engine_queue_depth",
        "Queries of the current batch not yet picked up by a worker.",
    );
    g.set(3);
    g.add(-3);
    r.gauge(
        "hris_engine_workers_busy",
        "Workers currently inside a query.",
    )
    .set(0);

    let bounds = [0.001, 0.01, 0.1, 1.0];
    for (phase, obs) in [
        ("candidates", vec![0.0005, 0.002]),
        ("local", vec![0.02, 0.05, 0.2]),
        ("global", vec![0.004]),
        ("refine", vec![0.0001]),
    ] {
        let h = r.histogram_with_labels(
            "hris_engine_phase_seconds",
            "Wall seconds per pipeline phase, per query.",
            &bounds,
            &[("phase", phase)],
        );
        for v in obs {
            h.observe(v);
        }
    }
    let q = r.histogram(
        "hris_engine_query_seconds",
        "End-to-end wall seconds per query.",
        &bounds,
    );
    q.observe(0.03);
    // A fixed exemplar span id: visible in the JSON export only — the
    // Prometheus golden proves text output is exemplar-free.
    q.observe_with_exemplar(0.3, 42);
    q.observe(3.0);

    let sp = r.register_paired(
        "hris_engine_sp_cache",
        "Shortest-path fallback cache lookups.",
        PairedCounter::new(),
    );
    for _ in 0..5 {
        sp.hit();
    }
    sp.miss();
    let memo = r.register_paired(
        "hris_engine_candidate_memo",
        "Candidate-edge memo lookups.",
        PairedCounter::new(),
    );
    memo.hit();
    memo.miss();
    memo.miss();
    r
}

#[test]
fn prometheus_export_matches_golden() {
    let got = scripted_registry().snapshot().to_prometheus();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to generate it");
    assert!(
        got == want,
        "Prometheus export drifted from golden.\n--- got ---\n{got}\n--- want ---\n{want}"
    );
}

#[test]
fn json_export_matches_golden() {
    let got = scripted_registry().snapshot().to_json();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_JSON_PATH, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_JSON_PATH)
        .expect("golden file missing — run with BLESS=1 to generate it");
    assert!(
        got == want,
        "JSON export drifted from golden.\n--- got ---\n{got}\n--- want ---\n{want}"
    );
    // The exemplar recorded by the script is a JSON-only artefact.
    assert!(want.contains("\"exemplar_span\":42"));
    let text = scripted_registry().snapshot().to_prometheus();
    assert!(
        !text.contains("exemplar"),
        "exemplars leaked into text: {text}"
    );
}

#[test]
fn scripted_workload_is_deterministic() {
    // The golden tests are only meaningful if two runs of the script agree.
    let a = scripted_registry().snapshot();
    let b = scripted_registry().snapshot();
    assert_eq!(a.to_prometheus(), b.to_prometheus());
    assert_eq!(a.to_json(), b.to_json());
}
