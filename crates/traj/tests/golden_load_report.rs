//! Golden snapshot of the quarantine [`LoadReport`] JSON.
//!
//! The corrupted archive below is produced by the seeded fault injector, so
//! the tolerant loader's repair/quarantine accounting — and the report's
//! JSON schema — are byte-deterministic. Any change to a repair rule or to
//! the report's serialisation shows up as a one-line diff here.
//!
//! To regenerate after an *intentional* change:
//! `BLESS=1 cargo test -p hris-traj --test golden_load_report` and commit
//! the rewritten `golden_load_report.json`.

use hris_geo::Point;
use hris_traj::{
    encode_trips, fault_corpus, FaultInjector, GpsPoint, LoadReport, TolerantLoadOptions, TrajId,
    Trajectory, TrajectoryArchive,
};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_load_report.json");

/// A fixed fleet of clean trips for the injector to corrupt.
fn base_trips() -> Vec<Trajectory> {
    (0..4)
        .map(|k| {
            Trajectory::new(
                TrajId(k),
                (0..10)
                    .map(|i| {
                        GpsPoint::new(
                            Point::new(i as f64 * 250.0, k as f64 * 400.0),
                            i as f64 * 30.0,
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

/// The scripted dirty load: every fault kind, plus blob truncation.
fn dirty_load() -> LoadReport {
    let corrupted: Vec<Trajectory> = fault_corpus(2024, &base_trips(), 16)
        .into_iter()
        .map(|(_, t)| t)
        .collect();
    let blob = encode_trips(&corrupted);
    let cut = FaultInjector::new(77).truncate_blob(&blob);
    let (_, report) = TrajectoryArchive::from_bytes_tolerant(cut, &TolerantLoadOptions::default());
    report
}

#[test]
fn load_report_json_matches_golden() {
    let got = dirty_load().to_json();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &got).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with BLESS=1 to generate it");
    assert!(
        got == want,
        "LoadReport JSON drifted from golden.\n--- got ---\n{got}\n--- want ---\n{want}"
    );
}

#[test]
fn dirty_load_is_deterministic() {
    // The golden test is only meaningful if two runs of the script agree.
    assert_eq!(dirty_load(), dirty_load());
}

#[test]
fn report_json_round_trips() {
    let report = dirty_load();
    let back: LoadReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(back, report);
}
