//! Differential, property and golden tests for the columnar snapshot
//! format (`hris_traj::snapshot`).
//!
//! The format's contract is byte-identity: decoding a snapshot reproduces
//! every `f64` bit pattern of the source archive, for *any* archive —
//! clean simulator output, PR-3 repaired non-monotone inputs, empty
//! trajectories, NaN-bearing garbage that only `from_unchecked` can hold.
//! The golden test pins the on-disk header layout; the fault-corpus test
//! proves corrupted blobs are rejected, never mis-decoded into a
//! different archive or a panic.

use hris_geo::Point;
use hris_traj::{
    encode_snapshot, fault_corpus, ColumnarSnapshot, GpsPoint, SnapshotError, TrajId, Trajectory,
    TrajectoryArchive,
};
use proptest::prelude::*;

fn assert_bit_identical(a: &TrajectoryArchive, b: &TrajectoryArchive) {
    assert_eq!(a.num_trajectories(), b.num_trajectories());
    assert_eq!(a.num_points(), b.num_points());
    for (ta, tb) in a.trajectories().iter().zip(b.trajectories()) {
        assert_eq!(ta.id, tb.id);
        assert_eq!(ta.points.len(), tb.points.len());
        for (pa, pb) in ta.points.iter().zip(&tb.points) {
            assert_eq!(pa.t.to_bits(), pb.t.to_bits());
            assert_eq!(pa.pos.x.to_bits(), pb.pos.x.to_bits());
            assert_eq!(pa.pos.y.to_bits(), pb.pos.y.to_bits());
        }
    }
}

/// Time-ordered trajectory with mm/ms-clean values (the FIXED path).
fn clean_trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec(
        (
            -5_000_000i64..5_000_000i64, // mm
            -5_000_000i64..5_000_000i64,
            100i64..120_000i64, // ms per step
        ),
        0..40,
    )
    .prop_map(|steps| {
        let mut t = 0i64;
        let points = steps
            .into_iter()
            .map(|(x, y, dt)| {
                t += dt;
                GpsPoint::new(
                    Point::new(x as f64 / 1000.0, y as f64 / 1000.0),
                    t as f64 / 1000.0,
                )
            })
            .collect();
        Trajectory::new(TrajId(0), points)
    })
}

/// Arbitrary-bits trajectory: unordered times, subnormals, NaN payloads —
/// everything `from_unchecked` admits. Forces the RAW column path.
fn hostile_trajectory() -> impl Strategy<Value = Trajectory> {
    // Raw u64 bit patterns reinterpreted as f64 cover NaNs, infinities and
    // subnormals, none of which `Trajectory::new` would admit.
    let bits = || 0u64..u64::MAX;
    prop::collection::vec((bits(), bits(), bits()), 0..20).prop_map(|pts| {
        let points = pts
            .into_iter()
            .map(|(x, y, t)| {
                GpsPoint::new(
                    Point::new(f64::from_bits(x), f64::from_bits(y)),
                    f64::from_bits(t),
                )
            })
            .collect();
        Trajectory::from_unchecked(TrajId(0), points)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clean_archives_roundtrip_bit_identically(
        trips in prop::collection::vec(clean_trajectory(), 0..6),
        epoch in 0u64..u64::MAX,
    ) {
        let archive = TrajectoryArchive::new(trips);
        let blob = encode_snapshot(&archive, epoch);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        prop_assert_eq!(snap.epoch(), epoch);
        let decoded = snap.decode_archive().expect("decode");
        assert_bit_identical(&archive, &decoded);
    }

    #[test]
    fn hostile_archives_roundtrip_bit_identically(
        trips in prop::collection::vec(hostile_trajectory(), 0..6),
    ) {
        let archive = TrajectoryArchive::new(trips);
        let blob = encode_snapshot(&archive, 0);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        let decoded = snap.decode_archive().expect("decode");
        assert_bit_identical(&archive, &decoded);
    }

    #[test]
    fn columnar_decode_matches_flat_binary_path(
        trips in prop::collection::vec(clean_trajectory(), 0..6),
    ) {
        // Differential: the new path must agree with the PR-0 flat
        // binary path wherever the latter is defined.
        let archive = TrajectoryArchive::new(trips);
        let flat = TrajectoryArchive::from_bytes(archive.to_bytes())
            .expect("flat path roundtrips clean data");
        let snap = ColumnarSnapshot::open(encode_snapshot(&archive, 0)).expect("open");
        let columnar = snap.decode_archive().expect("decode");
        assert_bit_identical(&flat, &columnar);
    }

    #[test]
    fn any_single_header_byte_flip_is_rejected(
        trips in prop::collection::vec(clean_trajectory(), 1..4),
        byte in 0usize..68,
        bit in 0u8..8,
    ) {
        let archive = TrajectoryArchive::new(trips);
        let mut raw = encode_snapshot(&archive, 9).as_slice().to_vec();
        raw[byte] ^= 1 << bit;
        prop_assert!(ColumnarSnapshot::open(bytes::Bytes::from_vec(raw)).is_err());
    }
}

#[test]
fn repaired_fault_corpus_roundtrips_bit_identically() {
    // PR-3 wiring: archive the raw fault-corpus trajectories (non-monotone
    // timestamps, NaN injections, teleports, duplicates — held via
    // `from_unchecked`) and prove the columnar format carries them
    // losslessly, exactly as the tolerant loader would receive them.
    let base = vec![Trajectory::new(
        TrajId(0),
        (0..12)
            .map(|i| {
                GpsPoint::new(
                    Point::new(f64::from(i) * 250.0, f64::from(i % 3) * 100.0),
                    f64::from(i) * 30.0,
                )
            })
            .collect(),
    )];
    let corpus = fault_corpus(0xC0FFEE, &base, 32);
    let trips: Vec<Trajectory> = corpus.into_iter().map(|(_, t)| t).collect();
    let archive = TrajectoryArchive::new(trips);
    let snap = ColumnarSnapshot::open(encode_snapshot(&archive, 1)).expect("open");
    let decoded = snap.decode_archive().expect("decode");
    assert_bit_identical(&archive, &decoded);
}

#[test]
fn corrupt_blobs_never_panic_and_never_mis_open() {
    // Seeded sweep wired onto the fault-corpus archive: flip every byte of
    // the whole blob in turn. Header flips (bytes 0..68) must be rejected
    // at open; payload flips may open but must either decode (bounds are
    // validated) or return a structured error — never panic.
    let base = vec![Trajectory::new(
        TrajId(0),
        (0..8)
            .map(|i| GpsPoint::new(Point::new(f64::from(i) * 100.0, 50.0), f64::from(i) * 15.0))
            .collect(),
    )];
    let corpus = fault_corpus(42, &base, 8);
    let archive = TrajectoryArchive::new(corpus.into_iter().map(|(_, t)| t).collect());
    let raw = encode_snapshot(&archive, 3).as_slice().to_vec();
    for at in 0..raw.len() {
        let mut bad = raw.clone();
        bad[at] ^= 0x55;
        match ColumnarSnapshot::open(bytes::Bytes::from_vec(bad)) {
            Ok(snap) => {
                assert!(at >= 68, "header flip at byte {at} must not open");
                // Structure validated at open; payload decode must not
                // panic whatever the flip did.
                let _ = snap.decode_archive();
            }
            Err(e) => {
                let _ = e.to_string(); // Display must not panic either.
            }
        }
    }
}

#[test]
fn truncations_are_rejected_at_every_length() {
    let base = vec![Trajectory::new(
        TrajId(0),
        (0..6)
            .map(|i| GpsPoint::new(Point::new(f64::from(i) * 90.0, 0.0), f64::from(i) * 10.0))
            .collect(),
    )];
    let archive = TrajectoryArchive::new(base);
    let raw = encode_snapshot(&archive, 0).as_slice().to_vec();
    for cut in 0..raw.len() {
        let err = ColumnarSnapshot::open(bytes::Bytes::from_vec(raw[..cut].to_vec()))
            .expect_err("every strict prefix must be rejected");
        assert!(
            matches!(
                err,
                SnapshotError::TooShort | SnapshotError::Truncated | SnapshotError::Malformed(_)
            ),
            "cut {cut}: unexpected {err:?}"
        );
    }
}

/// Deterministic fixture for the golden header test: same archive, same
/// epoch, every run.
fn golden_archive() -> TrajectoryArchive {
    let trips = vec![
        Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(120.5, -40.25), 0.0),
                GpsPoint::new(Point::new(180.0, -10.75), 30.0),
                GpsPoint::new(Point::new(260.125, 15.0), 62.5),
            ],
        ),
        Trajectory::new(
            TrajId(1),
            vec![
                GpsPoint::new(Point::new(-1000.0, 2000.001), 5.0),
                GpsPoint::new(Point::new(-990.0, 2000.002), 9.0),
            ],
        ),
    ];
    TrajectoryArchive::new(trips)
}

#[test]
fn snapshot_format_matches_golden_file() {
    // Pins the on-disk layout: header field values *and* the exact first
    // 68 bytes. A diff here means the format changed — bump
    // SNAPSHOT_VERSION and re-bless with:
    //   BLESS=1 cargo test -p hris-traj --test columnar_snapshot
    let blob = encode_snapshot(&golden_archive(), 5);
    let snap = ColumnarSnapshot::open(blob.slice(0..blob.len())).expect("open");
    let mut actual = snap.header().describe();
    actual.push_str("header_bytes    ");
    for b in &blob.as_slice()[..68] {
        actual.push_str(&format!(" {b:02x}"));
    }
    actual.push('\n');

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("snapshot_format.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "golden file missing at {}; regenerate with BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "snapshot format drifted from the golden layout; if intentional, \
         bump SNAPSHOT_VERSION and re-bless with BLESS=1"
    );
}
