//! Property-based tests for trajectory preprocessing and the simulator.

use hris_geo::Point;
use hris_traj::{
    partition_trips, resample_to_interval, GpsPoint, StayPointConfig, TrajId, Trajectory,
    TrajectoryArchive,
};
use proptest::prelude::*;

/// Random time-ordered trajectory.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec(
        (
            -5_000.0..5_000.0f64,
            -5_000.0..5_000.0f64,
            0.1..120.0f64, // per-step time increments
        ),
        0..80,
    )
    .prop_map(|steps| {
        let mut t = 0.0;
        let points = steps
            .into_iter()
            .map(|(x, y, dt)| {
                t += dt;
                GpsPoint::new(Point::new(x, y), t)
            })
            .collect();
        Trajectory::new(TrajId(0), points)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partition_output_points_come_from_input(traj in trajectory()) {
        let cfg = StayPointConfig::default();
        let trips = partition_trips(&traj, &cfg);
        for trip in &trips {
            prop_assert!(trip.len() >= cfg.min_trip_points);
            for p in &trip.points {
                prop_assert!(traj.points.contains(p));
            }
            // Time-ordered within each trip (Trajectory::new asserts, but
            // double-check the invariant end to end).
            prop_assert!(trip.points.windows(2).all(|w| w[0].t <= w[1].t));
            // No gap inside a trip exceeds the ceiling.
            prop_assert!(trip.max_interval() <= cfg.max_gap_s + 1e-9);
        }
    }

    #[test]
    fn partition_never_duplicates_points(traj in trajectory()) {
        let cfg = StayPointConfig::default();
        let trips = partition_trips(&traj, &cfg);
        let total: usize = trips.iter().map(Trajectory::len).sum();
        prop_assert!(total <= traj.len());
    }

    #[test]
    fn resample_respects_interval(traj in trajectory(), interval in 10.0..900.0f64) {
        let r = resample_to_interval(&traj, interval);
        if traj.len() > 2 {
            // All but the final appended point respect the spacing.
            let body = &r.points[..r.points.len().saturating_sub(1)];
            for w in body.windows(2) {
                prop_assert!(w[1].t - w[0].t >= interval - 1e-9);
            }
            // Endpoints preserved.
            prop_assert_eq!(r.points.first().unwrap().t, traj.points.first().unwrap().t);
            prop_assert_eq!(r.points.last().unwrap().t, traj.points.last().unwrap().t);
        }
        // Subset of the original points.
        for p in &r.points {
            prop_assert!(traj.points.contains(p));
        }
    }

    #[test]
    fn archive_binary_roundtrip(trajs in prop::collection::vec(trajectory(), 0..8)) {
        let a = TrajectoryArchive::new(trajs);
        let b = TrajectoryArchive::from_bytes(a.to_bytes()).unwrap();
        prop_assert_eq!(a.num_trajectories(), b.num_trajectories());
        prop_assert_eq!(a.num_points(), b.num_points());
        for (x, y) in a.trajectories().iter().zip(b.trajectories().iter()) {
            prop_assert_eq!(&x.points, &y.points);
        }
    }

    #[test]
    fn archive_range_query_equals_scan(
        trajs in prop::collection::vec(trajectory(), 0..6),
        cx in -5_000.0..5_000.0f64,
        cy in -5_000.0..5_000.0f64,
        r in 0.0..3_000.0f64,
    ) {
        let a = TrajectoryArchive::new(trajs);
        let center = Point::new(cx, cy);
        let got = a.points_within(center, r).len();
        let want = a
            .trajectories()
            .iter()
            .flat_map(|t| &t.points)
            .filter(|p| p.pos.dist(center) <= r)
            .count();
        prop_assert_eq!(got, want);
    }
}
