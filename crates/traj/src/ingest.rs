//! Live archive ingestion with epoch-versioned snapshots.
//!
//! The paper's archive is *historical*, but the corpus it models keeps
//! growing: new taxi traces arrive continuously, and a serving system
//! cannot stop the world to re-bulk-load the R-tree per update. This module
//! provides the write side of that story:
//!
//! * [`ArchiveWriter`] — single-owner writer that appends new trajectories
//!   through the same repair/quarantine rules as tolerant loading
//!   ([`sanitize_points`] + teleport stripping), maintains the GPS-point
//!   R-tree incrementally (per-point insert, batch deletion on retention
//!   eviction), and publishes immutable epoch-numbered snapshots.
//! * [`ArchiveSnapshot`] — one frozen epoch: an archive plus its epoch
//!   number. Readers that hold an `Arc<ArchiveSnapshot>` keep that exact
//!   archive alive for as long as they need it, regardless of later
//!   publishes.
//! * [`SnapshotReader`] — a cheap, cloneable, `Send + Sync` handle that
//!   always yields the latest published snapshot. The hand-off is a single
//!   `Arc` clone under a read lock; in-flight queries are never blocked by
//!   an ingest batch, only by the pointer swap itself.
//! * [`IngestQueue`] — a thread-safe mailbox so many producers can feed one
//!   writer.
//!
//! # Epoch semantics
//!
//! Epochs are dense and monotonic: the initial archive is epoch 0 and every
//! [`ArchiveWriter::publish`] that actually changed the archive bumps the
//! epoch by one. Appends are invisible until published — a reader observes
//! either all of an epoch's appends or none of them, never a half-applied
//! batch. Consumers key caches by epoch: same epoch ⇒ identical archive.

use crate::archive::{strip_teleports, TolerantLoadOptions, TrajectoryArchive};
use crate::types::{sanitize_points, PointRepairs, TrajId, Trajectory};
use hris_obs::{Counter, Gauge, Histogram, MetricsRegistry, SlidingHistogram, FINE_TIME_BOUNDS};
use serde::{Deserialize, Serialize};
use std::ops::Deref;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One immutable published epoch of the trajectory archive.
///
/// Derefs to [`TrajectoryArchive`], so every read-side archive API works on
/// a snapshot directly.
#[derive(Debug)]
pub struct ArchiveSnapshot {
    epoch: u64,
    archive: TrajectoryArchive,
    published_at: Instant,
}

impl ArchiveSnapshot {
    /// Wraps an archive as a snapshot with the given epoch number,
    /// stamped as published *now*.
    #[must_use]
    pub fn new(epoch: u64, archive: TrajectoryArchive) -> Self {
        ArchiveSnapshot {
            epoch,
            archive,
            published_at: Instant::now(),
        }
    }

    /// Seconds since this snapshot was published. The staleness signal
    /// behind the `hris_snapshot_age_seconds` watchdog gauge: on a healthy
    /// live pipeline it saw-tooths under the publish interval; a growing
    /// value means the ingest thread stopped publishing.
    #[must_use]
    pub fn age_seconds(&self) -> f64 {
        self.published_at.elapsed().as_secs_f64()
    }

    /// The epoch number: dense, monotonic, 0 for the writer's initial
    /// archive. Equal epochs from one writer ⇒ identical archives.
    #[inline]
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The frozen archive.
    #[inline]
    #[must_use]
    pub fn archive(&self) -> &TrajectoryArchive {
        &self.archive
    }

    /// Serializes this epoch into the columnar snapshot format
    /// ([`crate::snapshot`]). The epoch number travels in the header, so
    /// a reader on the other side of an mmap sees exactly this epoch.
    #[must_use]
    pub fn to_columnar(&self) -> bytes::Bytes {
        crate::snapshot::encode_snapshot(&self.archive, self.epoch)
    }

    /// Rehydrates a snapshot from a columnar blob, restoring the epoch
    /// recorded in the header. `published_at` is stamped *now* — age is a
    /// liveness signal of this process, not of the blob's origin.
    pub fn from_columnar(data: bytes::Bytes) -> Result<Self, crate::snapshot::SnapshotError> {
        let snap = crate::snapshot::ColumnarSnapshot::open(data)?;
        let archive = snap.decode_archive()?;
        Ok(ArchiveSnapshot::new(snap.epoch(), archive))
    }
}

impl Deref for ArchiveSnapshot {
    type Target = TrajectoryArchive;

    fn deref(&self) -> &TrajectoryArchive {
        &self.archive
    }
}

type Slot = Arc<RwLock<Arc<ArchiveSnapshot>>>;

/// Read-side handle onto a writer's published snapshots.
///
/// Cloning is cheap (one `Arc`); clones observe the same slot. The reader
/// outlives the writer: if the writer is dropped, [`SnapshotReader::latest`]
/// keeps returning the last published epoch.
#[derive(Debug, Clone)]
pub struct SnapshotReader {
    slot: Slot,
}

impl SnapshotReader {
    /// The most recently published snapshot.
    #[must_use]
    pub fn latest(&self) -> Arc<ArchiveSnapshot> {
        Arc::clone(&self.slot.read().expect("snapshot slot"))
    }

    /// The current published epoch number (shorthand for
    /// `self.latest().epoch()`).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.slot.read().expect("snapshot slot").epoch
    }
}

/// Ingest policy for an [`ArchiveWriter`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IngestOptions {
    /// Repair/quarantine rules applied to every appended trip — the same
    /// rules as [`TrajectoryArchive::from_bytes_tolerant`].
    pub tolerant: TolerantLoadOptions,
    /// When set, [`ArchiveWriter::publish`] evicts the oldest trajectories
    /// so at most this many remain (a sliding-window archive). `None`
    /// retains everything.
    pub retain_max_trajectories: Option<usize>,
}

/// Cumulative accounting of everything a writer ingested, quarantined,
/// evicted and published. Serialises to JSON for operator visibility.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Trips appended to the working archive after repair.
    pub trajectories_appended: usize,
    /// Trips rejected entirely (no usable points remained after repair).
    pub trajectories_quarantined: usize,
    /// Points appended after repair.
    pub points_appended: usize,
    /// Points dropped across all repair rules.
    pub points_quarantined: usize,
    /// Points dropped by the speed filter specifically.
    pub teleports_removed: usize,
    /// Trips whose timestamps had to be re-sorted on ingest.
    pub trajectories_resorted: usize,
    /// Writer-wide [`sanitize_points`] totals.
    pub repairs: PointRepairs,
    /// Trips evicted by the retention policy.
    pub trajectories_evicted: usize,
    /// Points evicted by the retention policy.
    pub points_evicted: usize,
    /// Snapshots published (excluding the initial epoch 0).
    pub epochs_published: usize,
}

/// Ingest metric handles, registered once on [`ArchiveWriter::observe`].
#[derive(Debug)]
struct IngestObs {
    appended: Counter,
    quarantined: Counter,
    points_appended: Counter,
    points_quarantined: Counter,
    evicted: Counter,
    epoch: Gauge,
    swap_seconds: Histogram,
    /// Rolling window over the same swap timings (30 s epochs, 330 s
    /// horizon) so `/varz` can show recent publish rate and p95 instead of
    /// since-boot buckets.
    swap_window: SlidingHistogram,
}

impl IngestObs {
    fn new(registry: &MetricsRegistry) -> Self {
        IngestObs {
            appended: registry.counter(
                "hris_ingest_appended_total",
                "Trajectories appended to the live archive after repair.",
            ),
            quarantined: registry.counter(
                "hris_ingest_quarantined_total",
                "Trajectories rejected on ingest (no usable points after repair).",
            ),
            points_appended: registry.counter(
                "hris_ingest_points_appended_total",
                "GPS points appended to the live archive after repair.",
            ),
            points_quarantined: registry.counter(
                "hris_ingest_points_quarantined_total",
                "GPS points dropped by ingest repair rules.",
            ),
            evicted: registry.counter(
                "hris_ingest_evicted_total",
                "Trajectories evicted by the retention policy.",
            ),
            epoch: registry.gauge(
                "hris_archive_epoch",
                "Epoch number of the latest published archive snapshot.",
            ),
            swap_seconds: registry.histogram(
                "hris_snapshot_swap_seconds",
                "Wall time to publish a snapshot (archive clone + slot swap).",
                &FINE_TIME_BOUNDS,
            ),
            swap_window: SlidingHistogram::new(&FINE_TIME_BOUNDS, 30.0, 11),
        }
    }
}

/// The single-owner write side of a live archive.
///
/// The writer owns a *working* archive that it mutates in place
/// (incremental R-tree insert on append, batch deletion on eviction) and a
/// shared *slot* holding the latest published [`ArchiveSnapshot`]. Appends
/// stay private to the writer until [`ArchiveWriter::publish`] clones the
/// working archive into a fresh immutable snapshot and swaps it into the
/// slot — an `O(archive)` structural clone, paid by the ingest thread, so
/// the read side never pays more than an `Arc` exchange.
#[derive(Debug)]
pub struct ArchiveWriter {
    working: TrajectoryArchive,
    slot: Slot,
    epoch: u64,
    dirty: bool,
    pending: usize,
    opts: IngestOptions,
    report: IngestReport,
    obs: Option<IngestObs>,
}

impl ArchiveWriter {
    /// A writer over `initial`, published immediately as epoch 0 with
    /// default [`IngestOptions`].
    #[must_use]
    pub fn new(initial: TrajectoryArchive) -> Self {
        ArchiveWriter::with_options(initial, IngestOptions::default())
    }

    /// A writer over `initial` (published as epoch 0) with explicit policy.
    #[must_use]
    pub fn with_options(initial: TrajectoryArchive, opts: IngestOptions) -> Self {
        let snapshot = Arc::new(ArchiveSnapshot::new(0, initial.clone()));
        ArchiveWriter {
            working: initial,
            slot: Arc::new(RwLock::new(snapshot)),
            epoch: 0,
            dirty: false,
            pending: 0,
            opts,
            report: IngestReport::default(),
            obs: None,
        }
    }

    /// Registers the ingest metric family on `registry` and starts
    /// recording into it (`hris_ingest_*`, `hris_archive_epoch`,
    /// `hris_snapshot_swap_seconds`). Counters appear immediately, even at
    /// zero, so dashboards always see the family.
    pub fn observe(&mut self, registry: &MetricsRegistry) {
        let obs = IngestObs::new(registry);
        obs.epoch.set(self.epoch as i64);
        self.obs = Some(obs);
    }

    /// A read-side handle onto this writer's published snapshots.
    #[must_use]
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader {
            slot: Arc::clone(&self.slot),
        }
    }

    /// The latest *published* snapshot (appends since the last
    /// [`ArchiveWriter::publish`] are not in it).
    #[must_use]
    pub fn snapshot(&self) -> Arc<ArchiveSnapshot> {
        Arc::clone(&self.slot.read().expect("snapshot slot"))
    }

    /// Serializes the latest *published* snapshot into the columnar
    /// format without republishing or rebuilding anything — the epoch in
    /// the blob header is the epoch readers currently see. Pending
    /// appends are not included (publish first if you want them).
    #[must_use]
    pub fn export_columnar(&self) -> bytes::Bytes {
        self.snapshot().to_columnar()
    }

    /// The latest published epoch number.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Trips appended since the last publish.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Cumulative ingest accounting since construction.
    #[must_use]
    pub fn report(&self) -> &IngestReport {
        &self.report
    }

    /// The ingest policy this writer was built with.
    #[must_use]
    pub fn options(&self) -> &IngestOptions {
        &self.opts
    }

    /// Appends one trip through the repair/quarantine path. Returns the id
    /// it received in the working archive, or `None` if the whole trip was
    /// quarantined. The append is invisible to readers until the next
    /// [`ArchiveWriter::publish`].
    pub fn append(&mut self, trip: Trajectory) -> Option<TrajId> {
        let mut pts = trip.points;
        let r = sanitize_points(&mut pts, &self.opts.tolerant.limits);
        let teleports = strip_teleports(&mut pts, self.opts.tolerant.max_speed_mps);
        if r.sorted {
            self.report.trajectories_resorted += 1;
        }
        self.report.repairs.merge(&r);
        self.report.teleports_removed += teleports;
        let quarantined_pts = r.points_dropped() + teleports;
        self.report.points_quarantined += quarantined_pts;
        if let Some(obs) = &self.obs {
            obs.points_quarantined.add(quarantined_pts as u64);
        }
        if pts.is_empty() {
            self.report.trajectories_quarantined += 1;
            if let Some(obs) = &self.obs {
                obs.quarantined.inc();
            }
            return None;
        }
        self.report.trajectories_appended += 1;
        self.report.points_appended += pts.len();
        if let Some(obs) = &self.obs {
            obs.appended.inc();
            obs.points_appended.add(pts.len() as u64);
        }
        // Sanitization restored time order, so the checked constructor
        // cannot panic here; the id is reassigned by the archive.
        let n = pts.len();
        let id = self
            .working
            .append_trajectory(Trajectory::new(TrajId(0), pts));
        debug_assert_eq!(self.working.trajectory(id).points.len(), n);
        self.pending += 1;
        self.dirty = true;
        Some(id)
    }

    /// Appends many trips; returns how many survived quarantine.
    pub fn append_batch(&mut self, trips: impl IntoIterator<Item = Trajectory>) -> usize {
        trips.into_iter().filter_map(|t| self.append(t)).count()
    }

    /// Publishes the working archive as a new epoch: applies the retention
    /// policy, clones the working archive into an immutable snapshot, and
    /// swaps it into the slot. Readers that already hold the previous
    /// snapshot keep it; new [`SnapshotReader::latest`] calls see the new
    /// epoch. A publish with nothing appended or evicted is a no-op that
    /// returns the current snapshot without bumping the epoch.
    pub fn publish(&mut self) -> Arc<ArchiveSnapshot> {
        if let Some(max) = self.opts.retain_max_trajectories {
            let n = self.working.num_trajectories();
            if n > max {
                let excess = n - max;
                let points = self.working.evict_front(excess);
                self.report.trajectories_evicted += excess;
                self.report.points_evicted += points;
                if let Some(obs) = &self.obs {
                    obs.evicted.add(excess as u64);
                }
                self.dirty = true;
            }
        }
        if !self.dirty {
            return self.snapshot();
        }
        let start = Instant::now();
        self.epoch += 1;
        let snapshot = Arc::new(ArchiveSnapshot::new(self.epoch, self.working.clone()));
        *self.slot.write().expect("snapshot slot") = Arc::clone(&snapshot);
        let elapsed = start.elapsed().as_secs_f64();
        self.report.epochs_published += 1;
        self.dirty = false;
        self.pending = 0;
        if let Some(obs) = &self.obs {
            obs.epoch.set(self.epoch as i64);
            obs.swap_seconds.observe(elapsed);
            obs.swap_window.observe(elapsed);
        }
        snapshot
    }

    /// Rolling publish telemetry over the last `window_s` seconds as one
    /// JSON object (`rate_per_s`, `p95_swap_s`), for a `/varz` section.
    /// `None` until [`ArchiveWriter::observe`] has been called.
    #[must_use]
    pub fn rolling_ingest_json(&self, window_s: f64) -> Option<String> {
        let obs = self.obs.as_ref()?;
        let p95 = obs
            .swap_window
            .quantile(0.95, window_s)
            .map_or_else(|| "null".to_string(), |v| format!("{v}"));
        Some(format!(
            "{{\"rate_per_s\":{},\"p95_swap_s\":{}}}",
            obs.swap_window.rate(window_s),
            p95,
        ))
    }

    /// Drains `queue`, appends everything, and publishes one new epoch if
    /// anything changed. Returns how many trips survived quarantine. This is
    /// the maintenance-loop body: producers push into the queue from any
    /// thread; one owner calls `ingest_from` periodically.
    pub fn ingest_from(&mut self, queue: &IngestQueue) -> usize {
        let appended = self.append_batch(queue.drain());
        self.publish();
        appended
    }
}

/// A thread-safe mailbox between trajectory producers and the single
/// [`ArchiveWriter`] owner. Producers [`IngestQueue::push`] from any
/// thread; the writer [`IngestQueue::drain`]s in FIFO order.
#[derive(Debug, Default)]
pub struct IngestQueue {
    pending: Mutex<Vec<Trajectory>>,
}

impl IngestQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        IngestQueue::default()
    }

    /// Enqueues one trip.
    pub fn push(&self, trip: Trajectory) {
        self.pending.lock().expect("ingest queue").push(trip);
    }

    /// Trips currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.lock().expect("ingest queue").len()
    }

    /// `true` when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes everything queued so far, in arrival order.
    #[must_use]
    pub fn drain(&self) -> Vec<Trajectory> {
        std::mem::take(&mut *self.pending.lock().expect("ingest queue"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GpsPoint;
    use hris_geo::Point;

    fn trip(x0: f64, n: usize) -> Trajectory {
        let pts = (0..n)
            .map(|k| GpsPoint::new(Point::new(x0 + 100.0 * k as f64, 0.0), 10.0 * k as f64))
            .collect();
        Trajectory::new(TrajId(0), pts)
    }

    #[test]
    fn appends_are_invisible_until_publish() {
        let mut w = ArchiveWriter::new(TrajectoryArchive::new(vec![trip(0.0, 2)]));
        let reader = w.reader();
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.latest().num_trajectories(), 1);

        w.append(trip(1000.0, 3)).unwrap();
        assert_eq!(w.pending(), 1);
        // Still epoch 0 with one trip.
        assert_eq!(reader.epoch(), 0);
        assert_eq!(reader.latest().num_trajectories(), 1);

        let snap = w.publish();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(reader.epoch(), 1);
        assert_eq!(reader.latest().num_trajectories(), 2);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn held_snapshot_survives_later_publishes() {
        let mut w = ArchiveWriter::new(TrajectoryArchive::new(vec![trip(0.0, 2)]));
        let old = w.reader().latest();
        w.append(trip(1000.0, 2)).unwrap();
        w.publish();
        // The frozen epoch-0 snapshot is untouched by the publish.
        assert_eq!(old.epoch(), 0);
        assert_eq!(old.num_trajectories(), 1);
        assert_eq!(w.reader().latest().num_trajectories(), 2);
    }

    #[test]
    fn publish_without_changes_is_a_noop() {
        let mut w = ArchiveWriter::new(TrajectoryArchive::empty());
        let first = w.publish();
        assert_eq!(first.epoch(), 0);
        w.append(trip(0.0, 2)).unwrap();
        assert_eq!(w.publish().epoch(), 1);
        assert_eq!(w.publish().epoch(), 1);
        assert_eq!(w.report().epochs_published, 1);
    }

    #[test]
    fn snapshot_age_and_rolling_ingest_track_publishes() {
        let mut w = ArchiveWriter::new(TrajectoryArchive::empty());
        assert!(w.rolling_ingest_json(60.0).is_none(), "no registry yet");
        let registry = MetricsRegistry::new();
        w.observe(&registry);
        w.append(trip(0.0, 2)).unwrap();
        let snap = w.publish();
        // A just-published snapshot is fresh (well under a second old).
        assert!(snap.age_seconds() < 1.0);
        let json = w.rolling_ingest_json(60.0).unwrap();
        assert!(json.starts_with("{\"rate_per_s\":"), "{json}");
        assert!(!json.contains("\"p95_swap_s\":null"), "{json}");
    }

    #[test]
    fn ingest_runs_the_quarantine_path() {
        let mut w = ArchiveWriter::new(TrajectoryArchive::empty());
        // A trip of nothing but NaNs is quarantined entirely…
        let garbage = Trajectory::from_unchecked(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(f64::NAN, f64::NAN), 0.0),
                GpsPoint::new(Point::new(f64::NAN, 0.0), 1.0),
            ],
        );
        assert!(w.append(garbage).is_none());
        // …a teleport spike inside an otherwise good trip is stripped.
        let spiky = Trajectory::from_unchecked(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(200_000.0, 0.0), 30.0),
                GpsPoint::new(Point::new(200.0, 0.0), 60.0),
            ],
        );
        let id = w.append(spiky).unwrap();
        let r = w.report();
        assert_eq!(r.trajectories_quarantined, 1);
        assert_eq!(r.trajectories_appended, 1);
        assert_eq!(r.teleports_removed, 1);
        assert_eq!(r.points_quarantined, 3);
        let snap = w.publish();
        assert_eq!(snap.trajectory(id).points.len(), 2);
    }

    #[test]
    fn retention_policy_evicts_oldest_on_publish() {
        let opts = IngestOptions {
            retain_max_trajectories: Some(2),
            ..IngestOptions::default()
        };
        let mut w = ArchiveWriter::with_options(TrajectoryArchive::empty(), opts);
        for i in 0..5 {
            w.append(trip(10_000.0 * i as f64, 2)).unwrap();
        }
        let snap = w.publish();
        assert_eq!(snap.num_trajectories(), 2);
        // The two *newest* trips survived, re-idd from zero.
        assert_eq!(snap.trajectory(TrajId(0)).points[0].pos.x, 30_000.0);
        assert_eq!(snap.trajectory(TrajId(1)).points[0].pos.x, 40_000.0);
        assert_eq!(w.report().trajectories_evicted, 3);
        assert_eq!(w.report().points_evicted, 6);
        // Index and trips agree after eviction.
        for h in snap.points_within(Point::new(35_000.0, 0.0), 1e6) {
            let orig = snap.trajectory(h.traj).points[h.point_idx as usize];
            assert_eq!(orig.pos, h.pos);
        }
    }

    #[test]
    fn writer_archive_matches_cold_rebuild() {
        let trips: Vec<Trajectory> = (0..4).map(|i| trip(5_000.0 * i as f64, 3)).collect();
        let mut w = ArchiveWriter::new(TrajectoryArchive::empty());
        w.append_batch(trips.clone());
        let live = w.publish();
        let cold = TrajectoryArchive::new(trips);
        assert_eq!(live.num_trajectories(), cold.num_trajectories());
        assert_eq!(live.num_points(), cold.num_points());
        for (a, b) in live.trajectories().iter().zip(cold.trajectories()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.points, b.points);
        }
    }

    #[test]
    fn queue_feeds_writer_across_threads() {
        let queue = Arc::new(IngestQueue::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let q = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for j in 0..5 {
                        q.push(trip(1_000.0 * (5 * i + j) as f64, 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(queue.len(), 20);
        let mut w = ArchiveWriter::new(TrajectoryArchive::empty());
        assert_eq!(w.ingest_from(&queue), 20);
        assert!(queue.is_empty());
        assert_eq!(w.epoch(), 1);
        assert_eq!(w.reader().latest().num_trajectories(), 20);
        // Draining an empty queue publishes nothing.
        assert_eq!(w.ingest_from(&queue), 0);
        assert_eq!(w.epoch(), 1);
    }

    #[test]
    fn ingest_metrics_are_registered_and_updated() {
        let registry = MetricsRegistry::new();
        let mut w = ArchiveWriter::with_options(
            TrajectoryArchive::empty(),
            IngestOptions {
                retain_max_trajectories: Some(1),
                ..IngestOptions::default()
            },
        );
        w.observe(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hris_ingest_appended_total"), Some(0));
        assert_eq!(snap.gauge("hris_archive_epoch"), Some(0));

        w.append(trip(0.0, 2)).unwrap();
        w.append(trip(10_000.0, 2)).unwrap();
        w.append(Trajectory::from_unchecked(
            TrajId(0),
            vec![GpsPoint::new(Point::new(f64::NAN, 0.0), 0.0)],
        ));
        w.publish();

        let snap = registry.snapshot();
        assert_eq!(snap.counter("hris_ingest_appended_total"), Some(2));
        assert_eq!(snap.counter("hris_ingest_quarantined_total"), Some(1));
        assert_eq!(snap.counter("hris_ingest_points_appended_total"), Some(4));
        assert_eq!(
            snap.counter("hris_ingest_points_quarantined_total"),
            Some(1)
        );
        assert_eq!(snap.counter("hris_ingest_evicted_total"), Some(1));
        assert_eq!(snap.gauge("hris_archive_epoch"), Some(1));
    }

    #[test]
    fn report_serialises_to_json() {
        let mut w = ArchiveWriter::new(TrajectoryArchive::empty());
        w.append(trip(0.0, 3)).unwrap();
        let text = serde_json::to_string_pretty(w.report()).expect("report serialises");
        let back: IngestReport = serde_json::from_str(&text).expect("report parses");
        assert_eq!(&back, w.report());
    }
}
