//! Stay-point detection and trip partition (preprocessing, Section II-B.1).
//!
//! A *stay point* is a region where the object lingers — the classic
//! detector of Li/Zheng et al.: a maximal run of points that stays within
//! `dist_threshold_m` of its anchor for at least `time_threshold_s`. Raw
//! taxi logs are split into *trips* by removing stay points (pick-up /
//! drop-off idling) and cutting at long observation gaps.

use crate::types::{GpsPoint, TrajId, Trajectory};
use hris_geo::Point;
use serde::{Deserialize, Serialize};

/// Parameters of stay-point detection and trip partition.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StayPointConfig {
    /// Maximum roaming radius of a stay, metres.
    pub dist_threshold_m: f64,
    /// Minimum lingering time to count as a stay, seconds.
    pub time_threshold_s: f64,
    /// Observation gaps longer than this split a log into separate trips
    /// (Definition 1's `ΔT` ceiling), seconds.
    pub max_gap_s: f64,
    /// Trips with fewer points than this are discarded.
    pub min_trip_points: usize,
}

impl Default for StayPointConfig {
    fn default() -> Self {
        StayPointConfig {
            dist_threshold_m: 100.0,
            time_threshold_s: 300.0,
            max_gap_s: 1800.0,
            min_trip_points: 2,
        }
    }
}

/// A detected stay point: the index range and its mean location/time span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StayPoint {
    /// First point index of the stay (inclusive).
    pub start: usize,
    /// Last point index of the stay (inclusive).
    pub end: usize,
    /// Mean position of the stay.
    pub centroid: Point,
    /// Arrival time (timestamp of the first point), seconds.
    pub arrive_t: f64,
    /// Departure time (timestamp of the last point), seconds.
    pub depart_t: f64,
}

/// Detects stay points in a raw GPS log.
///
/// Classic greedy scan: anchor at `i`, extend `j` while every point stays
/// within `dist_threshold_m` of the anchor; if the dwell exceeds
/// `time_threshold_s`, emit a stay point and restart after it.
#[must_use]
pub fn detect_stay_points(traj: &Trajectory, cfg: &StayPointConfig) -> Vec<StayPoint> {
    let pts = &traj.points;
    let mut out = Vec::new();
    let mut i = 0;
    while i < pts.len() {
        let mut j = i;
        while j + 1 < pts.len() && pts[j + 1].pos.dist(pts[i].pos) <= cfg.dist_threshold_m {
            j += 1;
        }
        if j > i && pts[j].t - pts[i].t >= cfg.time_threshold_s {
            let n = (j - i + 1) as f64;
            let centroid = pts[i..=j].iter().fold(Point::ORIGIN, |acc, p| acc + p.pos) / n;
            out.push(StayPoint {
                start: i,
                end: j,
                centroid,
                arrive_t: pts[i].t,
                depart_t: pts[j].t,
            });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// Splits a raw GPS log into effective trips.
///
/// Stay-point runs are removed, and the log is additionally cut wherever the
/// observation gap exceeds `max_gap_s`. Trips shorter than
/// `min_trip_points` are dropped. Trip ids restart from 0; the archive
/// reassigns them on insertion.
#[must_use]
pub fn partition_trips(traj: &Trajectory, cfg: &StayPointConfig) -> Vec<Trajectory> {
    let stays = detect_stay_points(traj, cfg);
    let mut cut_after = vec![false; traj.points.len()];
    let mut in_stay = vec![false; traj.points.len()];
    for s in &stays {
        for flag in &mut in_stay[s.start..=s.end] {
            *flag = true;
        }
    }
    for (k, w) in traj.points.windows(2).enumerate() {
        if w[1].t - w[0].t > cfg.max_gap_s {
            cut_after[k] = true;
        }
    }

    let mut trips: Vec<Trajectory> = Vec::new();
    let mut current: Vec<GpsPoint> = Vec::new();
    let flush = |current: &mut Vec<GpsPoint>, trips: &mut Vec<Trajectory>| {
        if current.len() >= cfg.min_trip_points {
            trips.push(Trajectory::new(
                TrajId(trips.len() as u32),
                std::mem::take(current),
            ));
        } else {
            current.clear();
        }
    };

    for (k, p) in traj.points.iter().enumerate() {
        if in_stay[k] {
            flush(&mut current, &mut trips);
            continue;
        }
        current.push(*p);
        if cut_after[k] {
            flush(&mut current, &mut trips);
        }
    }
    flush(&mut current, &mut trips);
    trips
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StayPointConfig {
        StayPointConfig {
            dist_threshold_m: 50.0,
            time_threshold_s: 120.0,
            max_gap_s: 600.0,
            min_trip_points: 2,
        }
    }

    fn moving_then_staying() -> Trajectory {
        let mut pts = Vec::new();
        // Move east at 10 m/s for 100 s, sampling every 10 s.
        for k in 0..=10 {
            pts.push(GpsPoint::new(
                Point::new(k as f64 * 100.0, 0.0),
                k as f64 * 10.0,
            ));
        }
        // Stay near (1000, 0) for 300 s.
        for k in 1..=10 {
            pts.push(GpsPoint::new(
                Point::new(1000.0 + (k % 3) as f64 * 5.0, 2.0),
                100.0 + k as f64 * 30.0,
            ));
        }
        // Move north again.
        for k in 1..=10 {
            pts.push(GpsPoint::new(
                Point::new(1000.0, k as f64 * 100.0),
                400.0 + k as f64 * 10.0,
            ));
        }
        Trajectory::new(TrajId(0), pts)
    }

    #[test]
    fn detects_single_stay() {
        let t = moving_then_staying();
        let stays = detect_stay_points(&t, &cfg());
        assert_eq!(stays.len(), 1);
        let s = &stays[0];
        assert!(s.depart_t - s.arrive_t >= 120.0);
        assert!(s.centroid.dist(Point::new(1000.0, 0.0)) < 60.0);
    }

    #[test]
    fn no_stay_when_moving() {
        let pts: Vec<GpsPoint> = (0..20)
            .map(|k| GpsPoint::new(Point::new(k as f64 * 200.0, 0.0), k as f64 * 10.0))
            .collect();
        let t = Trajectory::new(TrajId(0), pts);
        assert!(detect_stay_points(&t, &cfg()).is_empty());
    }

    #[test]
    fn short_lingering_is_not_a_stay() {
        // Within radius but only 60 s < 120 s threshold.
        let pts: Vec<GpsPoint> = (0..7)
            .map(|k| GpsPoint::new(Point::new((k % 2) as f64 * 10.0, 0.0), k as f64 * 10.0))
            .collect();
        let t = Trajectory::new(TrajId(0), pts);
        assert!(detect_stay_points(&t, &cfg()).is_empty());
    }

    #[test]
    fn partition_splits_at_stay() {
        let t = moving_then_staying();
        let trips = partition_trips(&t, &cfg());
        assert_eq!(trips.len(), 2, "stay splits the log into two trips");
        // First trip heads east, second heads north.
        assert!(trips[0].points.iter().all(|p| p.pos.y < 50.0));
        assert!(trips[1].points.iter().all(|p| p.pos.x > 900.0));
    }

    #[test]
    fn partition_splits_at_long_gap() {
        let mut pts = Vec::new();
        for k in 0..5 {
            pts.push(GpsPoint::new(
                Point::new(k as f64 * 100.0, 0.0),
                k as f64 * 10.0,
            ));
        }
        // 1-hour gap.
        for k in 0..5 {
            pts.push(GpsPoint::new(
                Point::new(5000.0 + k as f64 * 100.0, 0.0),
                3650.0 + k as f64 * 10.0,
            ));
        }
        let t = Trajectory::new(TrajId(0), pts);
        let trips = partition_trips(&t, &cfg());
        assert_eq!(trips.len(), 2);
        assert_eq!(trips[0].len(), 5);
        assert_eq!(trips[1].len(), 5);
    }

    #[test]
    fn tiny_fragments_are_dropped() {
        let cfg = StayPointConfig {
            min_trip_points: 3,
            ..cfg()
        };
        let pts = vec![
            GpsPoint::new(Point::new(0.0, 0.0), 0.0),
            GpsPoint::new(Point::new(100.0, 0.0), 10.0),
            // gap
            GpsPoint::new(Point::new(5000.0, 0.0), 5000.0),
        ];
        let t = Trajectory::new(TrajId(0), pts);
        let trips = partition_trips(&t, &cfg);
        assert!(trips.is_empty(), "2-point and 1-point fragments dropped");
    }

    #[test]
    fn empty_input() {
        let t = Trajectory::new(TrajId(0), vec![]);
        assert!(detect_stay_points(&t, &cfg()).is_empty());
        assert!(partition_trips(&t, &cfg()).is_empty());
    }

    #[test]
    fn single_point_input() {
        let t = Trajectory::new(TrajId(0), vec![GpsPoint::new(Point::ORIGIN, 5.0)]);
        assert!(detect_stay_points(&t, &cfg()).is_empty());
        // One point can never satisfy min_trip_points ≥ 2.
        assert!(partition_trips(&t, &cfg()).is_empty());
    }

    #[test]
    fn duplicate_timestamps_do_not_break_detection() {
        // A dwell whose observations all share one timestamp: the greedy
        // scan must terminate, and dwell duration 0 must not emit a stay.
        let p = Point::new(10.0, 10.0);
        let t = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(p, 100.0),
                GpsPoint::new(p, 100.0),
                GpsPoint::new(p, 100.0),
            ],
        );
        assert!(detect_stay_points(&t, &cfg()).is_empty());
        let trips = partition_trips(&t, &cfg());
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].len(), 3);
    }
}
