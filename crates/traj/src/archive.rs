//! The historical trajectory archive with its R-tree point index.
//!
//! The paper's preprocessing indexes *all* archived GPS points in an R-tree
//! so that reference search can issue two `φ`-range queries per query-point
//! pair (Section III-A). [`TrajectoryArchive`] owns the trips and the index,
//! and offers binary/JSON persistence so large simulated archives can be
//! generated once and reused across experiments.

use crate::types::{GpsPoint, TrajId, Trajectory};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hris_geo::{BBox, Point};
use hris_rtree::{RTree, Spatial};

/// One archived observation: position + time + provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchivePoint {
    /// Observed position.
    pub pos: Point,
    /// Timestamp, seconds.
    pub t: f64,
    /// Which trajectory this observation belongs to.
    pub traj: TrajId,
    /// Index of the observation within its trajectory.
    pub point_idx: u32,
}

impl Spatial for ArchivePoint {
    fn bbox(&self) -> BBox {
        BBox::from_point(self.pos)
    }
}

/// The archive `A` of the problem statement: historical trips plus a
/// point-level spatial index.
#[derive(Debug, Clone)]
pub struct TrajectoryArchive {
    trajectories: Vec<Trajectory>,
    index: RTree<ArchivePoint>,
    num_points: usize,
}

impl TrajectoryArchive {
    /// Builds an archive from trips, reassigning contiguous [`TrajId`]s.
    #[must_use]
    pub fn new(mut trips: Vec<Trajectory>) -> Self {
        let mut points = Vec::new();
        for (i, t) in trips.iter_mut().enumerate() {
            t.id = TrajId(i as u32);
            for (k, p) in t.points.iter().enumerate() {
                points.push(ArchivePoint {
                    pos: p.pos,
                    t: p.t,
                    traj: t.id,
                    point_idx: k as u32,
                });
            }
        }
        let num_points = points.len();
        TrajectoryArchive {
            trajectories: trips,
            index: RTree::bulk_load(points),
            num_points,
        }
    }

    /// An empty archive.
    #[must_use]
    pub fn empty() -> Self {
        TrajectoryArchive::new(Vec::new())
    }

    /// Number of stored trajectories.
    #[inline]
    #[must_use]
    pub fn num_trajectories(&self) -> usize {
        self.trajectories.len()
    }

    /// Number of indexed GPS points across all trajectories.
    #[inline]
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// A trajectory by id.
    #[inline]
    #[must_use]
    pub fn trajectory(&self, id: TrajId) -> &Trajectory {
        &self.trajectories[id.index()]
    }

    /// All stored trajectories.
    #[inline]
    #[must_use]
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// All archived points within `radius` of `center` — the `φ`-range query
    /// of reference-trajectory search.
    #[must_use]
    pub fn points_within(&self, center: Point, radius: f64) -> Vec<&ArchivePoint> {
        self.index
            .query_circle(center, radius, |ap, q| ap.pos.dist(q))
    }

    /// Best-first iterator over archived points by distance from `p`.
    pub fn nearest_points(
        &self,
        p: Point,
    ) -> impl Iterator<Item = hris_rtree::Neighbor<'_, ArchivePoint>> {
        self.index.nearest_iter(p, |ap, q| ap.pos.dist(q))
    }

    /// Bounding box of all archived points.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        self.index.bbox()
    }

    // ---------------------------------------------------------- persistence

    /// Serialises the archive's trajectories to a compact binary blob.
    ///
    /// Layout: `u32 trip_count`, then per trip `u32 point_count` followed by
    /// `point_count × (f64 x, f64 y, f64 t)` little-endian records. The
    /// R-tree is rebuilt on load (bulk load is cheap relative to I/O).
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.num_points * 24);
        buf.put_u32_le(self.trajectories.len() as u32);
        for t in &self.trajectories {
            buf.put_u32_le(t.points.len() as u32);
            for p in &t.points {
                buf.put_f64_le(p.pos.x);
                buf.put_f64_le(p.pos.y);
                buf.put_f64_le(p.t);
            }
        }
        buf.freeze()
    }

    /// Serialises the trajectories as pretty JSON (interchange/debugging;
    /// the binary codec is ~6× smaller and faster for bulk storage).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.trajectories).expect("trajectories serialise")
    }

    /// Restores an archive from [`TrajectoryArchive::to_json`] output.
    ///
    /// Returns `None` on malformed JSON or time-disordered trajectories.
    #[must_use]
    pub fn from_json(text: &str) -> Option<Self> {
        let trips: Vec<Trajectory> = serde_json::from_str(text).ok()?;
        if trips
            .iter()
            .any(|t| !t.points.windows(2).all(|w| w[0].t <= w[1].t))
        {
            return None;
        }
        Some(TrajectoryArchive::new(trips))
    }

    /// Restores an archive from [`TrajectoryArchive::to_bytes`] output.
    ///
    /// Returns `None` on truncated or malformed input.
    #[must_use]
    pub fn from_bytes(mut data: Bytes) -> Option<Self> {
        if data.remaining() < 4 {
            return None;
        }
        let trips = data.get_u32_le() as usize;
        let mut out = Vec::with_capacity(trips);
        for i in 0..trips {
            if data.remaining() < 4 {
                return None;
            }
            let n = data.get_u32_le() as usize;
            if data.remaining() < n * 24 {
                return None;
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                let x = data.get_f64_le();
                let y = data.get_f64_le();
                let t = data.get_f64_le();
                pts.push(GpsPoint::new(Point::new(x, y), t));
            }
            // Guard against corrupted time ordering.
            if !pts.windows(2).all(|w| w[0].t <= w[1].t) {
                return None;
            }
            out.push(Trajectory::new(TrajId(i as u32), pts));
        }
        Some(TrajectoryArchive::new(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> TrajectoryArchive {
        let t1 = Trajectory::new(
            TrajId(99), // id is reassigned by the archive
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(100.0, 0.0), 10.0),
            ],
        );
        let t2 = Trajectory::new(
            TrajId(7),
            vec![
                GpsPoint::new(Point::new(0.0, 100.0), 5.0),
                GpsPoint::new(Point::new(100.0, 100.0), 15.0),
                GpsPoint::new(Point::new(200.0, 100.0), 25.0),
            ],
        );
        TrajectoryArchive::new(vec![t1, t2])
    }

    #[test]
    fn ids_are_reassigned_contiguously() {
        let a = archive();
        assert_eq!(a.num_trajectories(), 2);
        assert_eq!(a.trajectory(TrajId(0)).id, TrajId(0));
        assert_eq!(a.trajectory(TrajId(1)).id, TrajId(1));
        assert_eq!(a.num_points(), 5);
    }

    #[test]
    fn range_query_returns_provenance() {
        let a = archive();
        let hits = a.points_within(Point::new(0.0, 50.0), 60.0);
        assert_eq!(hits.len(), 2);
        let mut trajs: Vec<TrajId> = hits.iter().map(|h| h.traj).collect();
        trajs.sort();
        assert_eq!(trajs, vec![TrajId(0), TrajId(1)]);
        for h in hits {
            // Back-reference resolves to the same coordinates.
            let orig = a.trajectory(h.traj).points[h.point_idx as usize];
            assert_eq!(orig.pos, h.pos);
            assert_eq!(orig.t, h.t);
        }
    }

    #[test]
    fn empty_archive() {
        let a = TrajectoryArchive::empty();
        assert_eq!(a.num_trajectories(), 0);
        assert_eq!(a.num_points(), 0);
        assert!(a.points_within(Point::ORIGIN, 1000.0).is_empty());
    }

    #[test]
    fn binary_roundtrip() {
        let a = archive();
        let blob = a.to_bytes();
        let b = TrajectoryArchive::from_bytes(blob).unwrap();
        assert_eq!(b.num_trajectories(), a.num_trajectories());
        assert_eq!(b.num_points(), a.num_points());
        for (x, y) in a.trajectories().iter().zip(b.trajectories().iter()) {
            assert_eq!(x.points, y.points);
        }
    }

    #[test]
    fn json_roundtrip() {
        let a = archive();
        let text = a.to_json();
        let b = TrajectoryArchive::from_json(&text).unwrap();
        assert_eq!(b.num_trajectories(), a.num_trajectories());
        for (x, y) in a.trajectories().iter().zip(b.trajectories().iter()) {
            assert_eq!(x.points, y.points);
        }
        assert!(TrajectoryArchive::from_json("not json").is_none());
        assert!(TrajectoryArchive::from_json(
            r#"[{"id":0,"points":[{"pos":{"x":0.0,"y":0.0},"t":10.0},{"pos":{"x":1.0,"y":0.0},"t":5.0}]}]"#
        )
        .is_none());
    }

    #[test]
    fn truncated_blob_rejected() {
        let a = archive();
        let blob = a.to_bytes();
        let cut = blob.slice(0..blob.len() - 7);
        assert!(TrajectoryArchive::from_bytes(cut).is_none());
        assert!(TrajectoryArchive::from_bytes(Bytes::new()).is_none());
    }

    #[test]
    fn nearest_points_order() {
        let a = archive();
        let dists: Vec<f64> = a
            .nearest_points(Point::new(0.0, 0.0))
            .map(|n| n.dist)
            .collect();
        assert_eq!(dists.len(), 5);
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
