//! The historical trajectory archive with its R-tree point index.
//!
//! The paper's preprocessing indexes *all* archived GPS points in an R-tree
//! so that reference search can issue two `φ`-range queries per query-point
//! pair (Section III-A). [`TrajectoryArchive`] owns the trips and the index,
//! and offers binary/JSON persistence so large simulated archives can be
//! generated once and reused across experiments.

use crate::types::{sanitize_points, GpsPoint, PointRepairs, SanitizeLimits, TrajId, Trajectory};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hris_geo::{BBox, Point};
use hris_obs::MetricsRegistry;
use hris_rtree::{RTree, Spatial};
use serde::{Deserialize, Serialize};

/// One archived observation: position + time + provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchivePoint {
    /// Observed position.
    pub pos: Point,
    /// Timestamp, seconds.
    pub t: f64,
    /// Which trajectory this observation belongs to.
    pub traj: TrajId,
    /// Index of the observation within its trajectory.
    pub point_idx: u32,
}

impl Spatial for ArchivePoint {
    fn bbox(&self) -> BBox {
        BBox::from_point(self.pos)
    }
}

/// The archive `A` of the problem statement: historical trips plus a
/// point-level spatial index.
#[derive(Debug, Clone)]
pub struct TrajectoryArchive {
    trajectories: Vec<Trajectory>,
    index: RTree<ArchivePoint>,
    num_points: usize,
}

impl TrajectoryArchive {
    /// Builds an archive from trips, reassigning contiguous [`TrajId`]s.
    #[must_use]
    pub fn new(mut trips: Vec<Trajectory>) -> Self {
        let mut points = Vec::new();
        for (i, t) in trips.iter_mut().enumerate() {
            t.id = TrajId(i as u32);
            for (k, p) in t.points.iter().enumerate() {
                points.push(ArchivePoint {
                    pos: p.pos,
                    t: p.t,
                    traj: t.id,
                    point_idx: k as u32,
                });
            }
        }
        let num_points = points.len();
        TrajectoryArchive {
            trajectories: trips,
            index: RTree::bulk_load(points),
            num_points,
        }
    }

    /// An empty archive.
    #[must_use]
    pub fn empty() -> Self {
        TrajectoryArchive::new(Vec::new())
    }

    /// Number of stored trajectories.
    #[inline]
    #[must_use]
    pub fn num_trajectories(&self) -> usize {
        self.trajectories.len()
    }

    /// Number of indexed GPS points across all trajectories.
    #[inline]
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Estimated heap bytes of the fully materialized archive: every
    /// trip's point vector plus the R-tree arena (which stores each point
    /// a second time as an [`ArchivePoint`]). This is the "before" number
    /// the columnar snapshot format is measured against in the capacity
    /// section of `BENCH_e2e.json`.
    #[must_use]
    pub fn memory_footprint(&self) -> usize {
        let trips: usize = self
            .trajectories
            .iter()
            .map(|t| {
                std::mem::size_of::<Trajectory>()
                    + t.points.capacity() * std::mem::size_of::<GpsPoint>()
            })
            .sum();
        trips + self.index.heap_bytes_estimate()
    }

    /// A trajectory by id.
    #[inline]
    #[must_use]
    pub fn trajectory(&self, id: TrajId) -> &Trajectory {
        &self.trajectories[id.index()]
    }

    /// All stored trajectories.
    #[inline]
    #[must_use]
    pub fn trajectories(&self) -> &[Trajectory] {
        &self.trajectories
    }

    /// All archived points within `radius` of `center` — the `φ`-range query
    /// of reference-trajectory search.
    #[must_use]
    pub fn points_within(&self, center: Point, radius: f64) -> Vec<&ArchivePoint> {
        self.index
            .query_circle(center, radius, |ap, q| ap.pos.dist(q))
    }

    /// Best-first iterator over archived points by distance from `p`.
    pub fn nearest_points(
        &self,
        p: Point,
    ) -> impl Iterator<Item = hris_rtree::Neighbor<'_, ArchivePoint>> {
        self.index.nearest_iter(p, |ap, q| ap.pos.dist(q))
    }

    /// Bounding box of all archived points.
    #[must_use]
    pub fn bbox(&self) -> BBox {
        self.index.bbox()
    }

    // ------------------------------------------------ incremental maintenance

    /// Appends one (already repaired) trajectory, assigning it the next
    /// contiguous [`TrajId`] and inserting its points into the existing
    /// R-tree one by one instead of re-bulk-loading the whole index. This is
    /// the maintenance path behind [`crate::ingest::ArchiveWriter`]; batch
    /// rebuilds should keep using [`TrajectoryArchive::new`].
    pub fn append_trajectory(&mut self, mut trip: Trajectory) -> TrajId {
        let id = TrajId(self.trajectories.len() as u32);
        trip.id = id;
        for (k, p) in trip.points.iter().enumerate() {
            self.index.insert(ArchivePoint {
                pos: p.pos,
                t: p.t,
                traj: id,
                point_idx: k as u32,
            });
        }
        self.num_points += trip.points.len();
        self.trajectories.push(trip);
        id
    }

    /// Evicts the `n` oldest trajectories (lowest ids): batch-deletes their
    /// points from the index with `remove_where`, then remaps the surviving
    /// points' [`TrajId`]s in place so ids stay contiguous from zero.
    /// Returns the number of points removed.
    pub fn evict_front(&mut self, n: usize) -> usize {
        let n = n.min(self.trajectories.len());
        if n == 0 {
            return 0;
        }
        let region = self.index.bbox();
        let removed = self
            .index
            .remove_where(&region, |ap| ap.traj.index() < n)
            .len();
        let shift = n as u32;
        for ap in self.index.items_mut() {
            ap.traj = TrajId(ap.traj.0 - shift);
        }
        self.trajectories.drain(..n);
        for (i, t) in self.trajectories.iter_mut().enumerate() {
            t.id = TrajId(i as u32);
        }
        self.num_points -= removed;
        removed
    }

    // ---------------------------------------------------------- persistence

    /// Serialises the archive's trajectories to a compact binary blob.
    ///
    /// Layout: `u32 trip_count`, then per trip `u32 point_count` followed by
    /// `point_count × (f64 x, f64 y, f64 t)` little-endian records. The
    /// R-tree is rebuilt on load (bulk load is cheap relative to I/O).
    #[must_use]
    pub fn to_bytes(&self) -> Bytes {
        encode_trips(&self.trajectories)
    }

    /// Serialises the trajectories as pretty JSON (interchange/debugging;
    /// the binary codec is ~6× smaller and faster for bulk storage).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.trajectories).expect("trajectories serialise")
    }

    /// Restores an archive from [`TrajectoryArchive::to_json`] output.
    ///
    /// Returns `None` on malformed JSON or time-disordered trajectories.
    #[must_use]
    pub fn from_json(text: &str) -> Option<Self> {
        let trips: Vec<Trajectory> = serde_json::from_str(text).ok()?;
        if trips
            .iter()
            .any(|t| !t.points.windows(2).all(|w| w[0].t <= w[1].t))
        {
            return None;
        }
        Some(TrajectoryArchive::new(trips))
    }

    /// Restores an archive from [`TrajectoryArchive::to_bytes`] output.
    ///
    /// Returns `None` on truncated or malformed input.
    #[must_use]
    pub fn from_bytes(mut data: Bytes) -> Option<Self> {
        if data.remaining() < 4 {
            return None;
        }
        let trips = data.get_u32_le() as usize;
        let mut out = Vec::with_capacity(trips);
        for i in 0..trips {
            if data.remaining() < 4 {
                return None;
            }
            let n = data.get_u32_le() as usize;
            if data.remaining() < n * 24 {
                return None;
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                let x = data.get_f64_le();
                let y = data.get_f64_le();
                let t = data.get_f64_le();
                pts.push(GpsPoint::new(Point::new(x, y), t));
            }
            // Guard against corrupted time ordering.
            if !pts.windows(2).all(|w| w[0].t <= w[1].t) {
                return None;
            }
            out.push(Trajectory::new(TrajId(i as u32), pts));
        }
        Some(TrajectoryArchive::new(out))
    }

    // ------------------------------------------------------ tolerant loading

    /// Restores an archive from [`TrajectoryArchive::to_bytes`] output,
    /// repairing what it can and quarantining what it cannot — this loader
    /// never fails. A truncated blob yields every record that parsed before
    /// the cut (`report.truncated` set); dirty records are repaired or
    /// quarantined per [`TolerantLoadOptions`].
    #[must_use]
    pub fn from_bytes_tolerant(mut data: Bytes, opts: &TolerantLoadOptions) -> (Self, LoadReport) {
        let mut report = LoadReport::default();
        let mut raw = Vec::new();
        if data.remaining() < 4 {
            report.truncated = true;
            return Self::build_tolerant(raw, opts, report);
        }
        let trips = data.get_u32_le() as usize;
        for _ in 0..trips {
            if data.remaining() < 4 {
                report.truncated = true;
                break;
            }
            let n = data.get_u32_le() as usize;
            if data.remaining() < n * 24 {
                // Salvage the whole records that did arrive.
                let whole = data.remaining() / 24;
                let mut pts = Vec::with_capacity(whole);
                for _ in 0..whole {
                    let x = data.get_f64_le();
                    let y = data.get_f64_le();
                    let t = data.get_f64_le();
                    pts.push(GpsPoint::new(Point::new(x, y), t));
                }
                raw.push(pts);
                report.truncated = true;
                break;
            }
            let mut pts = Vec::with_capacity(n);
            for _ in 0..n {
                let x = data.get_f64_le();
                let y = data.get_f64_le();
                let t = data.get_f64_le();
                pts.push(GpsPoint::new(Point::new(x, y), t));
            }
            raw.push(pts);
        }
        Self::build_tolerant(raw, opts, report)
    }

    /// Restores an archive from [`TrajectoryArchive::to_json`] output,
    /// repairing/quarantining dirty records — never fails. JSON that does
    /// not parse at all yields an empty archive with `report.malformed` set.
    #[must_use]
    pub fn from_json_tolerant(text: &str, opts: &TolerantLoadOptions) -> (Self, LoadReport) {
        let mut report = LoadReport::default();
        let raw = match serde_json::from_str::<Vec<Trajectory>>(text) {
            Ok(trips) => trips.into_iter().map(|t| t.points).collect(),
            Err(_) => {
                report.malformed = true;
                Vec::new()
            }
        };
        Self::build_tolerant(raw, opts, report)
    }

    /// Shared repair/quarantine pass over raw per-trip point sequences.
    fn build_tolerant(
        raw: Vec<Vec<GpsPoint>>,
        opts: &TolerantLoadOptions,
        mut report: LoadReport,
    ) -> (TrajectoryArchive, LoadReport) {
        let mut kept = Vec::new();
        for mut pts in raw {
            let r = sanitize_points(&mut pts, &opts.limits);
            let teleports = strip_teleports(&mut pts, opts.max_speed_mps);
            if r.sorted {
                report.trajectories_resorted += 1;
            }
            report.repairs.merge(&r);
            report.teleports_removed += teleports;
            report.points_quarantined += r.points_dropped() + teleports;
            if pts.is_empty() {
                report.trajectories_quarantined += 1;
                continue;
            }
            report.points_loaded += pts.len();
            // Sanitization restored time order, so the checked constructor
            // cannot panic here.
            kept.push(Trajectory::new(TrajId(kept.len() as u32), pts));
        }
        report.trajectories_loaded = kept.len();
        (TrajectoryArchive::new(kept), report)
    }
}

/// Serialises trips in the [`TrajectoryArchive::to_bytes`] layout without
/// building an archive (and thus without indexing — corrupted trips with
/// NaN coordinates must be encodable for fault-injection tests).
#[must_use]
pub fn encode_trips(trips: &[Trajectory]) -> Bytes {
    let n: usize = trips.iter().map(Trajectory::len).sum();
    let mut buf = BytesMut::with_capacity(8 + n * 24);
    buf.put_u32_le(trips.len() as u32);
    for t in trips {
        buf.put_u32_le(t.points.len() as u32);
        for p in &t.points {
            buf.put_f64_le(p.pos.x);
            buf.put_f64_le(p.pos.y);
            buf.put_f64_le(p.t);
        }
    }
    buf.freeze()
}

/// Repair limits for tolerant archive loading.
#[derive(Debug, Clone, PartialEq)]
pub struct TolerantLoadOptions {
    /// Magnitude limits for coordinates/timestamps.
    pub limits: SanitizeLimits,
    /// Maximum plausible speed between consecutive observations, m/s.
    /// Hops implying more are GPS teleports; the offending point is dropped.
    /// 150 m/s (540 km/h) clears any road vehicle by a wide margin.
    pub max_speed_mps: f64,
}

impl Default for TolerantLoadOptions {
    fn default() -> Self {
        TolerantLoadOptions {
            limits: SanitizeLimits::default(),
            max_speed_mps: 150.0,
        }
    }
}

/// What tolerant loading did: per-archive repair/quarantine accounting.
/// Serialises to JSON for operator visibility (golden-pinned schema).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LoadReport {
    /// Trajectories stored after repair.
    pub trajectories_loaded: usize,
    /// Trajectories dropped entirely (no usable points remained).
    pub trajectories_quarantined: usize,
    /// Points stored after repair.
    pub points_loaded: usize,
    /// Points dropped across all repair rules (non-finite, out-of-range,
    /// duplicate records, teleports).
    pub points_quarantined: usize,
    /// Points dropped by the speed filter specifically.
    pub teleports_removed: usize,
    /// Trajectories whose timestamps had to be re-sorted.
    pub trajectories_resorted: usize,
    /// Archive-wide [`sanitize_points`] totals.
    pub repairs: PointRepairs,
    /// Binary stream ended mid-record; everything before the cut was kept.
    pub truncated: bool,
    /// Input did not parse at all; nothing was loaded.
    pub malformed: bool,
}

impl LoadReport {
    /// `true` when the load needed no repairs or quarantine at all.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.trajectories_quarantined == 0
            && self.points_quarantined == 0
            && self.trajectories_resorted == 0
            && !self.truncated
            && !self.malformed
    }

    /// The report as pretty JSON (schema pinned by a golden test).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("LoadReport serialises")
    }

    /// Publishes the quarantine counters onto a metrics registry
    /// (`hris_records_quarantined_total` and friends; counters are
    /// registered even when zero so dashboards always see the family).
    pub fn record_on(&self, registry: &MetricsRegistry) {
        registry
            .counter(
                "hris_records_quarantined_total",
                "Archive trajectories dropped entirely by tolerant loading.",
            )
            .add(self.trajectories_quarantined as u64);
        registry
            .counter(
                "hris_points_quarantined_total",
                "Archive points dropped by tolerant-loading repair rules.",
            )
            .add(self.points_quarantined as u64);
        registry
            .counter(
                "hris_archive_trajectories_loaded_total",
                "Archive trajectories stored after tolerant loading.",
            )
            .add(self.trajectories_loaded as u64);
        registry
            .counter(
                "hris_archive_loads_truncated_total",
                "Tolerant loads that hit a truncated input stream.",
            )
            .add(u64::from(self.truncated));
    }
}

/// Drops observations whose implied speed from the previously kept point
/// exceeds `max_speed_mps` (teleport spikes). Anchored greedily at the first
/// point; if that anchor itself is the outlier (more than half the trip
/// would be dropped), the scan retries anchored at the second point and
/// keeps the better outcome. Duplicate timestamps use the same `dt ≥ 1 s`
/// floor as local inference, so same-second observations a few metres apart
/// survive. Returns the number of points removed.
pub(crate) fn strip_teleports(pts: &mut Vec<GpsPoint>, max_speed_mps: f64) -> usize {
    fn greedy(pts: &[GpsPoint], max_speed_mps: f64) -> Vec<GpsPoint> {
        let mut kept: Vec<GpsPoint> = Vec::with_capacity(pts.len());
        for p in pts {
            match kept.last() {
                Some(prev) => {
                    let dt = (p.t - prev.t).max(1.0);
                    if prev.dist(p) / dt <= max_speed_mps {
                        kept.push(*p);
                    }
                }
                None => kept.push(*p),
            }
        }
        kept
    }
    if pts.len() < 2 {
        return 0;
    }
    let first = greedy(pts, max_speed_mps);
    let kept = if first.len() * 2 < pts.len() {
        let retry = greedy(&pts[1..], max_speed_mps);
        if retry.len() > first.len() {
            retry
        } else {
            first
        }
    } else {
        first
    };
    let removed = pts.len() - kept.len();
    *pts = kept;
    removed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn archive() -> TrajectoryArchive {
        let t1 = Trajectory::new(
            TrajId(99), // id is reassigned by the archive
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(100.0, 0.0), 10.0),
            ],
        );
        let t2 = Trajectory::new(
            TrajId(7),
            vec![
                GpsPoint::new(Point::new(0.0, 100.0), 5.0),
                GpsPoint::new(Point::new(100.0, 100.0), 15.0),
                GpsPoint::new(Point::new(200.0, 100.0), 25.0),
            ],
        );
        TrajectoryArchive::new(vec![t1, t2])
    }

    #[test]
    fn ids_are_reassigned_contiguously() {
        let a = archive();
        assert_eq!(a.num_trajectories(), 2);
        assert_eq!(a.trajectory(TrajId(0)).id, TrajId(0));
        assert_eq!(a.trajectory(TrajId(1)).id, TrajId(1));
        assert_eq!(a.num_points(), 5);
    }

    #[test]
    fn range_query_returns_provenance() {
        let a = archive();
        let hits = a.points_within(Point::new(0.0, 50.0), 60.0);
        assert_eq!(hits.len(), 2);
        let mut trajs: Vec<TrajId> = hits.iter().map(|h| h.traj).collect();
        trajs.sort();
        assert_eq!(trajs, vec![TrajId(0), TrajId(1)]);
        for h in hits {
            // Back-reference resolves to the same coordinates.
            let orig = a.trajectory(h.traj).points[h.point_idx as usize];
            assert_eq!(orig.pos, h.pos);
            assert_eq!(orig.t, h.t);
        }
    }

    #[test]
    fn empty_archive() {
        let a = TrajectoryArchive::empty();
        assert_eq!(a.num_trajectories(), 0);
        assert_eq!(a.num_points(), 0);
        assert!(a.points_within(Point::ORIGIN, 1000.0).is_empty());
    }

    #[test]
    fn binary_roundtrip() {
        let a = archive();
        let blob = a.to_bytes();
        let b = TrajectoryArchive::from_bytes(blob).unwrap();
        assert_eq!(b.num_trajectories(), a.num_trajectories());
        assert_eq!(b.num_points(), a.num_points());
        for (x, y) in a.trajectories().iter().zip(b.trajectories().iter()) {
            assert_eq!(x.points, y.points);
        }
    }

    #[test]
    fn json_roundtrip() {
        let a = archive();
        let text = a.to_json();
        let b = TrajectoryArchive::from_json(&text).unwrap();
        assert_eq!(b.num_trajectories(), a.num_trajectories());
        for (x, y) in a.trajectories().iter().zip(b.trajectories().iter()) {
            assert_eq!(x.points, y.points);
        }
        assert!(TrajectoryArchive::from_json("not json").is_none());
        assert!(TrajectoryArchive::from_json(
            r#"[{"id":0,"points":[{"pos":{"x":0.0,"y":0.0},"t":10.0},{"pos":{"x":1.0,"y":0.0},"t":5.0}]}]"#
        )
        .is_none());
    }

    #[test]
    fn truncated_blob_rejected() {
        let a = archive();
        let blob = a.to_bytes();
        let cut = blob.slice(0..blob.len() - 7);
        assert!(TrajectoryArchive::from_bytes(cut).is_none());
        assert!(TrajectoryArchive::from_bytes(Bytes::new()).is_none());
    }

    #[test]
    fn nearest_points_order() {
        let a = archive();
        let dists: Vec<f64> = a
            .nearest_points(Point::new(0.0, 0.0))
            .map(|n| n.dist)
            .collect();
        assert_eq!(dists.len(), 5);
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    // -------------------------------------------- incremental maintenance

    #[test]
    fn append_trajectory_maintains_index_incrementally() {
        let mut a = archive();
        let id = a.append_trajectory(Trajectory::new(
            TrajId(42), // reassigned
            vec![
                GpsPoint::new(Point::new(500.0, 500.0), 0.0),
                GpsPoint::new(Point::new(600.0, 500.0), 10.0),
            ],
        ));
        assert_eq!(id, TrajId(2));
        assert_eq!(a.num_trajectories(), 3);
        assert_eq!(a.num_points(), 7);
        assert_eq!(a.trajectory(id).id, id);
        // The new points are query-visible with correct provenance.
        let hits = a.points_within(Point::new(550.0, 500.0), 60.0);
        assert_eq!(hits.len(), 2);
        for h in hits {
            assert_eq!(h.traj, id);
            let orig = a.trajectory(h.traj).points[h.point_idx as usize];
            assert_eq!(orig.pos, h.pos);
        }
    }

    #[test]
    fn evict_front_remaps_ids_contiguously() {
        let mut a = archive();
        a.append_trajectory(Trajectory::new(
            TrajId(0),
            vec![GpsPoint::new(Point::new(500.0, 500.0), 0.0)],
        ));
        let removed = a.evict_front(1); // drops the 2-point trip
        assert_eq!(removed, 2);
        assert_eq!(a.num_trajectories(), 2);
        assert_eq!(a.num_points(), 4);
        for (i, t) in a.trajectories().iter().enumerate() {
            assert_eq!(t.id, TrajId(i as u32));
        }
        // Index provenance was remapped along with the trips.
        for h in a.points_within(Point::new(100.0, 100.0), 1e6) {
            let orig = a.trajectory(h.traj).points[h.point_idx as usize];
            assert_eq!(orig.pos, h.pos);
            assert_eq!(orig.t, h.t);
        }
        // Evicting more than remains empties the archive without panicking.
        assert_eq!(a.evict_front(10), 4);
        assert_eq!(a.num_trajectories(), 0);
        assert_eq!(a.num_points(), 0);
        assert_eq!(a.evict_front(1), 0);
    }

    #[test]
    fn incremental_build_matches_bulk_build() {
        let bulk = archive();
        let mut inc = TrajectoryArchive::empty();
        for t in bulk.trajectories() {
            inc.append_trajectory(t.clone());
        }
        assert_eq!(inc.num_trajectories(), bulk.num_trajectories());
        assert_eq!(inc.num_points(), bulk.num_points());
        // Same range-query result *sets* (order may differ between a
        // bulk-loaded and an insert-built tree).
        for (c, r) in [
            (Point::new(0.0, 50.0), 60.0),
            (Point::new(100.0, 100.0), 250.0),
            (Point::ORIGIN, 1e6),
        ] {
            let key = |ap: &&ArchivePoint| (ap.traj, ap.point_idx);
            let mut a: Vec<_> = bulk.points_within(c, r);
            let mut b: Vec<_> = inc.points_within(c, r);
            a.sort_by_key(key);
            b.sort_by_key(key);
            assert_eq!(
                a.iter().map(key).collect::<Vec<_>>(),
                b.iter().map(key).collect::<Vec<_>>()
            );
        }
    }

    // ------------------------------------------------- tolerant loading

    fn opts() -> TolerantLoadOptions {
        TolerantLoadOptions::default()
    }

    #[test]
    fn tolerant_load_of_clean_blob_is_lossless() {
        let a = archive();
        let (b, report) = TrajectoryArchive::from_bytes_tolerant(a.to_bytes(), &opts());
        assert!(report.clean(), "clean blob produced repairs: {report:?}");
        assert_eq!(report.trajectories_loaded, a.num_trajectories());
        assert_eq!(report.points_loaded, a.num_points());
        for (x, y) in a.trajectories().iter().zip(b.trajectories()) {
            assert_eq!(x.points, y.points);
        }
    }

    #[test]
    fn out_of_order_timestamps_are_repaired_not_rejected() {
        let dirty = Trajectory::from_unchecked(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 20.0),
                GpsPoint::new(Point::new(100.0, 0.0), 10.0),
            ],
        );
        let blob = encode_trips(&[dirty]);
        assert!(TrajectoryArchive::from_bytes(blob.clone()).is_none());
        let (a, report) = TrajectoryArchive::from_bytes_tolerant(blob, &opts());
        assert_eq!(report.trajectories_resorted, 1);
        assert_eq!(report.trajectories_loaded, 1);
        assert_eq!(report.trajectories_quarantined, 0);
        let times: Vec<f64> = a.trajectories()[0].points.iter().map(|p| p.t).collect();
        assert_eq!(times, vec![10.0, 20.0]);
    }

    #[test]
    fn nan_and_out_of_range_points_are_quarantined() {
        let dirty = Trajectory::from_unchecked(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(f64::NAN, 0.0), 10.0),
                GpsPoint::new(Point::new(5.0e8, 0.0), 20.0),
                GpsPoint::new(Point::new(100.0, 0.0), 30.0),
            ],
        );
        let (a, report) = TrajectoryArchive::from_bytes_tolerant(encode_trips(&[dirty]), &opts());
        assert_eq!(report.repairs.dropped_non_finite, 1);
        assert_eq!(report.repairs.dropped_out_of_range, 1);
        assert_eq!(report.points_quarantined, 2);
        assert_eq!(report.points_loaded, 2);
        assert_eq!(a.trajectories()[0].points.len(), 2);
    }

    #[test]
    fn duplicate_records_are_deduped() {
        let p = GpsPoint::new(Point::new(0.0, 0.0), 5.0);
        let dirty = Trajectory::from_unchecked(
            TrajId(0),
            vec![p, p, GpsPoint::new(Point::new(50.0, 0.0), 10.0)],
        );
        let (a, report) = TrajectoryArchive::from_bytes_tolerant(encode_trips(&[dirty]), &opts());
        assert_eq!(report.repairs.deduped, 1);
        assert_eq!(a.trajectories()[0].points.len(), 2);
    }

    #[test]
    fn teleport_spike_is_removed() {
        let dirty = Trajectory::from_unchecked(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(200_000.0, 0.0), 30.0), // 6.6 km/s spike
                GpsPoint::new(Point::new(200.0, 0.0), 60.0),
            ],
        );
        let (a, report) = TrajectoryArchive::from_bytes_tolerant(encode_trips(&[dirty]), &opts());
        assert_eq!(report.teleports_removed, 1);
        assert_eq!(a.trajectories()[0].points.len(), 2);
        // A teleported *first* point is the outlier, not the anchor: the
        // retry pass keeps the rest of the trip.
        let head_bad = Trajectory::from_unchecked(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(300_000.0, 0.0), 0.0),
                GpsPoint::new(Point::new(0.0, 0.0), 30.0),
                GpsPoint::new(Point::new(100.0, 0.0), 60.0),
                GpsPoint::new(Point::new(200.0, 0.0), 90.0),
            ],
        );
        let (a, report) =
            TrajectoryArchive::from_bytes_tolerant(encode_trips(&[head_bad]), &opts());
        assert_eq!(report.teleports_removed, 1);
        assert_eq!(a.trajectories()[0].points.len(), 3);
        assert_eq!(a.trajectories()[0].points[0].pos.x, 0.0);
    }

    #[test]
    fn empty_trip_is_quarantined_single_point_kept() {
        let empty = Trajectory::from_unchecked(TrajId(0), vec![]);
        let single = Trajectory::from_unchecked(TrajId(1), vec![GpsPoint::new(Point::ORIGIN, 0.0)]);
        let (a, report) =
            TrajectoryArchive::from_bytes_tolerant(encode_trips(&[empty, single]), &opts());
        assert_eq!(report.trajectories_quarantined, 1);
        assert_eq!(report.trajectories_loaded, 1);
        assert_eq!(a.num_trajectories(), 1);
        assert_eq!(a.trajectories()[0].points.len(), 1);
    }

    #[test]
    fn all_nan_trip_is_quarantined_entirely() {
        let garbage = Trajectory::from_unchecked(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(f64::NAN, f64::NAN), f64::NAN),
                GpsPoint::new(Point::new(f64::NAN, 0.0), 1.0),
            ],
        );
        let (a, report) = TrajectoryArchive::from_bytes_tolerant(encode_trips(&[garbage]), &opts());
        assert_eq!(report.trajectories_quarantined, 1);
        assert_eq!(a.num_trajectories(), 0);
    }

    #[test]
    fn truncated_blob_salvages_prefix() {
        let a = archive();
        let blob = a.to_bytes();
        // Cut mid-record of the second trip: trip 0 (2 points) survives,
        // trip 1 keeps only its whole records before the cut.
        let cut = blob.slice(0..blob.len() - 7);
        assert!(TrajectoryArchive::from_bytes(cut.clone()).is_none());
        let (b, report) = TrajectoryArchive::from_bytes_tolerant(cut, &opts());
        assert!(report.truncated);
        assert_eq!(b.num_trajectories(), 2);
        assert_eq!(b.trajectories()[0].points, a.trajectories()[0].points);
        assert_eq!(b.trajectories()[1].points.len(), 2); // third record lost
        let (c, report) = TrajectoryArchive::from_bytes_tolerant(Bytes::new(), &opts());
        assert!(report.truncated);
        assert_eq!(c.num_trajectories(), 0);
    }

    #[test]
    fn malformed_json_yields_empty_archive_with_flag() {
        let (a, report) = TrajectoryArchive::from_json_tolerant("not json", &opts());
        assert!(report.malformed);
        assert_eq!(a.num_trajectories(), 0);
        // Parseable JSON with disorder is repaired, not refused.
        let json = r#"[{"id":0,"points":[{"pos":{"x":0.0,"y":0.0},"t":10.0},{"pos":{"x":1.0,"y":0.0},"t":5.0}]}]"#;
        assert!(TrajectoryArchive::from_json(json).is_none());
        let (b, report) = TrajectoryArchive::from_json_tolerant(json, &opts());
        assert!(!report.malformed);
        assert_eq!(report.trajectories_resorted, 1);
        assert_eq!(b.num_trajectories(), 1);
    }

    #[test]
    fn load_report_records_counters_even_at_zero() {
        let registry = MetricsRegistry::new();
        LoadReport::default().record_on(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hris_records_quarantined_total"), Some(0));
        assert_eq!(snap.counter("hris_points_quarantined_total"), Some(0));
        let report = LoadReport {
            trajectories_quarantined: 3,
            points_quarantined: 17,
            truncated: true,
            ..LoadReport::default()
        };
        report.record_on(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hris_records_quarantined_total"), Some(3));
        assert_eq!(snap.counter("hris_points_quarantined_total"), Some(17));
        assert_eq!(snap.counter("hris_archive_loads_truncated_total"), Some(1));
    }
}
