//! Spatial partitioning of a [`TrajectoryArchive`] into per-shard archives
//! with boundary replication.
//!
//! The sharded engine splits the city into region cells; each shard serves
//! the queries of its cell from a local archive. Reference search (the only
//! archive access of the pipeline) is a φ-radius range query around query
//! points, so a shard can answer **exactly** like the global engine for any
//! query whose φ-inflated bounding box lies inside the shard's replication
//! region, provided the shard archive holds every trajectory that touches
//! that region. The replication rule here guarantees precisely that:
//!
//! * **Ownership** — a trajectory is *owned* by the first region (lowest
//!   shard index) whose core cell contains its first point; a trajectory
//!   outside every core falls to the shard whose core is nearest to its
//!   first point (ties to the lowest index). Ownership is unique and is
//!   what capacity accounting uses.
//! * **Replication** — a trajectory is *stored* on every shard whose
//!   inflated region (`core.inflated(margin_m)`) intersects the
//!   trajectory's bounding box. The owner always stores its trajectory
//!   (its core contains — or is nearest to — the first point).
//!
//! Each shard archive keeps the **relative order** of the parent archive,
//! so shard-local [`TrajId`]s are an order-preserving renumbering of the
//! parent ids; [`ArchivePartition::id_maps`] translates back.

use crate::archive::TrajectoryArchive;
use crate::types::{TrajId, Trajectory};
use hris_geo::BBox;

/// Result of [`partition_archive`]: per-shard archives plus the bookkeeping
/// that ties their trajectories back to the parent archive.
pub struct ArchivePartition {
    /// One archive per region, in region order. Trajectory order inside
    /// each shard preserves the parent archive's order.
    pub shards: Vec<TrajectoryArchive>,
    /// `id_maps[s][local.index()]` is the parent [`TrajId`] of shard `s`'s
    /// local trajectory `local`. Each map is strictly increasing.
    pub id_maps: Vec<Vec<TrajId>>,
    /// `owners[t]` is the owning shard of parent trajectory `t`.
    pub owners: Vec<usize>,
    /// Total stored copies across shards (≥ the parent trajectory count;
    /// `replicas / parent_len` is the replication factor).
    pub replicas: usize,
}

impl ArchivePartition {
    /// Stored-copies-per-trajectory ratio (1.0 = no boundary replication).
    #[must_use]
    pub fn replication_factor(&self) -> f64 {
        self.replicas as f64 / self.owners.len().max(1) as f64
    }
}

/// Partitions `archive` over the region `cores` with a replication margin
/// (see the module docs for the exact ownership and replication rules).
///
/// # Panics
/// Panics when `cores` is empty or `margin_m` is negative/non-finite.
#[must_use]
pub fn partition_archive(
    archive: &TrajectoryArchive,
    cores: &[BBox],
    margin_m: f64,
) -> ArchivePartition {
    assert!(!cores.is_empty(), "partition needs at least one region");
    assert!(
        margin_m.is_finite() && margin_m >= 0.0,
        "replication margin must be a non-negative finite number of metres"
    );
    let regions: Vec<BBox> = cores.iter().map(|c| c.inflated(margin_m)).collect();

    let mut per_shard: Vec<Vec<Trajectory>> = vec![Vec::new(); cores.len()];
    let mut id_maps: Vec<Vec<TrajId>> = vec![Vec::new(); cores.len()];
    let mut owners: Vec<usize> = Vec::with_capacity(archive.num_trajectories());
    let mut replicas = 0usize;

    for traj in archive.trajectories() {
        let owner = match traj.points.first() {
            Some(p) => cores
                .iter()
                .position(|c| c.contains_point(p.pos))
                .unwrap_or_else(|| nearest_core(cores, p.pos)),
            // A pointless trajectory matches no range query anywhere; park
            // it on shard 0 so ownership stays total.
            None => 0,
        };
        owners.push(owner);

        let tb = traj.bbox();
        for (s, region) in regions.iter().enumerate() {
            if s == owner || region.intersects(&tb) {
                per_shard[s].push(traj.clone());
                id_maps[s].push(traj.id);
                replicas += 1;
            }
        }
    }

    let shards = per_shard.into_iter().map(TrajectoryArchive::new).collect();
    ArchivePartition {
        shards,
        id_maps,
        owners,
        replicas,
    }
}

/// The core nearest to `p` (by box distance), ties to the lowest index.
fn nearest_core(cores: &[BBox], p: hris_geo::Point) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in cores.iter().enumerate() {
        let d = c.min_dist(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GpsPoint;
    use hris_geo::Point;

    fn traj(id: u32, pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            TrajId(id),
            pts.iter()
                .enumerate()
                .map(|(k, &(x, y))| GpsPoint::new(Point::new(x, y), k as f64 * 30.0))
                .collect(),
        )
    }

    /// Two side-by-side 1 km cells.
    fn cores() -> Vec<BBox> {
        vec![
            BBox::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0)),
            BBox::new(Point::new(1000.0, 0.0), Point::new(2000.0, 1000.0)),
        ]
    }

    #[test]
    fn ownership_is_unique_and_replication_respects_margin() {
        let archive = TrajectoryArchive::new(vec![
            traj(0, &[(100.0, 500.0), (300.0, 500.0)]), // deep in shard 0
            traj(0, &[(1900.0, 500.0), (1700.0, 500.0)]), // deep in shard 1
            traj(0, &[(950.0, 500.0), (1050.0, 500.0)]), // straddles the seam
        ]);
        let p = partition_archive(&archive, &cores(), 100.0);
        assert_eq!(p.owners, vec![0, 1, 0]);
        // The deep trajectories live on their shard only; the seam
        // trajectory is replicated to both.
        assert_eq!(p.shards[0].num_trajectories(), 2);
        assert_eq!(p.shards[1].num_trajectories(), 2);
        assert_eq!(p.replicas, 4);
        assert_eq!(p.id_maps[0], vec![TrajId(0), TrajId(2)]);
        assert_eq!(p.id_maps[1], vec![TrajId(1), TrajId(2)]);
        assert!((p.replication_factor() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn margin_widens_replication() {
        let archive = TrajectoryArchive::new(vec![
            // 150 m from the seam on the shard-0 side.
            traj(0, &[(850.0, 500.0), (800.0, 500.0)]),
        ]);
        let narrow = partition_archive(&archive, &cores(), 100.0);
        assert_eq!(narrow.shards[1].num_trajectories(), 0);
        let wide = partition_archive(&archive, &cores(), 200.0);
        assert_eq!(wide.shards[1].num_trajectories(), 1);
    }

    #[test]
    fn out_of_bounds_trajectory_falls_to_nearest_core() {
        let archive = TrajectoryArchive::new(vec![
            traj(0, &[(2500.0, 500.0), (2600.0, 500.0)]), // right of both cells
        ]);
        let p = partition_archive(&archive, &cores(), 0.0);
        assert_eq!(p.owners, vec![1]);
        // The owner stores it even though no region intersects its bbox.
        assert_eq!(p.shards[1].num_trajectories(), 1);
        assert_eq!(p.shards[0].num_trajectories(), 0);
    }

    #[test]
    fn shard_order_preserves_parent_order() {
        let trips: Vec<Trajectory> = (0..20)
            .map(|i| {
                let x = 50.0 + (i as f64 * 97.0) % 1900.0;
                traj(0, &[(x, 100.0), (x + 20.0, 120.0)])
            })
            .collect();
        let archive = TrajectoryArchive::new(trips);
        let p = partition_archive(&archive, &cores(), 250.0);
        for map in &p.id_maps {
            assert!(map.windows(2).all(|w| w[0] < w[1]), "id maps increase");
        }
        let stored: usize = p.id_maps.iter().map(Vec::len).sum();
        assert_eq!(stored, p.replicas);
        assert!(stored >= archive.num_trajectories());
    }
}
