//! Core trajectory types (Definition 1 of the paper).

use hris_geo::{BBox, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a trajectory within an archive.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TrajId(pub u32);

impl TrajId {
    /// The id as a `usize` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TrajId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A time-stamped GPS observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsPoint {
    /// Observed position (local planar frame, metres).
    pub pos: Point,
    /// Timestamp in seconds since the scenario epoch.
    pub t: f64,
}

impl GpsPoint {
    /// Creates a GPS point.
    #[inline]
    #[must_use]
    pub const fn new(pos: Point, t: f64) -> Self {
        GpsPoint { pos, t }
    }

    /// Planar distance to another observation, metres.
    #[inline]
    #[must_use]
    pub fn dist(&self, other: &GpsPoint) -> f64 {
        self.pos.dist(other.pos)
    }
}

/// Why a trajectory failed validation ([`Trajectory::try_new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryError {
    /// A coordinate or timestamp is NaN or infinite.
    NonFinite {
        /// Index of the first offending observation.
        index: usize,
    },
    /// Timestamps are not in non-decreasing order.
    TimeDisorder {
        /// Index of the first observation earlier than its predecessor.
        index: usize,
    },
}

impl fmt::Display for TrajectoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrajectoryError::NonFinite { index } => {
                write!(f, "non-finite coordinate or timestamp at point {index}")
            }
            TrajectoryError::TimeDisorder { index } => {
                write!(f, "timestamp at point {index} precedes its predecessor")
            }
        }
    }
}

impl std::error::Error for TrajectoryError {}

/// A GPS trajectory: a time-ordered sequence of observations
/// (`p₁ → p₂ → … → pₙ`, Definition 1).
///
/// The fields are public for read access across the workspace, but every
/// ingest path (constructors, archive loaders, deserialised data) is expected
/// to go through [`Trajectory::new`] / [`Trajectory::try_new`] or to re-check
/// with [`Trajectory::validate`]. Deliberately malformed instances — fault
/// injection, tolerant loading — use [`Trajectory::from_unchecked`] so the
/// bypass is explicit at the call site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trajectory {
    /// Identifier (assigned when stored in an archive; 0 for ad-hoc data).
    pub id: TrajId,
    /// Observations in non-decreasing time order.
    pub points: Vec<GpsPoint>,
}

impl Trajectory {
    /// A trajectory from raw points.
    ///
    /// # Panics
    /// Panics if the points are not in non-decreasing time order.
    #[must_use]
    pub fn new(id: TrajId, points: Vec<GpsPoint>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].t <= w[1].t),
            "trajectory points must be time-ordered"
        );
        Trajectory { id, points }
    }

    /// Fallible construction: rejects non-finite values and time disorder
    /// instead of panicking. Empty and single-point trajectories are valid.
    pub fn try_new(id: TrajId, points: Vec<GpsPoint>) -> Result<Self, TrajectoryError> {
        let t = Trajectory { id, points };
        t.validate()?;
        Ok(t)
    }

    /// A trajectory from raw points with **no** validation.
    ///
    /// For fault injectors and tolerant loaders that must represent dirty
    /// data as it arrived. Anything built this way must not be fed to the
    /// clean-input pipeline without a [`Trajectory::validate`] /
    /// sanitization pass.
    #[must_use]
    pub fn from_unchecked(id: TrajId, points: Vec<GpsPoint>) -> Self {
        Trajectory { id, points }
    }

    /// Checks the invariants [`Trajectory::new`] asserts plus finiteness
    /// (serde `Deserialize` and direct struct literals bypass `new`, so
    /// ingest paths re-validate with this).
    pub fn validate(&self) -> Result<(), TrajectoryError> {
        for (i, p) in self.points.iter().enumerate() {
            if !(p.pos.x.is_finite() && p.pos.y.is_finite() && p.t.is_finite()) {
                return Err(TrajectoryError::NonFinite { index: i });
            }
        }
        if let Some(i) = (1..self.points.len()).find(|&i| self.points[i].t < self.points[i - 1].t) {
            return Err(TrajectoryError::TimeDisorder { index: i });
        }
        Ok(())
    }

    /// `true` when timestamps are in non-decreasing order.
    #[must_use]
    pub fn is_time_ordered(&self) -> bool {
        self.points.windows(2).all(|w| w[0].t <= w[1].t)
    }

    /// Number of observations.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the trajectory has no observations.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Duration from first to last observation, seconds (0 for < 2 points).
    #[must_use]
    pub fn duration(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Sum of straight-line hops between consecutive observations, metres.
    ///
    /// A lower bound on the true travelled distance — the lower the sampling
    /// rate, the looser the bound (the paper's core motivation).
    #[must_use]
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(&w[1])).sum()
    }

    /// Mean time interval between consecutive observations, seconds
    /// (`ΔT` of Definition 1); 0 for < 2 points.
    #[must_use]
    pub fn mean_interval(&self) -> f64 {
        if self.points.len() < 2 {
            0.0
        } else {
            self.duration() / (self.points.len() - 1) as f64
        }
    }

    /// Largest time interval between consecutive observations, seconds.
    #[must_use]
    pub fn max_interval(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[1].t - w[0].t)
            .fold(0.0, f64::max)
    }

    /// Bounding box of the observations (empty box for an empty trajectory).
    #[must_use]
    pub fn bbox(&self) -> BBox {
        BBox::covering(self.points.iter().map(|p| p.pos))
    }

    /// The observation of this trajectory nearest to `q`
    /// (`nn(q, T)` of Definition 6), with its index. `None` when empty.
    #[must_use]
    pub fn nearest_point(&self, q: Point) -> Option<(usize, &GpsPoint)> {
        self.points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.pos.dist_sq(q).total_cmp(&b.1.pos.dist_sq(q)))
    }

    /// Sub-trajectory over the inclusive index range, preserving order even
    /// when `a > b` (the reference may travel "backwards" relative to the
    /// query's direction — such references are rejected later by the speed
    /// filter, but extraction itself must not panic).
    #[must_use]
    pub fn slice(&self, a: usize, b: usize) -> &[GpsPoint] {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        &self.points[lo..=hi]
    }
}

/// What [`sanitize_points`] did to a point sequence. All-zero/false means the
/// input was already clean under the given limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PointRepairs {
    /// Points dropped for NaN/infinite coordinates or timestamps.
    pub dropped_non_finite: usize,
    /// Points dropped for exceeding the coordinate/time magnitude limits.
    pub dropped_out_of_range: usize,
    /// Whether the surviving points had to be re-sorted by time.
    pub sorted: bool,
    /// Points dropped as exact duplicate timestamps of their predecessor
    /// at the same position (keep-first).
    pub deduped: usize,
}

impl PointRepairs {
    /// `true` when any repair fired.
    #[must_use]
    pub fn any(&self) -> bool {
        self.dropped_non_finite > 0
            || self.dropped_out_of_range > 0
            || self.sorted
            || self.deduped > 0
    }

    /// Total points removed (drops + dedupes).
    #[must_use]
    pub fn points_dropped(&self) -> usize {
        self.dropped_non_finite + self.dropped_out_of_range + self.deduped
    }

    /// Accumulates another report (for per-archive totals).
    pub fn merge(&mut self, other: &PointRepairs) {
        self.dropped_non_finite += other.dropped_non_finite;
        self.dropped_out_of_range += other.dropped_out_of_range;
        self.sorted |= other.sorted;
        self.deduped += other.deduped;
    }
}

/// Magnitude limits for [`sanitize_points`]. Coordinates live in a local
/// planar frame (metres), so anything beyond a few thousand kilometres is a
/// corrupt record, not a far-away trip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeLimits {
    /// Maximum |x| / |y| in metres.
    pub max_abs_coord_m: f64,
    /// Maximum |t| in seconds.
    pub max_abs_time_s: f64,
}

impl Default for SanitizeLimits {
    fn default() -> Self {
        SanitizeLimits {
            max_abs_coord_m: 1.0e7,
            max_abs_time_s: 1.0e12,
        }
    }
}

/// Repairs a raw point sequence in place: drops non-finite and out-of-range
/// observations, stable-sorts the rest by time, and removes exact duplicates
/// (same timestamp *and* position as the kept predecessor — duplicated
/// records, not genuine same-second observations from a different spot).
///
/// Deterministic: the same input always yields the same output and report.
/// Clean inputs are returned untouched (the sort is skipped entirely unless
/// order was violated), so callers can gate on [`PointRepairs::any`].
pub fn sanitize_points(points: &mut Vec<GpsPoint>, limits: &SanitizeLimits) -> PointRepairs {
    let mut repairs = PointRepairs::default();
    let before = points.len();
    points.retain(|p| p.pos.x.is_finite() && p.pos.y.is_finite() && p.t.is_finite());
    repairs.dropped_non_finite = before - points.len();

    let before = points.len();
    points.retain(|p| {
        p.pos.x.abs() <= limits.max_abs_coord_m
            && p.pos.y.abs() <= limits.max_abs_coord_m
            && p.t.abs() <= limits.max_abs_time_s
    });
    repairs.dropped_out_of_range = before - points.len();

    if !points.windows(2).all(|w| w[0].t <= w[1].t) {
        // All values finite by now, so total_cmp == partial order on reals;
        // stable sort keeps arrival order among equal timestamps.
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        repairs.sorted = true;
    }

    let before = points.len();
    points.dedup_by(|next, kept| next.t == kept.t && next.pos == kept.pos);
    repairs.deduped = before - points.len();
    repairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::new(
            TrajId(1),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(100.0, 0.0), 10.0),
                GpsPoint::new(Point::new(100.0, 100.0), 30.0),
            ],
        )
    }

    #[test]
    fn basic_stats() {
        let t = traj();
        assert_eq!(t.len(), 3);
        assert!((t.duration() - 30.0).abs() < 1e-12);
        assert!((t.path_length() - 200.0).abs() < 1e-12);
        assert!((t.mean_interval() - 15.0).abs() < 1e-12);
        assert!((t.max_interval() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Trajectory::new(TrajId(0), vec![]);
        assert!(e.is_empty());
        assert_eq!(e.duration(), 0.0);
        assert_eq!(e.mean_interval(), 0.0);
        assert!(e.nearest_point(Point::ORIGIN).is_none());
        let s = Trajectory::new(TrajId(0), vec![GpsPoint::new(Point::ORIGIN, 5.0)]);
        assert_eq!(s.duration(), 0.0);
        assert_eq!(s.path_length(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unordered_times() {
        let _ = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::ORIGIN, 10.0),
                GpsPoint::new(Point::ORIGIN, 5.0),
            ],
        );
    }

    #[test]
    fn nearest_point_finds_minimum() {
        let t = traj();
        let (idx, p) = t.nearest_point(Point::new(95.0, 90.0)).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(p.pos, Point::new(100.0, 100.0));
    }

    #[test]
    fn slice_handles_reversed_indices() {
        let t = traj();
        assert_eq!(t.slice(0, 2).len(), 3);
        assert_eq!(t.slice(2, 0).len(), 3);
        assert_eq!(t.slice(1, 1).len(), 1);
    }

    #[test]
    fn bbox_covers_points() {
        let b = traj().bbox();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(100.0, 100.0));
    }

    #[test]
    fn try_new_rejects_what_new_panics_on() {
        let bad = vec![
            GpsPoint::new(Point::ORIGIN, 10.0),
            GpsPoint::new(Point::ORIGIN, 5.0),
        ];
        assert_eq!(
            Trajectory::try_new(TrajId(0), bad.clone()),
            Err(TrajectoryError::TimeDisorder { index: 1 })
        );
        // from_unchecked represents the same data without panicking…
        let dirty = Trajectory::from_unchecked(TrajId(0), bad);
        assert!(!dirty.is_time_ordered());
        // …and validate reports the same error serde-deserialised data would.
        assert!(dirty.validate().is_err());
    }

    #[test]
    fn try_new_rejects_non_finite() {
        let nan = vec![GpsPoint::new(Point::new(f64::NAN, 0.0), 0.0)];
        assert_eq!(
            Trajectory::try_new(TrajId(0), nan),
            Err(TrajectoryError::NonFinite { index: 0 })
        );
        let inf_t = vec![GpsPoint::new(Point::ORIGIN, f64::INFINITY)];
        assert!(Trajectory::try_new(TrajId(0), inf_t).is_err());
    }

    #[test]
    fn try_new_accepts_degenerate_and_duplicate_timestamps() {
        assert!(Trajectory::try_new(TrajId(0), vec![]).is_ok());
        assert!(Trajectory::try_new(TrajId(0), vec![GpsPoint::new(Point::ORIGIN, 1.0)]).is_ok());
        // Non-decreasing allows equal timestamps — the existing contract.
        let dup = vec![
            GpsPoint::new(Point::new(0.0, 0.0), 5.0),
            GpsPoint::new(Point::new(10.0, 0.0), 5.0),
        ];
        assert!(Trajectory::try_new(TrajId(0), dup).is_ok());
    }

    #[test]
    fn deserialised_disorder_is_caught_by_validate() {
        // serde's derive bypasses `new`; ingest must re-validate.
        let json = r#"{"id":0,"points":[{"pos":{"x":0.0,"y":0.0},"t":9.0},{"pos":{"x":1.0,"y":0.0},"t":3.0}]}"#;
        let t: Trajectory = serde_json::from_str(json).unwrap();
        assert_eq!(
            t.validate(),
            Err(TrajectoryError::TimeDisorder { index: 1 })
        );
    }

    #[test]
    fn sanitize_clean_input_is_untouched() {
        let mut pts = traj().points;
        let orig = pts.clone();
        let r = sanitize_points(&mut pts, &SanitizeLimits::default());
        assert!(!r.any());
        assert_eq!(r.points_dropped(), 0);
        assert_eq!(pts, orig);
    }

    #[test]
    fn sanitize_drops_sorts_and_dedupes() {
        let mut pts = vec![
            GpsPoint::new(Point::new(0.0, 0.0), 10.0),
            GpsPoint::new(Point::new(f64::NAN, 0.0), 11.0), // non-finite coord
            GpsPoint::new(Point::new(50.0, 0.0), 5.0),      // out of order
            GpsPoint::new(Point::new(50.0, 0.0), 5.0),      // exact duplicate
            GpsPoint::new(Point::new(1.0e9, 0.0), 12.0),    // off the planet
            GpsPoint::new(Point::new(60.0, 0.0), f64::INFINITY), // non-finite t
        ];
        let r = sanitize_points(&mut pts, &SanitizeLimits::default());
        assert_eq!(r.dropped_non_finite, 2);
        assert_eq!(r.dropped_out_of_range, 1);
        assert!(r.sorted);
        assert_eq!(r.deduped, 1);
        assert_eq!(r.points_dropped(), 4);
        let times: Vec<f64> = pts.iter().map(|p| p.t).collect();
        assert_eq!(times, vec![5.0, 10.0]);
    }

    #[test]
    fn sanitize_keeps_same_time_different_position() {
        // Equal timestamps at distinct positions are valid data, not
        // duplicates — they must survive (keep both, stable order).
        let mut pts = vec![
            GpsPoint::new(Point::new(0.0, 0.0), 5.0),
            GpsPoint::new(Point::new(10.0, 0.0), 5.0),
        ];
        let r = sanitize_points(&mut pts, &SanitizeLimits::default());
        assert!(!r.any());
        assert_eq!(pts.len(), 2);
    }
}
