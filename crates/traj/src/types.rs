//! Core trajectory types (Definition 1 of the paper).

use hris_geo::{BBox, Point};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a trajectory within an archive.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TrajId(pub u32);

impl TrajId {
    /// The id as a `usize` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TrajId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A time-stamped GPS observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpsPoint {
    /// Observed position (local planar frame, metres).
    pub pos: Point,
    /// Timestamp in seconds since the scenario epoch.
    pub t: f64,
}

impl GpsPoint {
    /// Creates a GPS point.
    #[inline]
    #[must_use]
    pub const fn new(pos: Point, t: f64) -> Self {
        GpsPoint { pos, t }
    }

    /// Planar distance to another observation, metres.
    #[inline]
    #[must_use]
    pub fn dist(&self, other: &GpsPoint) -> f64 {
        self.pos.dist(other.pos)
    }
}

/// A GPS trajectory: a time-ordered sequence of observations
/// (`p₁ → p₂ → … → pₙ`, Definition 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trajectory {
    /// Identifier (assigned when stored in an archive; 0 for ad-hoc data).
    pub id: TrajId,
    /// Observations in non-decreasing time order.
    pub points: Vec<GpsPoint>,
}

impl Trajectory {
    /// A trajectory from raw points.
    ///
    /// # Panics
    /// Panics if the points are not in non-decreasing time order.
    #[must_use]
    pub fn new(id: TrajId, points: Vec<GpsPoint>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].t <= w[1].t),
            "trajectory points must be time-ordered"
        );
        Trajectory { id, points }
    }

    /// Number of observations.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the trajectory has no observations.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Duration from first to last observation, seconds (0 for < 2 points).
    #[must_use]
    pub fn duration(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Sum of straight-line hops between consecutive observations, metres.
    ///
    /// A lower bound on the true travelled distance — the lower the sampling
    /// rate, the looser the bound (the paper's core motivation).
    #[must_use]
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].dist(&w[1])).sum()
    }

    /// Mean time interval between consecutive observations, seconds
    /// (`ΔT` of Definition 1); 0 for < 2 points.
    #[must_use]
    pub fn mean_interval(&self) -> f64 {
        if self.points.len() < 2 {
            0.0
        } else {
            self.duration() / (self.points.len() - 1) as f64
        }
    }

    /// Largest time interval between consecutive observations, seconds.
    #[must_use]
    pub fn max_interval(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[1].t - w[0].t)
            .fold(0.0, f64::max)
    }

    /// Bounding box of the observations (empty box for an empty trajectory).
    #[must_use]
    pub fn bbox(&self) -> BBox {
        BBox::covering(self.points.iter().map(|p| p.pos))
    }

    /// The observation of this trajectory nearest to `q`
    /// (`nn(q, T)` of Definition 6), with its index. `None` when empty.
    #[must_use]
    pub fn nearest_point(&self, q: Point) -> Option<(usize, &GpsPoint)> {
        self.points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.pos.dist_sq(q).total_cmp(&b.1.pos.dist_sq(q)))
    }

    /// Sub-trajectory over the inclusive index range, preserving order even
    /// when `a > b` (the reference may travel "backwards" relative to the
    /// query's direction — such references are rejected later by the speed
    /// filter, but extraction itself must not panic).
    #[must_use]
    pub fn slice(&self, a: usize, b: usize) -> &[GpsPoint] {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        &self.points[lo..=hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        Trajectory::new(
            TrajId(1),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(100.0, 0.0), 10.0),
                GpsPoint::new(Point::new(100.0, 100.0), 30.0),
            ],
        )
    }

    #[test]
    fn basic_stats() {
        let t = traj();
        assert_eq!(t.len(), 3);
        assert!((t.duration() - 30.0).abs() < 1e-12);
        assert!((t.path_length() - 200.0).abs() < 1e-12);
        assert!((t.mean_interval() - 15.0).abs() < 1e-12);
        assert!((t.max_interval() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Trajectory::new(TrajId(0), vec![]);
        assert!(e.is_empty());
        assert_eq!(e.duration(), 0.0);
        assert_eq!(e.mean_interval(), 0.0);
        assert!(e.nearest_point(Point::ORIGIN).is_none());
        let s = Trajectory::new(TrajId(0), vec![GpsPoint::new(Point::ORIGIN, 5.0)]);
        assert_eq!(s.duration(), 0.0);
        assert_eq!(s.path_length(), 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unordered_times() {
        let _ = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::ORIGIN, 10.0),
                GpsPoint::new(Point::ORIGIN, 5.0),
            ],
        );
    }

    #[test]
    fn nearest_point_finds_minimum() {
        let t = traj();
        let (idx, p) = t.nearest_point(Point::new(95.0, 90.0)).unwrap();
        assert_eq!(idx, 2);
        assert_eq!(p.pos, Point::new(100.0, 100.0));
    }

    #[test]
    fn slice_handles_reversed_indices() {
        let t = traj();
        assert_eq!(t.slice(0, 2).len(), 3);
        assert_eq!(t.slice(2, 0).len(), 3);
        assert_eq!(t.slice(1, 1).len(), 1);
    }

    #[test]
    fn bbox_covers_points() {
        let b = traj().bbox();
        assert_eq!(b.min, Point::new(0.0, 0.0));
        assert_eq!(b.max, Point::new(100.0, 100.0));
    }
}
