//! Deterministic fault injection for dirty-data robustness testing.
//!
//! Real low-sampling-rate feeds (the paper's setting) arrive with dropped
//! points, duplicated and out-of-order timestamps, GPS teleports and outright
//! garbage coordinates. This module produces such corruption *reproducibly*:
//! a [`FaultInjector`] is seeded, every corruption is a pure function of the
//! seed and call sequence, so a failing case can be replayed exactly.
//!
//! Corrupted trajectories are built with [`Trajectory::from_unchecked`] —
//! they deliberately violate the invariants [`Trajectory::new`] asserts, and
//! exist to prove the engine and the tolerant archive loader survive them.

use crate::types::{TrajId, Trajectory};
use bytes::Bytes;
use hris_geo::Point;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One class of data corruption seen in real GPS feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Observations randomly removed (sparse/patchy feed).
    DropPoints,
    /// A record duplicated verbatim (repeated upload).
    DuplicatePoint,
    /// Timestamps of two observations swapped (out-of-order delivery).
    OutOfOrderTimestamps,
    /// One observation displaced tens–hundreds of km (GPS teleport).
    TeleportJump,
    /// A coordinate or timestamp replaced by NaN.
    NanValue,
    /// A coordinate far outside any plausible planar frame.
    OutOfRangeCoordinate,
    /// All observations lost.
    Empty,
    /// All but one observation lost.
    SinglePoint,
}

impl FaultKind {
    /// Every fault kind, in a fixed order (corpus generation cycles this).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::DropPoints,
        FaultKind::DuplicatePoint,
        FaultKind::OutOfOrderTimestamps,
        FaultKind::TeleportJump,
        FaultKind::NanValue,
        FaultKind::OutOfRangeCoordinate,
        FaultKind::Empty,
        FaultKind::SinglePoint,
    ];

    /// Stable lower-snake name (metric labels, reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DropPoints => "drop_points",
            FaultKind::DuplicatePoint => "duplicate_point",
            FaultKind::OutOfOrderTimestamps => "out_of_order_timestamps",
            FaultKind::TeleportJump => "teleport_jump",
            FaultKind::NanValue => "nan_value",
            FaultKind::OutOfRangeCoordinate => "out_of_range_coordinate",
            FaultKind::Empty => "empty",
            FaultKind::SinglePoint => "single_point",
        }
    }
}

/// Seeded source of corrupted trajectory variants.
///
/// All randomness comes from one ChaCha8 stream, so a fixed seed and call
/// order reproduce the same corruption byte for byte.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: ChaCha8Rng,
}

impl FaultInjector {
    /// An injector with a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// A corrupted variant of `traj` exhibiting `kind`.
    ///
    /// Kinds needing structure the input lacks degrade gracefully: swapping
    /// timestamps of a single-point trajectory returns it unchanged rather
    /// than failing, so corpus generation never aborts.
    pub fn corrupt(&mut self, traj: &Trajectory, kind: FaultKind) -> Trajectory {
        let mut pts = traj.points.clone();
        match kind {
            FaultKind::DropPoints => {
                let keep: Vec<bool> = (0..pts.len()).map(|_| !self.rng.gen_bool(0.4)).collect();
                let mut it = keep.iter();
                pts.retain(|_| *it.next().unwrap());
            }
            FaultKind::DuplicatePoint => {
                if !pts.is_empty() {
                    let i = self.rng.gen_range(0..pts.len());
                    let p = pts[i];
                    pts.insert(i, p);
                }
            }
            FaultKind::OutOfOrderTimestamps => {
                if pts.len() >= 2 {
                    let i = self.rng.gen_range(0..pts.len() - 1);
                    let j = self.rng.gen_range(i + 1..pts.len());
                    let (ti, tj) = (pts[i].t, pts[j].t);
                    pts[i].t = tj;
                    pts[j].t = ti;
                }
            }
            FaultKind::TeleportJump => {
                if !pts.is_empty() {
                    let i = self.rng.gen_range(0..pts.len());
                    let d = self.rng.gen_range(50_000.0..500_000.0);
                    let angle = self.rng.gen_range(0.0..std::f64::consts::TAU);
                    pts[i].pos = Point::new(
                        pts[i].pos.x + d * angle.cos(),
                        pts[i].pos.y + d * angle.sin(),
                    );
                }
            }
            FaultKind::NanValue => {
                if !pts.is_empty() {
                    let i = self.rng.gen_range(0..pts.len());
                    match self.rng.gen_range(0u32..3) {
                        0 => pts[i].pos.x = f64::NAN,
                        1 => pts[i].pos.y = f64::NAN,
                        _ => pts[i].t = f64::NAN,
                    }
                }
            }
            FaultKind::OutOfRangeCoordinate => {
                if !pts.is_empty() {
                    let i = self.rng.gen_range(0..pts.len());
                    let sign = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    pts[i].pos.x = sign * self.rng.gen_range(1.0e8..1.0e9);
                }
            }
            FaultKind::Empty => pts.clear(),
            FaultKind::SinglePoint => {
                if pts.len() > 1 {
                    let i = self.rng.gen_range(0..pts.len());
                    let p = pts[i];
                    pts.clear();
                    pts.push(p);
                }
            }
        }
        Trajectory::from_unchecked(traj.id, pts)
    }

    /// Corrupts every trip, cycling through all fault kinds in order.
    pub fn corrupt_trips(&mut self, trips: &[Trajectory]) -> Vec<(FaultKind, Trajectory)> {
        trips
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let kind = FaultKind::ALL[i % FaultKind::ALL.len()];
                (kind, self.corrupt(t, kind))
            })
            .collect()
    }

    /// Cuts a serialized archive blob at a random interior byte — the
    /// truncated-upload fault the tolerant loader must survive.
    pub fn truncate_blob(&mut self, blob: &Bytes) -> Bytes {
        if blob.len() < 2 {
            return blob.clone();
        }
        let cut = self.rng.gen_range(1..blob.len());
        blob.slice(0..cut)
    }
}

/// A seeded corpus of corrupted queries: `cases` trajectories cycling
/// through every [`FaultKind`] (all kinds represented once
/// `cases >= FaultKind::ALL.len()`), derived from `base` round-robin.
///
/// This is the reusable corpus behind the never-panic property test —
/// downstream crates feed it straight into `QueryEngine::infer_batch`.
///
/// # Panics
/// Panics if `base` is empty.
#[must_use]
pub fn fault_corpus(seed: u64, base: &[Trajectory], cases: usize) -> Vec<(FaultKind, Trajectory)> {
    assert!(
        !base.is_empty(),
        "fault_corpus needs at least one base trajectory"
    );
    let mut inj = FaultInjector::new(seed);
    (0..cases)
        .map(|c| {
            let kind = FaultKind::ALL[c % FaultKind::ALL.len()];
            let mut t = inj.corrupt(&base[c % base.len()], kind);
            t.id = TrajId(c as u32);
            (kind, t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GpsPoint;

    fn base() -> Trajectory {
        Trajectory::new(
            TrajId(3),
            (0..8)
                .map(|i| GpsPoint::new(Point::new(i as f64 * 100.0, 0.0), i as f64 * 30.0))
                .collect(),
        )
    }

    #[test]
    fn corpus_is_deterministic_and_covers_all_kinds() {
        let b = vec![base()];
        let a = fault_corpus(42, &b, 100);
        let c = fault_corpus(42, &b, 100);
        assert_eq!(a.len(), 100);
        for ((ka, ta), (kc, tc)) in a.iter().zip(&c) {
            assert_eq!(ka, kc);
            assert_eq!(ta.id, tc.id);
            assert_eq!(ta.points.len(), tc.points.len());
            for (pa, pc) in ta.points.iter().zip(&tc.points) {
                // Bit-level equality so NaNs compare equal too.
                assert_eq!(pa.pos.x.to_bits(), pc.pos.x.to_bits());
                assert_eq!(pa.pos.y.to_bits(), pc.pos.y.to_bits());
                assert_eq!(pa.t.to_bits(), pc.t.to_bits());
            }
        }
        for kind in FaultKind::ALL {
            assert!(a.iter().any(|(k, _)| *k == kind), "missing {kind:?}");
        }
        // A different seed must actually change the corruption.
        let d = fault_corpus(43, &b, 100);
        assert!(a.iter().zip(&d).any(|((_, ta), (_, td))| ta != td));
    }

    #[test]
    fn each_kind_exhibits_its_fault() {
        let mut inj = FaultInjector::new(7);
        let t = base();

        let dup = inj.corrupt(&t, FaultKind::DuplicatePoint);
        assert_eq!(dup.points.len(), t.points.len() + 1);
        assert!(dup.points.windows(2).any(|w| w[0] == w[1]));

        let ooo = inj.corrupt(&t, FaultKind::OutOfOrderTimestamps);
        assert!(!ooo.is_time_ordered());

        let tele = inj.corrupt(&t, FaultKind::TeleportJump);
        let max_hop = tele
            .points
            .windows(2)
            .map(|w| w[0].dist(&w[1]))
            .fold(0.0, f64::max);
        assert!(max_hop >= 50_000.0, "teleport hop was only {max_hop}");

        let nan = inj.corrupt(&t, FaultKind::NanValue);
        assert!(nan
            .points
            .iter()
            .any(|p| p.pos.x.is_nan() || p.pos.y.is_nan() || p.t.is_nan()));

        let far = inj.corrupt(&t, FaultKind::OutOfRangeCoordinate);
        assert!(far.points.iter().any(|p| p.pos.x.abs() >= 1.0e8));

        assert!(inj.corrupt(&t, FaultKind::Empty).is_empty());
        assert_eq!(inj.corrupt(&t, FaultKind::SinglePoint).len(), 1);
    }

    #[test]
    fn degenerate_inputs_never_panic_the_injector() {
        let mut inj = FaultInjector::new(1);
        let empty = Trajectory::new(TrajId(0), vec![]);
        let single = Trajectory::new(TrajId(0), vec![GpsPoint::new(Point::ORIGIN, 0.0)]);
        for kind in FaultKind::ALL {
            let _ = inj.corrupt(&empty, kind);
            let _ = inj.corrupt(&single, kind);
        }
    }

    #[test]
    fn truncate_blob_shortens() {
        let mut inj = FaultInjector::new(5);
        let blob = Bytes::from(vec![0u8; 64]);
        let cut = inj.truncate_blob(&blob);
        assert!(!cut.is_empty() && cut.len() < blob.len());
        // Deterministic for the same seed/sequence.
        let cut2 = FaultInjector::new(5).truncate_blob(&blob);
        assert_eq!(cut.as_ref(), cut2.as_ref());
    }
}
