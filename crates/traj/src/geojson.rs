//! GeoJSON export: trajectories, routes and road networks as
//! `FeatureCollection`s, ready for kepler.gl / geojson.io / QGIS.
//!
//! Coordinates are emitted in WGS-84 when a [`LocalProjection`] is given
//! (the inverse of the projection used at ingest), or as raw planar metres
//! otherwise (handy for quick plotting in any cartesian viewer).

use crate::types::Trajectory;
use hris_geo::{LocalProjection, Point};
use hris_roadnet::{RoadNetwork, Route};
use serde_json::{json, Value};

fn coord(p: Point, proj: Option<&LocalProjection>) -> Value {
    match proj {
        Some(pr) => {
            let ll = pr.to_latlon(p);
            json!([ll.lon, ll.lat])
        }
        None => json!([p.x, p.y]),
    }
}

fn line_string(points: impl Iterator<Item = Point>, proj: Option<&LocalProjection>) -> Value {
    json!({
        "type": "LineString",
        "coordinates": points.map(|p| coord(p, proj)).collect::<Vec<_>>(),
    })
}

/// A trajectory as a GeoJSON `Feature` (LineString + per-point timestamps).
#[must_use]
pub fn trajectory_feature(traj: &Trajectory, proj: Option<&LocalProjection>) -> Value {
    json!({
        "type": "Feature",
        "geometry": line_string(traj.points.iter().map(|p| p.pos), proj),
        "properties": {
            "traj_id": traj.id.0,
            "num_points": traj.len(),
            "duration_s": traj.duration(),
            "mean_interval_s": traj.mean_interval(),
            "timestamps": traj.points.iter().map(|p| p.t).collect::<Vec<_>>(),
        },
    })
}

/// A route as a GeoJSON `Feature` (LineString over its polyline).
#[must_use]
pub fn route_feature(route: &Route, net: &RoadNetwork, proj: Option<&LocalProjection>) -> Value {
    let coords = route
        .polyline(net)
        .map(|pl| pl.vertices().to_vec())
        .unwrap_or_default();
    json!({
        "type": "Feature",
        "geometry": line_string(coords.into_iter(), proj),
        "properties": {
            "num_segments": route.len(),
            "length_m": route.length(net),
            "travel_time_s": route.travel_time(net),
        },
    })
}

/// The whole road network as a `FeatureCollection` of segment LineStrings.
#[must_use]
pub fn network_collection(net: &RoadNetwork, proj: Option<&LocalProjection>) -> Value {
    let features: Vec<Value> = net
        .segments()
        .iter()
        .map(|seg| {
            json!({
                "type": "Feature",
                "geometry": line_string(seg.geometry.vertices().iter().copied(), proj),
                "properties": {
                    "segment_id": seg.id.0,
                    "class": format!("{:?}", seg.class),
                    "speed_limit_kmh": seg.speed_limit * 3.6,
                    "length_m": seg.length,
                },
            })
        })
        .collect();
    feature_collection(features)
}

/// Wraps features into a `FeatureCollection`.
#[must_use]
pub fn feature_collection(features: Vec<Value>) -> Value {
    json!({ "type": "FeatureCollection", "features": features })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GpsPoint, TrajId};
    use hris_geo::LatLon;
    use hris_roadnet::{generator, NetworkConfig};

    fn traj() -> Trajectory {
        Trajectory::new(
            TrajId(9),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(100.0, 50.0), 30.0),
                GpsPoint::new(Point::new(200.0, 50.0), 60.0),
            ],
        )
    }

    #[test]
    fn trajectory_feature_structure() {
        let f = trajectory_feature(&traj(), None);
        assert_eq!(f["type"], "Feature");
        assert_eq!(f["geometry"]["type"], "LineString");
        assert_eq!(f["geometry"]["coordinates"].as_array().unwrap().len(), 3);
        assert_eq!(f["properties"]["traj_id"], 9);
        assert_eq!(f["properties"]["timestamps"][2], 60.0);
    }

    #[test]
    fn projection_emits_lonlat() {
        let proj = LocalProjection::new(LatLon::new(39.9, 116.4));
        let f = trajectory_feature(&traj(), Some(&proj));
        let c0 = f["geometry"]["coordinates"][0].as_array().unwrap();
        // [lon, lat] order near the origin.
        assert!((c0[0].as_f64().unwrap() - 116.4).abs() < 1e-6);
        assert!((c0[1].as_f64().unwrap() - 39.9).abs() < 1e-6);
    }

    #[test]
    fn route_feature_has_metrics() {
        let net = generator::generate(&NetworkConfig::small(1));
        let seg = net.segments()[0].id;
        let next = net.next_segments(seg)[0];
        let r = Route::new(vec![seg, next]);
        let f = route_feature(&r, &net, None);
        assert_eq!(f["properties"]["num_segments"], 2);
        assert!(f["properties"]["length_m"].as_f64().unwrap() > 0.0);
        assert!(!f["geometry"]["coordinates"].as_array().unwrap().is_empty());
    }

    #[test]
    fn network_collection_covers_all_segments() {
        let net = generator::generate(&NetworkConfig {
            blocks_x: 2,
            blocks_y: 2,
            ..NetworkConfig::small(2)
        });
        let fc = network_collection(&net, None);
        assert_eq!(fc["type"], "FeatureCollection");
        assert_eq!(fc["features"].as_array().unwrap().len(), net.num_segments());
        // Parses back as valid JSON text.
        let text = serde_json::to_string(&fc).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back["type"], "FeatureCollection");
    }

    #[test]
    fn empty_route_is_empty_linestring() {
        let net = generator::generate(&NetworkConfig::small(3));
        let f = route_feature(&Route::empty(), &net, None);
        assert_eq!(f["geometry"]["coordinates"].as_array().unwrap().len(), 0);
    }
}
