//! Trajectory similarity measures.
//!
//! The paper's related-work section surveys the classic trajectory/time-
//! series similarity family — DTW, LCSS, EDR — before explaining why
//! reference search needs a different notion (partial, direction-aware
//! similarity). A trajectory library is not complete without them: they
//! power archive deduplication, clustering and diagnostics, and the test
//! suite uses them to sanity-check the simulator (trips on the same route
//! should be mutually similar).
//!
//! All three operate on the spatial component only and run in `O(n·m)`
//! with rolling rows.

use crate::types::Trajectory;
use hris_geo::Point;

fn positions(t: &Trajectory) -> Vec<Point> {
    t.points.iter().map(|p| p.pos).collect()
}

/// Dynamic Time Warping distance (sum of matched point distances under the
/// optimal monotone alignment). Yi/Jagadish/Faloutsos (ICDE 1998).
///
/// Returns `f64::INFINITY` when either trajectory is empty.
#[must_use]
pub fn dtw(a: &Trajectory, b: &Trajectory) -> f64 {
    let pa = positions(a);
    let pb = positions(b);
    if pa.is_empty() || pb.is_empty() {
        return f64::INFINITY;
    }
    let m = pb.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut cur = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for &x in &pa {
        cur[0] = f64::INFINITY;
        for (j, &y) in pb.iter().enumerate() {
            let d = x.dist(y);
            cur[j + 1] = d + prev[j + 1].min(cur[j]).min(prev[j]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Longest Common SubSequence similarity (Vlachos/Gunopulos/Kollios, ICDE
/// 2002): points match when within `eps` metres; returns the normalised
/// similarity `LCSS / min(n, m)` in `[0, 1]`.
///
/// Robust to noise and outliers — unmatched points are simply skipped.
#[must_use]
pub fn lcss(a: &Trajectory, b: &Trajectory, eps: f64) -> f64 {
    let pa = positions(a);
    let pb = positions(b);
    if pa.is_empty() || pb.is_empty() {
        return 0.0;
    }
    let m = pb.len();
    let mut prev = vec![0usize; m + 1];
    let mut cur = vec![0usize; m + 1];
    for &x in &pa {
        for (j, &y) in pb.iter().enumerate() {
            cur[j + 1] = if x.dist(y) <= eps {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m] as f64 / pa.len().min(pb.len()) as f64
}

/// Edit Distance on Real sequence (Chen/Özsu/Oria, SIGMOD 2005): the
/// number of insert/delete/replace edits to turn `a` into `b`, where two
/// points "match" (edit cost 0) when within `eps` metres. Lower is more
/// similar; `max(n, m)` is the upper bound.
#[must_use]
pub fn edr(a: &Trajectory, b: &Trajectory, eps: f64) -> usize {
    let pa = positions(a);
    let pb = positions(b);
    if pa.is_empty() {
        return pb.len();
    }
    if pb.is_empty() {
        return pa.len();
    }
    let m = pb.len();
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![0usize; m + 1];
    for (i, &x) in pa.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &y) in pb.iter().enumerate() {
            let subcost = usize::from(x.dist(y) > eps);
            cur[j + 1] = (prev[j] + subcost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GpsPoint, TrajId};

    fn traj(pts: &[(f64, f64)]) -> Trajectory {
        Trajectory::new(
            TrajId(0),
            pts.iter()
                .enumerate()
                .map(|(k, &(x, y))| GpsPoint::new(Point::new(x, y), k as f64 * 10.0))
                .collect(),
        )
    }

    fn line(n: usize, y: f64) -> Trajectory {
        traj(&(0..n).map(|k| (k as f64 * 100.0, y)).collect::<Vec<_>>())
    }

    #[test]
    fn dtw_identity_is_zero() {
        let a = line(10, 0.0);
        assert_eq!(dtw(&a, &a), 0.0);
    }

    #[test]
    fn dtw_parallel_lines() {
        let a = line(10, 0.0);
        let b = line(10, 30.0);
        // Optimal alignment is 1:1 → 10 × 30 m.
        assert!((dtw(&a, &b) - 300.0).abs() < 1e-9);
    }

    #[test]
    fn dtw_handles_different_lengths() {
        let a = line(10, 0.0);
        let b = line(5, 0.0);
        // b's points sit on a's route; warping absorbs the density gap but
        // must pay for a's unmatched far points.
        let d = dtw(&a, &b);
        assert!(d.is_finite());
        assert!(d > 0.0);
        // Symmetry.
        assert!((d - dtw(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn dtw_empty_is_infinite() {
        let a = line(5, 0.0);
        let e = Trajectory::new(TrajId(0), vec![]);
        assert_eq!(dtw(&a, &e), f64::INFINITY);
    }

    #[test]
    fn lcss_identity_is_one() {
        let a = line(8, 0.0);
        assert_eq!(lcss(&a, &a, 1.0), 1.0);
    }

    #[test]
    fn lcss_tolerates_outliers() {
        let a = line(10, 0.0);
        // Same line with two wild outliers.
        let mut pts: Vec<(f64, f64)> = (0..10).map(|k| (k as f64 * 100.0, 0.0)).collect();
        pts[3] = (300.0, 5_000.0);
        pts[7] = (700.0, -5_000.0);
        let b = traj(&pts);
        let s = lcss(&a, &b, 10.0);
        assert!((s - 0.8).abs() < 1e-9, "8 of 10 still match, got {s}");
    }

    #[test]
    fn lcss_disjoint_is_zero() {
        let a = line(6, 0.0);
        let b = line(6, 10_000.0);
        assert_eq!(lcss(&a, &b, 50.0), 0.0);
    }

    #[test]
    fn edr_identity_is_zero() {
        let a = line(7, 0.0);
        assert_eq!(edr(&a, &a, 1.0), 0);
    }

    #[test]
    fn edr_counts_edits() {
        let a = line(10, 0.0);
        let mut pts: Vec<(f64, f64)> = (0..10).map(|k| (k as f64 * 100.0, 0.0)).collect();
        pts[4] = (400.0, 9_999.0); // one replaced point
        let b = traj(&pts);
        assert_eq!(edr(&a, &b, 10.0), 1);
        // Length difference costs insertions.
        let c = line(7, 0.0);
        assert_eq!(edr(&a, &c, 10.0), 3);
    }

    #[test]
    fn edr_empty_costs_full_length() {
        let a = line(5, 0.0);
        let e = Trajectory::new(TrajId(0), vec![]);
        assert_eq!(edr(&a, &e, 10.0), 5);
        assert_eq!(edr(&e, &a, 10.0), 5);
    }

    #[test]
    fn same_route_trips_are_mutually_similar() {
        // Two sparse samplings of the same L-shaped path must be similar
        // under all three measures despite disjoint sample positions.
        let path: Vec<(f64, f64)> = (0..20)
            .map(|k| {
                if k < 10 {
                    (k as f64 * 100.0, 0.0)
                } else {
                    (1000.0, (k - 10) as f64 * 100.0)
                }
            })
            .collect();
        let a = traj(&path.iter().step_by(2).copied().collect::<Vec<_>>());
        let b = traj(&path.iter().skip(1).step_by(2).copied().collect::<Vec<_>>());
        assert!(lcss(&a, &b, 150.0) > 0.8);
        assert!(dtw(&a, &b) / a.len() as f64 <= 150.0, "per-point DTW small");
        assert!(edr(&a, &b, 150.0) <= 2);
    }

    #[test]
    fn empty_inputs_have_defined_values() {
        let e = Trajectory::new(TrajId(0), vec![]);
        let l = line(3, 0.0);
        assert_eq!(dtw(&e, &l), f64::INFINITY);
        assert_eq!(dtw(&e, &e), f64::INFINITY);
        assert_eq!(lcss(&e, &l, 10.0), 0.0);
        assert_eq!(edr(&e, &l, 10.0), l.len());
        assert_eq!(edr(&l, &e, 10.0), l.len());
        assert_eq!(edr(&e, &e, 10.0), 0);
    }

    #[test]
    fn single_point_inputs() {
        let s = traj(&[(0.0, 0.0)]);
        assert_eq!(dtw(&s, &s), 0.0);
        assert_eq!(lcss(&s, &s, 1.0), 1.0);
        assert_eq!(edr(&s, &s, 1.0), 0);
        let l = line(4, 0.0);
        assert!(dtw(&s, &l).is_finite());
        assert!(lcss(&s, &l, 1.0) > 0.0);
        assert!(edr(&s, &l, 1.0) <= l.len());
    }

    #[test]
    fn duplicate_timestamps_do_not_affect_similarity() {
        // Similarity is purely spatial; duplicated timestamps must not
        // change any measure.
        let a = line(5, 0.0);
        let mut dup_pts = a.points.clone();
        dup_pts[2].t = dup_pts[1].t;
        let dup = Trajectory::new(TrajId(0), dup_pts);
        assert_eq!(dtw(&a, &dup), dtw(&a, &a));
        assert_eq!(lcss(&a, &dup, 1.0), lcss(&a, &a, 1.0));
        assert_eq!(edr(&a, &dup, 1.0), edr(&a, &a, 1.0));
    }
}
