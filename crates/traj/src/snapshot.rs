//! Columnar, delta-encoded, versioned snapshot format for the archive.
//!
//! The materialized [`TrajectoryArchive`] holds every GPS point twice (once
//! in the per-trip `Vec<GpsPoint>`, once as an [`ArchivePoint`] inside the
//! R-tree arena), which is fine for a demo but not for city scale: Beijing
//! in the paper is millions of archived points. This module is the storage
//! diet half of ROADMAP item 2:
//!
//! * **Columnar layout** — per trip, the `t` / `x` / `y` series are stored
//!   as three independent columns, so scans that only need timestamps (or
//!   only geometry) touch a third of the bytes.
//! * **Delta encoding** — each column stores zigzag-varint deltas. Clean
//!   data (millisecond timestamps, millimetre coordinates — everything the
//!   simulator and real GPS loggers emit) takes the `FIXED` path: values
//!   become scaled integers and consecutive deltas are tiny, so a point
//!   costs ~3 bytes per column instead of 8. Data that is not exactly
//!   representable at fixed point (NaN-adjacent repairs, extreme proptest
//!   inputs) falls back to the `RAW` path, which deltas the IEEE-754 *bit
//!   patterns* — still often compressible, and **always lossless**.
//! * **Interned segment ids** — an optional routes section stores matched
//!   routes per trip through a frequency-ordered [`SegmentId`] dictionary,
//!   so hot segments cost one varint per occurrence.
//! * **Versioned, mmap-able container** — a fixed 68-byte header (magic,
//!   version, CRC-guarded) plus absolute section offsets, then flat
//!   prefix-sum tables. [`ColumnarSnapshot`] keeps the raw [`Bytes`] and
//!   reads straight out of them: opening validates the header and offset
//!   tables but decodes **no** point data, so a reader over an mmap'd file
//!   pays only for the trips it touches.
//!
//! Byte-identity is the contract: decoding reproduces every `f64` bit
//! pattern of the source archive exactly (`decode → f64::to_bits` equals
//! the original), enforced by the differential tests here and the proptest
//! suite in `crates/traj/tests/`.

use crate::archive::TrajectoryArchive;
use crate::types::{GpsPoint, TrajId, Trajectory};
use bytes::Bytes;
use hris_geo::Point;
use hris_roadnet::SegmentId;
use std::collections::HashMap;
use std::fmt;

/// Magic bytes at offset 0 of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"HRISSNAP";

/// Current (and only) format version this build writes and reads.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Byte length of the fixed header ([`SnapshotHeader`]).
pub const SNAPSHOT_HEADER_LEN: usize = 68;

/// Flag bit: the optional interned-routes section is present.
pub const FLAG_ROUTES: u16 = 1;

/// Fixed-point scale for timestamps on the `FIXED` column path
/// (milliseconds).
const T_SCALE: f64 = 1000.0;

/// Fixed-point scale for coordinates on the `FIXED` column path
/// (millimetres).
const XY_SCALE: f64 = 1000.0;

/// Column tag: values are exactly representable at the column's
/// fixed-point scale and stored as zigzag-varint deltas of scaled i64s.
const TAG_FIXED: u8 = 0;

/// Column tag: lossless fallback — first value as raw IEEE-754 bits,
/// then zigzag-varint deltas of the bit patterns.
const TAG_RAW: u8 = 1;

/// Why a snapshot blob was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Blob is shorter than the fixed header.
    TooShort,
    /// The first 8 bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// Header parsed but the version is one this build cannot read.
    UnsupportedVersion(u16),
    /// The header CRC does not match its contents — bit rot or a
    /// truncated/overwritten header.
    HeaderCorrupt,
    /// The header's recorded total length disagrees with the blob —
    /// the file was truncated or concatenated.
    Truncated,
    /// Structurally invalid section data (non-monotone offsets, counts
    /// out of range, a column that over- or under-runs its block).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot blob shorter than header"),
            SnapshotError::BadMagic => write!(f, "bad snapshot magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::HeaderCorrupt => write!(f, "snapshot header CRC mismatch"),
            SnapshotError::Truncated => write!(f, "snapshot blob truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Parsed fixed header of a columnar snapshot.
///
/// All offsets are absolute byte positions into the blob. The header is
/// CRC-guarded: [`ColumnarSnapshot::open`] rejects blobs whose first 64
/// bytes do not hash to `header_crc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version (see [`SNAPSHOT_VERSION`]).
    pub version: u16,
    /// Feature flags ([`FLAG_ROUTES`]).
    pub flags: u16,
    /// Number of trips in the snapshot.
    pub trip_count: u32,
    /// Total number of GPS points across all trips.
    pub point_count: u64,
    /// Total byte length of the blob, header included.
    pub total_len: u64,
    /// Epoch number the snapshot was published at.
    pub epoch: u64,
    /// Absolute offset of the prefix-sum / block-offset tables.
    pub offsets_off: u64,
    /// Absolute offset of the per-trip column blocks.
    pub columns_off: u64,
    /// Absolute offset of the routes section, 0 when absent.
    pub routes_off: u64,
    /// CRC-32 (IEEE) over header bytes 0..64.
    pub header_crc: u32,
}

impl SnapshotHeader {
    /// Whether the interned-routes section is present.
    #[must_use]
    pub fn has_routes(&self) -> bool {
        self.flags & FLAG_ROUTES != 0
    }

    /// Stable multi-line description of the header, used by the golden
    /// format test (`tests/golden/snapshot_format.txt`). Field order and
    /// wording are part of the format contract: a diff here means the
    /// on-disk layout changed and the version must be bumped.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "magic            {}\n",
            String::from_utf8_lossy(&SNAPSHOT_MAGIC)
        ));
        s.push_str(&format!("version          {}\n", self.version));
        s.push_str(&format!("flags            {:#06x}\n", self.flags));
        s.push_str(&format!("trip_count       {}\n", self.trip_count));
        s.push_str(&format!("point_count      {}\n", self.point_count));
        s.push_str(&format!("total_len        {}\n", self.total_len));
        s.push_str(&format!("epoch            {}\n", self.epoch));
        s.push_str(&format!("offsets_off      {}\n", self.offsets_off));
        s.push_str(&format!("columns_off      {}\n", self.columns_off));
        s.push_str(&format!("routes_off       {}\n", self.routes_off));
        s.push_str(&format!("header_crc       {:#010x}\n", self.header_crc));
        s
    }
}

// ---------------------------------------------------------------------------
// Primitive codecs
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, poly 0xEDB88320), bitwise — runs once per header,
/// speed is irrelevant.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `data` starting at `*pos`, advancing it.
#[inline]
fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data
            .get(*pos)
            .ok_or(SnapshotError::Malformed("varint overruns block"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(SnapshotError::Malformed("varint too long"));
        }
        let payload = u64::from(byte & 0x7f);
        if shift == 63 && payload > 1 {
            return Err(SnapshotError::Malformed("varint overflows u64"));
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u16(data: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([data[at], data[at + 1]])
}

fn read_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
}

fn read_u64(data: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Whether every value in the series is *exactly* representable as
/// `round(v * scale) / scale` — the precondition for the lossy-looking
/// but actually lossless `FIXED` path.
fn fixed_representable(vals: &[f64], scale: f64) -> bool {
    vals.iter().all(|&v| {
        if !v.is_finite() {
            return false;
        }
        let scaled = (v * scale).round();
        // i64::MAX is not exactly representable as f64; stay well inside.
        if scaled.abs() >= 9.0e18 {
            return false;
        }
        (scaled / scale).to_bits() == v.to_bits()
    })
}

/// Encodes one column (all `t`s, all `x`s, or all `y`s of a trip).
fn encode_column(vals: &[f64], scale: f64, out: &mut Vec<u8>) {
    if fixed_representable(vals, scale) {
        out.push(TAG_FIXED);
        let mut prev: i64 = 0;
        for &v in vals {
            let s = (v * scale).round() as i64;
            put_varint(out, zigzag(s.wrapping_sub(prev)));
            prev = s;
        }
    } else {
        out.push(TAG_RAW);
        let mut prev: i64 = 0;
        for (i, &v) in vals.iter().enumerate() {
            let bits = v.to_bits() as i64;
            if i == 0 {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            } else {
                put_varint(out, zigzag(bits.wrapping_sub(prev)));
            }
            prev = bits;
        }
    }
}

/// Decodes one column of `n` values from `data` starting at `*pos`.
fn decode_column(
    data: &[u8],
    pos: &mut usize,
    n: usize,
    scale: f64,
    out: &mut Vec<f64>,
) -> Result<(), SnapshotError> {
    let tag = *data
        .get(*pos)
        .ok_or(SnapshotError::Malformed("missing column tag"))?;
    *pos += 1;
    match tag {
        TAG_FIXED => {
            let mut prev: i64 = 0;
            for _ in 0..n {
                let d = unzigzag(get_varint(data, pos)?);
                prev = prev.wrapping_add(d);
                out.push(prev as f64 / scale);
            }
        }
        TAG_RAW => {
            let mut prev: i64 = 0;
            for i in 0..n {
                if i == 0 {
                    if *pos + 8 > data.len() {
                        return Err(SnapshotError::Malformed("raw column seed overruns block"));
                    }
                    let bits = read_u64(data, *pos);
                    *pos += 8;
                    prev = bits as i64;
                } else {
                    let d = unzigzag(get_varint(data, pos)?);
                    prev = prev.wrapping_add(d);
                }
                out.push(f64::from_bits(prev as u64));
            }
        }
        _ => return Err(SnapshotError::Malformed("unknown column tag")),
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes an archive into the versioned columnar snapshot format,
/// stamping the given epoch into the header. No routes section.
#[must_use]
pub fn encode_snapshot(archive: &TrajectoryArchive, epoch: u64) -> Bytes {
    encode_snapshot_inner(archive, epoch, None)
}

/// Encodes an archive plus per-trip matched routes. `routes` must have
/// one entry per trajectory (panics otherwise); segment ids are interned
/// through a frequency-ordered dictionary so hot segments cost one small
/// varint per occurrence.
#[must_use]
pub fn encode_snapshot_with_routes(
    archive: &TrajectoryArchive,
    epoch: u64,
    routes: &[Vec<SegmentId>],
) -> Bytes {
    assert_eq!(
        routes.len(),
        archive.num_trajectories(),
        "one route list per trajectory"
    );
    encode_snapshot_inner(archive, epoch, Some(routes))
}

fn encode_snapshot_inner(
    archive: &TrajectoryArchive,
    epoch: u64,
    routes: Option<&[Vec<SegmentId>]>,
) -> Bytes {
    let trips = archive.trajectories();
    let trip_count = trips.len() as u32;

    // Column blocks + per-trip byte offsets (relative to columns_off).
    let mut columns: Vec<u8> = Vec::new();
    let mut block_offsets: Vec<u64> = Vec::with_capacity(trips.len() + 1);
    let mut prefix: Vec<u64> = Vec::with_capacity(trips.len() + 1);
    let mut scratch: Vec<f64> = Vec::new();
    let mut point_count: u64 = 0;
    prefix.push(0);
    block_offsets.push(0);
    for trip in trips {
        for (col, scale) in [(0usize, T_SCALE), (1, XY_SCALE), (2, XY_SCALE)] {
            scratch.clear();
            scratch.extend(trip.points.iter().map(|p| match col {
                0 => p.t,
                1 => p.pos.x,
                _ => p.pos.y,
            }));
            encode_column(&scratch, scale, &mut columns);
        }
        point_count += trip.points.len() as u64;
        prefix.push(point_count);
        block_offsets.push(columns.len() as u64);
    }

    let offsets_off = SNAPSHOT_HEADER_LEN as u64;
    let tables_len = 2 * (trips.len() + 1) * 8;
    let columns_off = offsets_off + tables_len as u64;
    let columns_end = columns_off + columns.len() as u64;

    // Optional routes section.
    let mut routes_blob: Vec<u8> = Vec::new();
    let mut flags: u16 = 0;
    let routes_off = if let Some(routes) = routes {
        flags |= FLAG_ROUTES;
        encode_routes(routes, &mut routes_blob);
        columns_end
    } else {
        0
    };

    let total_len = columns_end + routes_blob.len() as u64;

    let mut out: Vec<u8> = Vec::with_capacity(total_len as usize);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u16(&mut out, SNAPSHOT_VERSION);
    put_u16(&mut out, flags);
    put_u32(&mut out, trip_count);
    put_u64(&mut out, point_count);
    put_u64(&mut out, total_len);
    put_u64(&mut out, epoch);
    put_u64(&mut out, offsets_off);
    put_u64(&mut out, columns_off);
    put_u64(&mut out, routes_off);
    debug_assert_eq!(out.len(), 64);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    debug_assert_eq!(out.len(), SNAPSHOT_HEADER_LEN);

    for p in &prefix {
        put_u64(&mut out, *p);
    }
    for o in &block_offsets {
        put_u64(&mut out, *o);
    }
    out.extend_from_slice(&columns);
    out.extend_from_slice(&routes_blob);
    debug_assert_eq!(out.len() as u64, total_len);
    Bytes::from_vec(out)
}

/// Routes section layout: u32 dict_len, dict_len × u32 segment ids
/// (descending frequency), u32 trip_count, (trip_count+1) × u64 byte
/// offsets into the lists region, then per trip a varint count + that
/// many varint dictionary indices.
fn encode_routes(routes: &[Vec<SegmentId>], out: &mut Vec<u8>) {
    // Frequency-ordered dictionary: hot segments get small indices, which
    // varint-encode short. Ties break on segment id for determinism.
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for route in routes {
        for seg in route {
            *freq.entry(seg.0).or_insert(0) += 1;
        }
    }
    let mut dict: Vec<(u32, u64)> = freq.into_iter().collect();
    dict.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let index: HashMap<u32, u64> = dict
        .iter()
        .enumerate()
        .map(|(i, (seg, _))| (*seg, i as u64))
        .collect();

    put_u32(out, dict.len() as u32);
    for (seg, _) in &dict {
        put_u32(out, *seg);
    }
    put_u32(out, routes.len() as u32);

    let mut lists: Vec<u8> = Vec::new();
    let mut offsets: Vec<u64> = Vec::with_capacity(routes.len() + 1);
    offsets.push(0);
    for route in routes {
        put_varint(&mut lists, route.len() as u64);
        for seg in route {
            put_varint(&mut lists, index[&seg.0]);
        }
        offsets.push(lists.len() as u64);
    }
    for o in &offsets {
        put_u64(out, *o);
    }
    out.extend_from_slice(&lists);
}

// ---------------------------------------------------------------------------
// Zero-copy reader
// ---------------------------------------------------------------------------

/// Zero-copy reader over a columnar snapshot blob.
///
/// [`ColumnarSnapshot::open`] validates the header (magic, version, CRC,
/// recorded length) and the offset tables (monotone, in-bounds) but does
/// **not** decode point data — a reader over an mmap'd file only faults in
/// the pages for trips it actually reads. Per-trip decoding happens on
/// demand in [`trip_points`](ColumnarSnapshot::trip_points); the full
/// materialization path is [`decode_archive`](ColumnarSnapshot::decode_archive),
/// which reproduces the source archive byte-identically.
#[derive(Debug, Clone)]
pub struct ColumnarSnapshot {
    data: Bytes,
    header: SnapshotHeader,
}

impl ColumnarSnapshot {
    /// Validates and opens a snapshot blob.
    pub fn open(data: Bytes) -> Result<Self, SnapshotError> {
        let raw = data.as_slice();
        if raw.len() < SNAPSHOT_HEADER_LEN {
            return Err(SnapshotError::TooShort);
        }
        if raw[0..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let header = SnapshotHeader {
            version: read_u16(raw, 8),
            flags: read_u16(raw, 10),
            trip_count: read_u32(raw, 12),
            point_count: read_u64(raw, 16),
            total_len: read_u64(raw, 24),
            epoch: read_u64(raw, 32),
            offsets_off: read_u64(raw, 40),
            columns_off: read_u64(raw, 48),
            routes_off: read_u64(raw, 56),
            header_crc: read_u32(raw, 64),
        };
        if crc32(&raw[0..64]) != header.header_crc {
            return Err(SnapshotError::HeaderCorrupt);
        }
        if header.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(header.version));
        }
        if header.total_len != raw.len() as u64 {
            return Err(SnapshotError::Truncated);
        }

        let n = header.trip_count as usize;
        let tables_len = 2u64 * (n as u64 + 1) * 8;
        if header.offsets_off != SNAPSHOT_HEADER_LEN as u64
            || header.columns_off != header.offsets_off + tables_len
            || header.columns_off > header.total_len
        {
            return Err(SnapshotError::Malformed("section offsets out of range"));
        }
        let snap = ColumnarSnapshot { data, header };

        // Validate the prefix-sum and block-offset tables up front so every
        // later table read is a plain slice index.
        let columns_len = snap.columns_len();
        let mut prev_p = 0u64;
        let mut prev_b = 0u64;
        for i in 0..=n {
            let p = snap.point_prefix(i);
            let b = snap.block_offset(i);
            if p < prev_p || b < prev_b {
                return Err(SnapshotError::Malformed("offset tables not monotone"));
            }
            prev_p = p;
            prev_b = b;
        }
        if prev_p != snap.header.point_count {
            return Err(SnapshotError::Malformed("point count mismatch"));
        }
        if prev_b != columns_len {
            return Err(SnapshotError::Malformed("column region length mismatch"));
        }
        if snap.header.has_routes() {
            if snap.header.routes_off != snap.header.columns_off + columns_len
                || snap.header.routes_off > snap.header.total_len
            {
                return Err(SnapshotError::Malformed("routes offset out of range"));
            }
            snap.validate_routes()?;
        } else if snap.header.columns_off + columns_len != snap.header.total_len {
            return Err(SnapshotError::Malformed("trailing bytes after columns"));
        }
        Ok(snap)
    }

    /// The parsed header.
    #[must_use]
    pub fn header(&self) -> &SnapshotHeader {
        &self.header
    }

    /// Epoch the snapshot was published at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.header.epoch
    }

    /// Number of trips.
    #[must_use]
    pub fn num_trajectories(&self) -> usize {
        self.header.trip_count as usize
    }

    /// Total number of GPS points.
    #[must_use]
    pub fn num_points(&self) -> usize {
        self.header.point_count as usize
    }

    /// Length of the raw blob in bytes — the resident cost of the
    /// columnar representation.
    #[must_use]
    pub fn blob_len(&self) -> usize {
        self.data.len()
    }

    /// The underlying blob.
    #[must_use]
    pub fn bytes(&self) -> &Bytes {
        &self.data
    }

    fn columns_len(&self) -> u64 {
        let end = if self.header.has_routes() {
            self.header.routes_off
        } else {
            self.header.total_len
        };
        end - self.header.columns_off
    }

    fn point_prefix(&self, i: usize) -> u64 {
        read_u64(
            self.data.as_slice(),
            self.header.offsets_off as usize + i * 8,
        )
    }

    fn block_offset(&self, i: usize) -> u64 {
        let base = self.header.offsets_off as usize + (self.header.trip_count as usize + 1) * 8;
        read_u64(self.data.as_slice(), base + i * 8)
    }

    /// Number of points in trip `i` — read from the prefix-sum table,
    /// no decoding.
    #[must_use]
    pub fn trip_len(&self, i: usize) -> usize {
        (self.point_prefix(i + 1) - self.point_prefix(i)) as usize
    }

    /// Decodes trip `i`'s points. Checked variant of
    /// [`trip_points`](Self::trip_points).
    pub fn try_trip_points(&self, i: usize) -> Result<Vec<GpsPoint>, SnapshotError> {
        assert!(i < self.num_trajectories(), "trip index out of range");
        let n = self.trip_len(i);
        let start = (self.header.columns_off + self.block_offset(i)) as usize;
        let end = (self.header.columns_off + self.block_offset(i + 1)) as usize;
        let block = &self.data.as_slice()[start..end];
        let mut pos = 0usize;
        let mut ts = Vec::with_capacity(n);
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        decode_column(block, &mut pos, n, T_SCALE, &mut ts)?;
        decode_column(block, &mut pos, n, XY_SCALE, &mut xs)?;
        decode_column(block, &mut pos, n, XY_SCALE, &mut ys)?;
        if pos != block.len() {
            return Err(SnapshotError::Malformed("column block underrun"));
        }
        Ok((0..n)
            .map(|j| GpsPoint {
                pos: Point::new(xs[j], ys[j]),
                t: ts[j],
            })
            .collect())
    }

    /// Decodes trip `i`'s points.
    ///
    /// # Panics
    /// On malformed column payloads (header and offset tables are already
    /// validated by [`open`](Self::open); payload corruption surfaces
    /// here). Use [`try_trip_points`](Self::try_trip_points) to handle
    /// corruption without panicking.
    #[must_use]
    pub fn trip_points(&self, i: usize) -> Vec<GpsPoint> {
        self.try_trip_points(i).expect("malformed column payload")
    }

    /// Fully materializes the archive this snapshot was encoded from,
    /// byte-identical to the source (same trip order, same ids, same
    /// `f64` bit patterns, same bulk-loaded R-tree).
    pub fn decode_archive(&self) -> Result<TrajectoryArchive, SnapshotError> {
        let n = self.num_trajectories();
        let mut trips = Vec::with_capacity(n);
        for i in 0..n {
            let points = self.try_trip_points(i)?;
            trips.push(Trajectory::from_unchecked(TrajId(i as u32), points));
        }
        Ok(TrajectoryArchive::new(trips))
    }

    fn routes_region(&self) -> &[u8] {
        &self.data.as_slice()[self.header.routes_off as usize..self.header.total_len as usize]
    }

    fn validate_routes(&self) -> Result<(), SnapshotError> {
        let r = self.routes_region();
        if r.len() < 4 {
            return Err(SnapshotError::Malformed("routes section too short"));
        }
        let dict_len = read_u32(r, 0) as usize;
        let trips_at = 4 + dict_len * 4;
        if r.len() < trips_at + 4 {
            return Err(SnapshotError::Malformed("routes dictionary overruns"));
        }
        let n_trips = read_u32(r, trips_at) as usize;
        if n_trips != self.num_trajectories() {
            return Err(SnapshotError::Malformed("routes trip count mismatch"));
        }
        let offs_at = trips_at + 4;
        let lists_at = offs_at + (n_trips + 1) * 8;
        if r.len() < lists_at {
            return Err(SnapshotError::Malformed("routes offset table overruns"));
        }
        let lists_len = (r.len() - lists_at) as u64;
        let mut prev = 0u64;
        for i in 0..=n_trips {
            let o = read_u64(r, offs_at + i * 8);
            if o < prev || o > lists_len {
                return Err(SnapshotError::Malformed("routes offsets not monotone"));
            }
            prev = o;
        }
        if prev != lists_len {
            return Err(SnapshotError::Malformed("routes lists length mismatch"));
        }
        Ok(())
    }

    /// Number of interned segment ids in the routes dictionary, or
    /// `None` when the snapshot has no routes section.
    #[must_use]
    pub fn route_dict_len(&self) -> Option<usize> {
        if !self.header.has_routes() {
            return None;
        }
        Some(read_u32(self.routes_region(), 0) as usize)
    }

    /// Decodes trip `i`'s interned route, or `None` when the snapshot
    /// has no routes section.
    pub fn trip_route(&self, i: usize) -> Option<Result<Vec<SegmentId>, SnapshotError>> {
        if !self.header.has_routes() {
            return None;
        }
        assert!(i < self.num_trajectories(), "trip index out of range");
        Some(self.trip_route_inner(i))
    }

    fn trip_route_inner(&self, i: usize) -> Result<Vec<SegmentId>, SnapshotError> {
        let r = self.routes_region();
        let dict_len = read_u32(r, 0) as usize;
        let dict_at = 4;
        let trips_at = dict_at + dict_len * 4;
        let n_trips = read_u32(r, trips_at) as usize;
        let offs_at = trips_at + 4;
        let lists_at = offs_at + (n_trips + 1) * 8;
        let start = lists_at + read_u64(r, offs_at + i * 8) as usize;
        let end = lists_at + read_u64(r, offs_at + (i + 1) * 8) as usize;
        let list = &r[start..end];
        let mut pos = 0usize;
        let count = get_varint(list, &mut pos)? as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let idx = get_varint(list, &mut pos)? as usize;
            if idx >= dict_len {
                return Err(SnapshotError::Malformed("route index out of dictionary"));
            }
            out.push(SegmentId(read_u32(r, dict_at + idx * 4)));
        }
        if pos != list.len() {
            return Err(SnapshotError::Malformed("route list underrun"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Trajectory;

    fn gp(x: f64, y: f64, t: f64) -> GpsPoint {
        GpsPoint::new(Point::new(x, y), t)
    }

    fn sample_archive() -> TrajectoryArchive {
        let trips = vec![
            Trajectory::new(
                TrajId(0),
                vec![
                    gp(100.0, 200.0, 0.0),
                    gp(150.5, 240.25, 30.0),
                    gp(210.125, 300.0, 61.5),
                ],
            ),
            Trajectory::new(
                TrajId(1),
                vec![gp(-50.0, 0.001, 10.0), gp(-49.0, 0.002, 12.0)],
            ),
        ];
        TrajectoryArchive::new(trips)
    }

    fn assert_bit_identical(a: &TrajectoryArchive, b: &TrajectoryArchive) {
        assert_eq!(a.num_trajectories(), b.num_trajectories());
        assert_eq!(a.num_points(), b.num_points());
        for (ta, tb) in a.trajectories().iter().zip(b.trajectories()) {
            assert_eq!(ta.id, tb.id);
            assert_eq!(ta.points.len(), tb.points.len());
            for (pa, pb) in ta.points.iter().zip(&tb.points) {
                assert_eq!(pa.t.to_bits(), pb.t.to_bits());
                assert_eq!(pa.pos.x.to_bits(), pb.pos.x.to_bits());
                assert_eq!(pa.pos.y.to_bits(), pb.pos.y.to_bits());
            }
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let archive = sample_archive();
        let blob = encode_snapshot(&archive, 7);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        assert_eq!(snap.epoch(), 7);
        assert_eq!(snap.num_trajectories(), 2);
        assert_eq!(snap.num_points(), 5);
        let decoded = snap.decode_archive().expect("decode");
        assert_bit_identical(&archive, &decoded);
    }

    #[test]
    fn raw_fallback_handles_unrepresentable_values() {
        // PI is not exactly representable at mm fixed point — must take
        // the RAW path and still round-trip bit-exactly.
        let trips = vec![Trajectory::new(
            TrajId(0),
            vec![
                gp(std::f64::consts::PI, 1.0 / 3.0, 0.1 + 0.2),
                gp(std::f64::consts::E, 2.0 / 3.0, 1.0e17),
            ],
        )];
        let archive = TrajectoryArchive::new(trips);
        let blob = encode_snapshot(&archive, 0);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        let decoded = snap.decode_archive().expect("decode");
        assert_bit_identical(&archive, &decoded);
    }

    #[test]
    fn empty_archive_roundtrips() {
        let archive = TrajectoryArchive::empty();
        let blob = encode_snapshot(&archive, 3);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        assert_eq!(snap.num_trajectories(), 0);
        assert_eq!(snap.num_points(), 0);
        let decoded = snap.decode_archive().expect("decode");
        assert_eq!(decoded.num_trajectories(), 0);
    }

    #[test]
    fn empty_trajectory_roundtrips() {
        let trips = vec![
            Trajectory::from_unchecked(TrajId(0), vec![]),
            Trajectory::new(TrajId(1), vec![gp(1.0, 2.0, 3.0)]),
        ];
        let archive = TrajectoryArchive::new(trips);
        let blob = encode_snapshot(&archive, 0);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        assert_eq!(snap.trip_len(0), 0);
        assert_eq!(snap.trip_len(1), 1);
        let decoded = snap.decode_archive().expect("decode");
        assert_bit_identical(&archive, &decoded);
    }

    #[test]
    fn clean_data_compresses_below_flat_encoding() {
        // 1 Hz millisecond timestamps, mm-quantized coords: the FIXED path
        // should beat the flat 24-bytes-per-point `to_bytes` layout by a
        // wide margin.
        let pts: Vec<GpsPoint> = (0..1000)
            .map(|i| {
                let f = f64::from(i);
                gp(
                    (1000.0 + f * 3.125).round() / 1000.0 * 1000.0,
                    (2000.0 - f * 2.5).round(),
                    f,
                )
            })
            .collect();
        let archive = TrajectoryArchive::new(vec![Trajectory::new(TrajId(0), pts)]);
        let flat = archive.to_bytes().len();
        let columnar = encode_snapshot(&archive, 0).len();
        assert!(
            columnar * 2 < flat,
            "columnar {columnar} should be <half of flat {flat}"
        );
    }

    #[test]
    fn open_rejects_bad_magic() {
        let mut raw = encode_snapshot(&sample_archive(), 0).as_slice().to_vec();
        raw[0] ^= 0xff;
        assert_eq!(
            ColumnarSnapshot::open(Bytes::from_vec(raw)).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn open_rejects_header_bitflip() {
        let mut raw = encode_snapshot(&sample_archive(), 0).as_slice().to_vec();
        raw[33] ^= 0x01; // epoch byte: CRC must catch it
        assert_eq!(
            ColumnarSnapshot::open(Bytes::from_vec(raw)).unwrap_err(),
            SnapshotError::HeaderCorrupt
        );
    }

    #[test]
    fn open_rejects_future_version() {
        let mut raw = encode_snapshot(&sample_archive(), 0).as_slice().to_vec();
        raw[8] = 99;
        raw[9] = 0;
        // Re-seal the CRC so the version check (not the CRC) fires.
        let crc = crc32(&raw[0..64]);
        raw[64..68].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ColumnarSnapshot::open(Bytes::from_vec(raw)).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn open_rejects_truncation() {
        let raw = encode_snapshot(&sample_archive(), 0).as_slice().to_vec();
        let cut = raw.len() - 3;
        assert_eq!(
            ColumnarSnapshot::open(Bytes::from_vec(raw[..cut].to_vec())).unwrap_err(),
            SnapshotError::Truncated
        );
        assert_eq!(
            ColumnarSnapshot::open(Bytes::from_vec(raw[..20].to_vec())).unwrap_err(),
            SnapshotError::TooShort
        );
    }

    #[test]
    fn payload_corruption_is_detected_on_decode() {
        let raw = encode_snapshot(&sample_archive(), 0).as_slice().to_vec();
        let mut bad = raw.clone();
        // Flip the first column tag byte to an invalid value.
        let columns_off = read_u64(&raw, 48) as usize;
        bad[columns_off] = 7;
        let snap = ColumnarSnapshot::open(Bytes::from_vec(bad)).expect("header still valid");
        assert!(snap.try_trip_points(0).is_err());
        assert!(snap.decode_archive().is_err());
    }

    #[test]
    fn routes_intern_and_roundtrip() {
        let archive = sample_archive();
        let routes = vec![
            vec![SegmentId(9), SegmentId(4), SegmentId(9)],
            vec![SegmentId(9)],
        ];
        let blob = encode_snapshot_with_routes(&archive, 1, &routes);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        assert!(snap.header().has_routes());
        // Segment 9 appears 3× → dictionary slot 0.
        assert_eq!(snap.route_dict_len(), Some(2));
        for (i, want) in routes.iter().enumerate() {
            let got = snap.trip_route(i).expect("routes present").expect("decode");
            assert_eq!(&got, want);
        }
        // Points are unaffected by the routes section.
        assert_bit_identical(&archive, &snap.decode_archive().expect("decode"));
    }

    #[test]
    fn header_describe_is_stable() {
        let blob = encode_snapshot(&sample_archive(), 2);
        let snap = ColumnarSnapshot::open(blob).expect("open");
        let d = snap.header().describe();
        assert!(d.contains("magic            HRISSNAP"));
        assert!(d.contains("version          1"));
    }

    #[test]
    fn varint_zigzag_edge_cases() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1 << 40, -(1 << 40)] {
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(get_varint(&buf, &mut pos).unwrap()), v);
            assert_eq!(pos, buf.len());
        }
        let mut pos = 0;
        assert!(get_varint(&[0x80, 0x80], &mut pos).is_err());
    }
}
