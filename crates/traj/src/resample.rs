//! Resampling and noise injection.
//!
//! The paper's queries are built by *re-sampling high-rate trajectories down
//! to the desired sampling interval* (Section IV-B). We follow the same
//! protocol: keep the first point, then greedily keep the next observation
//! whose timestamp is at least `interval_s` after the last kept one, and
//! always keep the final point so the query spans the full trip.

use crate::types::{GpsPoint, Trajectory};
use hris_geo::Point;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Downsamples `traj` to a target sampling interval (seconds).
///
/// The identity of retained points is preserved (no interpolation), exactly
/// like dropping reports from a taxi's GPS log. Intervals ≤ the source's
/// native interval return a clone.
#[must_use]
pub fn resample_to_interval(traj: &Trajectory, interval_s: f64) -> Trajectory {
    if traj.points.len() <= 2 || interval_s <= 0.0 {
        return traj.clone();
    }
    let mut kept: Vec<GpsPoint> = Vec::new();
    let mut last_t = f64::NEG_INFINITY;
    for p in &traj.points {
        if kept.is_empty() || p.t - last_t >= interval_s {
            kept.push(*p);
            last_t = p.t;
        }
    }
    // Ensure the final observation survives so the query reaches the
    // destination. Compare the whole point, not just the timestamp: with a
    // duplicated final timestamp at a different position the destination
    // would otherwise be silently dropped.
    let last = *traj.points.last().expect("len > 2");
    if kept.last() != Some(&last) {
        kept.push(last);
    }
    Trajectory::new(traj.id, kept)
}

/// Adds isotropic Gaussian GPS noise (`sigma_m` per axis) to every point.
///
/// Uses Box–Muller so we stay within the workspace's approved `rand`
/// surface (no `rand_distr` dependency).
#[must_use]
pub fn add_gps_noise(traj: &Trajectory, sigma_m: f64, rng: &mut ChaCha8Rng) -> Trajectory {
    if sigma_m <= 0.0 {
        return traj.clone();
    }
    let points = traj
        .points
        .iter()
        .map(|p| {
            let (dx, dy) = gaussian_pair(rng, sigma_m);
            GpsPoint::new(Point::new(p.pos.x + dx, p.pos.y + dy), p.t)
        })
        .collect();
    Trajectory::new(traj.id, points)
}

/// One pair of independent N(0, sigma²) samples via Box–Muller.
pub(crate) fn gaussian_pair(rng: &mut ChaCha8Rng, sigma: f64) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt() * sigma;
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TrajId;
    use rand::SeedableRng;

    fn dense_traj() -> Trajectory {
        // 20 s native interval for 10 minutes (31 points), like GeoLife.
        let pts: Vec<GpsPoint> = (0..=30)
            .map(|k| GpsPoint::new(Point::new(k as f64 * 150.0, 0.0), k as f64 * 20.0))
            .collect();
        Trajectory::new(TrajId(3), pts)
    }

    #[test]
    fn resample_to_3min() {
        let t = dense_traj();
        let r = resample_to_interval(&t, 180.0);
        // 600 s span / 180 s → points at t = 0, 180, 360, 540, then final 600.
        assert_eq!(r.len(), 5);
        assert!(r.mean_interval() >= 149.0);
        // Endpoints preserved.
        assert_eq!(r.points.first().unwrap().t, 0.0);
        assert_eq!(r.points.last().unwrap().t, 600.0);
        // Every retained point is one of the originals.
        for p in &r.points {
            assert!(t.points.contains(p));
        }
    }

    #[test]
    fn resample_identity_for_fast_interval() {
        let t = dense_traj();
        let r = resample_to_interval(&t, 10.0);
        assert_eq!(r.len(), t.len());
    }

    #[test]
    fn resample_degenerate_inputs() {
        let t = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::ORIGIN, 0.0),
                GpsPoint::new(Point::new(1.0, 0.0), 10.0),
            ],
        );
        assert_eq!(resample_to_interval(&t, 300.0).len(), 2);
        assert_eq!(resample_to_interval(&dense_traj(), -5.0).len(), 31);
    }

    #[test]
    fn noise_perturbs_positions_not_times() {
        let t = dense_traj();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = add_gps_noise(&t, 20.0, &mut rng);
        assert_eq!(n.len(), t.len());
        let mut moved = 0;
        for (a, b) in t.points.iter().zip(n.points.iter()) {
            assert_eq!(a.t, b.t);
            if a.pos.dist(b.pos) > 1e-9 {
                moved += 1;
            }
        }
        assert_eq!(moved, t.len());
    }

    #[test]
    fn noise_magnitude_is_plausible() {
        let t = dense_traj();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sigma = 15.0;
        let n = add_gps_noise(&t, sigma, &mut rng);
        let mean_off: f64 = t
            .points
            .iter()
            .zip(n.points.iter())
            .map(|(a, b)| a.pos.dist(b.pos))
            .sum::<f64>()
            / t.len() as f64;
        // Rayleigh mean = sigma * sqrt(pi/2) ≈ 18.8; accept a generous band.
        assert!(mean_off > 5.0 && mean_off < 50.0, "mean offset {mean_off}");
    }

    #[test]
    fn zero_sigma_is_identity() {
        let t = dense_traj();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(add_gps_noise(&t, 0.0, &mut rng), t);
    }

    #[test]
    fn gaussian_pair_is_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 4000;
        let (mut sx, mut sy) = (0.0, 0.0);
        for _ in 0..n {
            let (x, y) = gaussian_pair(&mut rng, 1.0);
            sx += x;
            sy += y;
        }
        assert!((sx / n as f64).abs() < 0.1);
        assert!((sy / n as f64).abs() < 0.1);
    }

    #[test]
    fn empty_and_single_point_are_cloned() {
        let e = Trajectory::new(TrajId(0), vec![]);
        assert!(resample_to_interval(&e, 60.0).is_empty());
        let s = Trajectory::new(TrajId(0), vec![GpsPoint::new(Point::ORIGIN, 7.0)]);
        let r = resample_to_interval(&s, 60.0);
        assert_eq!(r.points, s.points);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(add_gps_noise(&e, 5.0, &mut rng).is_empty());
        assert_eq!(add_gps_noise(&s, 5.0, &mut rng).len(), 1);
    }

    #[test]
    fn duplicate_timestamps_survive_resampling_in_order() {
        // Equal timestamps are valid (non-decreasing); resampling must not
        // panic in `Trajectory::new` and must keep the final observation.
        let t = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(10.0, 0.0), 0.0),
                GpsPoint::new(Point::new(20.0, 0.0), 120.0),
                GpsPoint::new(Point::new(30.0, 0.0), 120.0),
            ],
        );
        let r = resample_to_interval(&t, 60.0);
        assert!(r.is_time_ordered());
        assert_eq!(r.points.last().unwrap().pos.x, 30.0);
    }
}
