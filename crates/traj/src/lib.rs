//! Trajectory substrate: GPS points, trajectories, the historical archive,
//! preprocessing (stay-point detection, trip partition, resampling) and the
//! taxi-fleet simulator that generates paper-scale synthetic data.
//!
//! The paper's system ingests raw taxi GPS logs, partitions them into trips
//! at stay points, map-matches the points, and indexes everything in an
//! R-tree (Section II-B.1). This crate implements that whole data layer,
//! plus the simulator that substitutes for the 33,000-taxi Beijing dataset
//! (see the substitutions table in DESIGN.md).

#![warn(missing_docs)]

pub mod archive;
pub mod faults;
pub mod geojson;
pub mod ingest;
pub mod partition;
pub mod resample;
pub mod similarity;
pub mod simulator;
pub mod snapshot;
pub mod staypoint;
pub mod types;

pub use archive::{encode_trips, ArchivePoint, LoadReport, TolerantLoadOptions, TrajectoryArchive};
pub use faults::{fault_corpus, FaultInjector, FaultKind};
pub use ingest::{
    ArchiveSnapshot, ArchiveWriter, IngestOptions, IngestQueue, IngestReport, SnapshotReader,
};
pub use partition::{partition_archive, ArchivePartition};
pub use resample::{add_gps_noise, resample_to_interval};
pub use similarity::{dtw, edr, lcss};
pub use simulator::{SimConfig, Simulator, TripRecord};
pub use snapshot::{
    encode_snapshot, encode_snapshot_with_routes, ColumnarSnapshot, SnapshotError, SnapshotHeader,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use staypoint::{detect_stay_points, partition_trips, StayPoint, StayPointConfig};
pub use types::{
    sanitize_points, GpsPoint, PointRepairs, SanitizeLimits, TrajId, Trajectory, TrajectoryError,
};
