//! Taxi-fleet simulator: generates a historical archive with the two
//! statistical properties the paper's inference relies on.
//!
//! - **Observation 1 (skewed travel patterns).** Travel demand concentrates
//!   on a pool of recurring origin–destination *patterns*; within each
//!   pattern, drivers choose among the K cheapest routes with Zipf-like
//!   weights, so one or two routes dominate.
//! - **Observation 2 (complementary samples).** Each trip samples its route
//!   at an independent phase and interval, so points of different trips
//!   interleave along popular roads.
//!
//! The simulator also reproduces the paper's *data quality* caveat: a
//! configurable fraction of trips report at low rate (minutes between
//! fixes), the rest at high rate (tens of seconds).
//!
//! Everything is deterministic given [`SimConfig::seed`].

use crate::archive::TrajectoryArchive;
use crate::resample::gaussian_pair;
use crate::types::{GpsPoint, TrajId, Trajectory};
use hris_geo::Point;
use hris_roadnet::shortest::{k_shortest_routes, shortest_path};
use hris_roadnet::{CostModel, NodeId, RoadNetwork, Route};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the fleet simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total number of trips to generate.
    pub num_trips: usize,
    /// Size of the recurring OD-pattern pool.
    pub num_od_patterns: usize,
    /// Fraction of trips drawn from the pattern pool (the rest pick uniform
    /// random ODs for background coverage).
    pub pattern_trip_frac: f64,
    /// Candidate routes per OD pattern (the K of the route-choice model).
    pub route_choice_k: usize,
    /// Zipf exponent of route choice; larger = more skew (Observation 1).
    pub route_skew: f64,
    /// Minimum network distance between O and D, metres.
    pub min_trip_dist_m: f64,
    /// High-rate sampling interval range, seconds.
    pub high_interval_s: (f64, f64),
    /// Low-rate sampling interval range, seconds.
    pub low_interval_s: (f64, f64),
    /// Fraction of trips reporting at low rate (paper: >60 %).
    pub low_rate_frac: f64,
    /// Isotropic GPS noise sigma, metres.
    pub gps_noise_m: f64,
    /// Drivers travel at `U(lo, hi) ×` the segment speed limit.
    pub speed_factor: (f64, f64),
    /// Trips depart uniformly within this horizon, seconds.
    pub horizon_s: f64,
    /// When `true`, travel demand is *diurnal*: each OD pattern gets a peak
    /// time-of-day and its trips depart near that peak (±2 h Gaussian).
    /// This is the workload for the time-aware route inference extension
    /// (the paper's future work: "incorporate more information … such as
    /// the time").
    pub diurnal_peaks: bool,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_trips: 2000,
            num_od_patterns: 60,
            pattern_trip_frac: 0.75,
            route_choice_k: 4,
            route_skew: 1.4,
            min_trip_dist_m: 2000.0,
            high_interval_s: (15.0, 45.0),
            low_interval_s: (120.0, 480.0),
            low_rate_frac: 0.6,
            gps_noise_m: 15.0,
            speed_factor: (0.55, 0.95),
            horizon_s: 86_400.0 * 3.0,
            diurnal_peaks: false,
            seed: 7,
        }
    }
}

/// One simulated trip: the observed trajectory plus its exact ground-truth
/// route (something the real Beijing dataset can only approximate by
/// map-matching the high-rate logs).
#[derive(Debug, Clone)]
pub struct TripRecord {
    /// The (noisy, sampled) GPS trajectory.
    pub trajectory: Trajectory,
    /// The exact route the simulated driver travelled.
    pub route: Route,
    /// Departure time, seconds.
    pub depart_t: f64,
}

/// One recurring OD pattern with its candidate routes.
#[derive(Debug, Clone)]
struct OdPattern {
    routes: Vec<Route>,
}

/// The fleet simulator. Holds the network, the OD-pattern pool and a
/// route-choice cache.
pub struct Simulator<'a> {
    net: &'a RoadNetwork,
    cfg: SimConfig,
    rng: ChaCha8Rng,
    patterns: Vec<OdPattern>,
    /// Cache of shortest routes for uniform (non-pattern) ODs.
    sp_cache: HashMap<(NodeId, NodeId), Option<Route>>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator; builds the OD-pattern pool eagerly.
    #[must_use]
    pub fn new(net: &'a RoadNetwork, cfg: SimConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut patterns = Vec::with_capacity(cfg.num_od_patterns);
        let mut guard = 0;
        while patterns.len() < cfg.num_od_patterns && guard < cfg.num_od_patterns * 50 {
            guard += 1;
            let (a, b) = match random_od(net, cfg.min_trip_dist_m, &mut rng) {
                Some(od) => od,
                None => break,
            };
            let routes: Vec<Route> =
                k_shortest_routes(net, a, b, cfg.route_choice_k, CostModel::Time)
                    .into_iter()
                    .map(|(r, _)| r)
                    .collect();
            if !routes.is_empty() {
                patterns.push(OdPattern { routes });
            }
        }
        Simulator {
            net,
            cfg,
            rng,
            patterns,
            sp_cache: HashMap::new(),
        }
    }

    /// The simulator's configuration.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Generates `cfg.num_trips` trips.
    #[must_use]
    pub fn generate_trips(&mut self) -> Vec<TripRecord> {
        self.generate_trips_n(self.cfg.num_trips)
    }

    /// Generates exactly `n` further trips (the RNG continues, so repeated
    /// calls extend the same simulated world).
    #[must_use]
    pub fn generate_trips_n(&mut self, n: usize) -> Vec<TripRecord> {
        let mut out = Vec::with_capacity(n);
        let mut failures = 0usize;
        while out.len() < n && failures < 1000 {
            match self.generate_one() {
                Some(trip) => out.push(trip),
                None => failures += 1,
            }
        }
        out
    }

    /// Generates trips and packages them (with ground truth) into an
    /// archive. Returns `(archive, routes)` where `routes[i]` is the true
    /// route of archive trajectory `TrajId(i)`.
    #[must_use]
    pub fn generate_archive(&mut self) -> (TrajectoryArchive, Vec<Route>) {
        let trips = self.generate_trips();
        let routes: Vec<Route> = trips.iter().map(|t| t.route.clone()).collect();
        let trajs: Vec<Trajectory> = trips.into_iter().map(|t| t.trajectory).collect();
        (TrajectoryArchive::new(trajs), routes)
    }

    fn generate_one(&mut self) -> Option<TripRecord> {
        let mut pattern_idx: Option<usize> = None;
        let route = if !self.patterns.is_empty()
            && self
                .rng
                .gen_bool(self.cfg.pattern_trip_frac.clamp(0.0, 1.0))
        {
            // Demand skew across patterns AND route skew within a pattern.
            let p = zipf_sample(self.patterns.len(), 1.0, &mut self.rng);
            pattern_idx = Some(p);
            let pat = &self.patterns[p];
            let r = zipf_sample(pat.routes.len(), self.cfg.route_skew, &mut self.rng);
            pat.routes[r].clone()
        } else {
            let (a, b) = random_od(self.net, self.cfg.min_trip_dist_m, &mut self.rng)?;
            self.sp_cache
                .entry((a, b))
                .or_insert_with(|| {
                    shortest_path(self.net, a, b, CostModel::Time).map(|p| p.route())
                })
                .clone()?
        };
        let depart_t = match (self.cfg.diurnal_peaks, pattern_idx) {
            (true, Some(p)) => {
                // Peak hour spread evenly over the day per pattern.
                let peak = 86_400.0 * p as f64 / self.patterns.len().max(1) as f64;
                let (g, _) = gaussian_pair(&mut self.rng, 7_200.0);
                let day = self
                    .rng
                    .gen_range(0..(self.cfg.horizon_s / 86_400.0).max(1.0) as u64);
                (day as f64 * 86_400.0 + (peak + g).rem_euclid(86_400.0))
                    .min(self.cfg.horizon_s - 1.0)
            }
            _ => self.rng.gen_range(0.0..self.cfg.horizon_s),
        };
        let interval = if self.rng.gen_bool(self.cfg.low_rate_frac.clamp(0.0, 1.0)) {
            sample_range(self.cfg.low_interval_s, &mut self.rng)
        } else {
            sample_range(self.cfg.high_interval_s, &mut self.rng)
        };
        let trajectory = self.drive(&route, depart_t, interval)?;
        Some(TripRecord {
            trajectory,
            route,
            depart_t,
        })
    }

    /// Drives `route` departing at `depart_t`, emitting a (noisy) GPS fix
    /// every `interval_s` seconds plus the final arrival fix.
    ///
    /// Returns `None` for degenerate routes (no geometry).
    #[must_use]
    pub fn drive(&mut self, route: &Route, depart_t: f64, interval_s: f64) -> Option<Trajectory> {
        let speed_factor = sample_range(self.cfg.speed_factor, &mut self.rng);
        let clean = drive_route(self.net, route, depart_t, interval_s, speed_factor)?;
        let mut points = clean;
        if self.cfg.gps_noise_m > 0.0 {
            for p in &mut points {
                let (dx, dy) = gaussian_pair(&mut self.rng, self.cfg.gps_noise_m);
                p.pos = Point::new(p.pos.x + dx, p.pos.y + dy);
            }
        }
        Some(Trajectory::new(TrajId(0), points))
    }

    /// A random OD pair whose network distance is at least `min_dist` and at
    /// most `max_dist` metres — used to build length-controlled query trips.
    #[must_use]
    pub fn od_with_dist(
        &mut self,
        min_dist: f64,
        max_dist: f64,
    ) -> Option<(NodeId, NodeId, Route)> {
        for _ in 0..400 {
            let (a, b) = random_od(self.net, min_dist, &mut self.rng)?;
            if let Some(p) = shortest_path(self.net, a, b, CostModel::Time) {
                let len = p.route().length(self.net);
                if len >= min_dist && len <= max_dist {
                    return Some((a, b, p.route()));
                }
            }
        }
        None
    }

    /// Exposes the internal RNG for auxiliary sampling in the eval harness.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }
}

/// Simulates motion along `route` at `speed_factor ×` each segment's limit,
/// sampling every `interval_s` (plus the final point). Noise-free.
#[must_use]
pub fn drive_route(
    net: &RoadNetwork,
    route: &Route,
    depart_t: f64,
    interval_s: f64,
    speed_factor: f64,
) -> Option<Vec<GpsPoint>> {
    if route.is_empty() || interval_s <= 0.0 || speed_factor <= 0.0 {
        return None;
    }
    let mut points = Vec::new();
    let mut t = depart_t;
    let mut next_sample = depart_t;
    for &sid in route.segments() {
        let seg = net.segment(sid);
        let speed = seg.speed_limit * speed_factor;
        let seg_duration = seg.length / speed;
        // Emit every sample falling within this segment's traversal window.
        while next_sample <= t + seg_duration {
            let offset = (next_sample - t) * speed;
            points.push(GpsPoint::new(seg.geometry.point_at(offset), next_sample));
            next_sample += interval_s;
        }
        t += seg_duration;
    }
    // Arrival fix (skip if the last periodic sample already landed there).
    let arrive = GpsPoint::new(net.segment(*route.segments().last()?).geometry.end(), t);
    if points.last().map(|p| (p.t - arrive.t).abs() > 1e-9) != Some(false) {
        points.push(arrive);
    }
    Some(points)
}

/// Uniform random OD pair with straight-line distance ≥ `min_dist * 0.7`
/// (cheap pre-filter; the caller verifies network distance when it matters).
fn random_od(net: &RoadNetwork, min_dist: f64, rng: &mut ChaCha8Rng) -> Option<(NodeId, NodeId)> {
    let n = net.num_nodes();
    if n < 2 {
        return None;
    }
    for _ in 0..200 {
        let a = NodeId(rng.gen_range(0..n) as u32);
        let b = NodeId(rng.gen_range(0..n) as u32);
        if a != b && net.node(a).dist(net.node(b)) >= min_dist * 0.7 {
            return Some((a, b));
        }
    }
    None
}

/// Samples an index in `0..n` with Zipf weights `1/(i+1)^s`.
fn zipf_sample(n: usize, s: f64, rng: &mut ChaCha8Rng) -> usize {
    debug_assert!(n > 0);
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    n - 1
}

fn sample_range(range: (f64, f64), rng: &mut ChaCha8Rng) -> f64 {
    if range.1 <= range.0 {
        range.0
    } else {
        rng.gen_range(range.0..range.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_roadnet::{generator, NetworkConfig};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig::small(21))
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            num_trips: 40,
            num_od_patterns: 6,
            min_trip_dist_m: 400.0,
            horizon_s: 3600.0,
            seed: 5,
            ..SimConfig::default()
        }
    }

    #[test]
    fn trips_have_valid_ground_truth() {
        let net = net();
        let mut sim = Simulator::new(&net, small_cfg());
        let trips = sim.generate_trips();
        assert_eq!(trips.len(), 40);
        for trip in &trips {
            assert!(trip.route.is_connected(&net), "ground truth connects");
            assert!(trip.trajectory.len() >= 2, "at least departure + arrival");
            // Time-ordered by construction (Trajectory::new asserts).
            assert!(trip.trajectory.points[0].t >= trip.depart_t - 1e-9);
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let net = net();
        let a = Simulator::new(&net, small_cfg()).generate_trips();
        let b = Simulator::new(&net, small_cfg()).generate_trips();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.trajectory.points, y.trajectory.points);
            assert_eq!(x.route, y.route);
        }
    }

    #[test]
    fn drive_route_samples_on_the_route() {
        let net = net();
        let mut sim = Simulator::new(
            &net,
            SimConfig {
                gps_noise_m: 0.0,
                ..small_cfg()
            },
        );
        let (_, _, route) = sim.od_with_dist(500.0, 5000.0).unwrap();
        let pts = drive_route(&net, &route, 0.0, 30.0, 0.8).unwrap();
        let pl = route.polyline(&net).unwrap();
        for p in &pts {
            assert!(
                pl.dist_to_point(p.pos) < 1.0,
                "noise-free samples lie on the route"
            );
        }
        // Samples are spaced by the interval (except the arrival fix).
        for w in pts.windows(2).take(pts.len().saturating_sub(2)) {
            assert!((w[1].t - w[0].t - 30.0).abs() < 1e-9);
        }
        // First sample at departure, last at arrival end.
        assert_eq!(pts[0].t, 0.0);
        assert!(pts.last().unwrap().pos.dist(pl.end()) < 1e-6);
    }

    #[test]
    fn route_popularity_is_skewed() {
        let net = net();
        let cfg = SimConfig {
            num_trips: 300,
            num_od_patterns: 3,
            pattern_trip_frac: 1.0,
            route_skew: 1.6,
            ..small_cfg()
        };
        let mut sim = Simulator::new(&net, cfg);
        let trips = sim.generate_trips();
        // Count trips per distinct route.
        let mut counts: HashMap<&Route, usize> = HashMap::new();
        for t in &trips {
            *counts.entry(&t.route).or_default() += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // The most popular route should dominate: at least 2x the median.
        let top = freqs[0];
        let median = freqs[freqs.len() / 2];
        assert!(
            top >= median * 2,
            "expected skewed popularity, got top={top} median={median}"
        );
    }

    #[test]
    fn sampling_rate_mixture() {
        let net = net();
        let cfg = SimConfig {
            num_trips: 120,
            low_rate_frac: 0.5,
            min_trip_dist_m: 800.0,
            ..small_cfg()
        };
        let mut sim = Simulator::new(&net, cfg);
        let trips = sim.generate_trips();
        let low = trips
            .iter()
            .filter(|t| t.trajectory.len() >= 3 && t.trajectory.mean_interval() > 60.0)
            .count();
        let high = trips
            .iter()
            .filter(|t| t.trajectory.len() >= 3 && t.trajectory.mean_interval() <= 60.0)
            .count();
        assert!(low > 0, "some low-rate trips");
        assert!(high > 0, "some high-rate trips");
    }

    #[test]
    fn archive_matches_routes() {
        let net = net();
        let mut sim = Simulator::new(&net, small_cfg());
        let (archive, routes) = sim.generate_archive();
        assert_eq!(archive.num_trajectories(), routes.len());
        assert!(archive.num_points() > archive.num_trajectories());
    }

    #[test]
    fn zipf_prefers_small_indices() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[zipf_sample(4, 1.5, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
        assert!(counts[3] > 0);
    }

    #[test]
    fn drive_route_degenerate_inputs() {
        let net = net();
        assert!(drive_route(&net, &Route::empty(), 0.0, 30.0, 0.8).is_none());
        let r = Route::new(vec![net.segments()[0].id]);
        assert!(drive_route(&net, &r, 0.0, -1.0, 0.8).is_none());
        assert!(drive_route(&net, &r, 0.0, 30.0, 0.0).is_none());
    }
}
