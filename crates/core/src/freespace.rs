//! Network-free route inference — the paper's second future-work item:
//! "extend our solution to deal with the case where the road network is
//! not available".
//!
//! Without a road graph there are no road segments, candidate edges,
//! traverse graphs or K-shortest paths. What remains is the heart of the
//! method: *historical reference points still say where objects travel*.
//! For each query pair we run the NNI-style constrained nearest-neighbour
//! walk (Algorithm 2's geometry is network-free already — α/β constraints
//! are pure point geometry) over the reference point cloud, pick the walk
//! best supported by distinct historical trajectories, and emit the traces
//! chained across pairs as one free-space [`Polyline`].
//!
//! Output quality is evaluated with curve metrics
//! ([`hris_geo::mean_deviation`], [`hris_geo::discrete_frechet`]) rather
//! than the segment-based `A_L` — see the `freespace` experiment.

use crate::reference::{search_references, RefSearchConfig};
use hris_geo::{BBox, Point, Polyline};
use hris_rtree::{RTree, Spatial};
use hris_traj::{Trajectory, TrajectoryArchive};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of network-free inference.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FreespaceParams {
    /// Reference search radius `φ`, metres.
    pub phi_m: f64,
    /// Splicing threshold `e`, metres.
    pub splice_eps_m: f64,
    /// Constrained-kNN fan-out per step (the `k₂` analogue).
    pub k: usize,
    /// Away-from-destination tolerance `α`, metres.
    pub alpha_m: f64,
    /// Detour-ratio tolerance `β`.
    pub beta: f64,
    /// Maximum enumerated walks per pair.
    pub max_paths: usize,
    /// A walk arriving within this distance of `q_{i+1}` counts as having
    /// reached the destination (the exact terminal point is rarely among
    /// the k nearest neighbours inside a dense cloud).
    pub arrival_radius_m: f64,
    /// Minimum step length of the walk, metres. The paper's reference
    /// points are minutes apart; our archives mix in high-rate trips whose
    /// points are tens of metres apart, and stepping through those one by
    /// one makes the recursion combinatorially explode. Skipping
    /// nearer-than-`min_step_m` candidates restores the paper's regime.
    pub min_step_m: f64,
    /// Assumed maximum travel speed (no network to supply `V_max`), m/s.
    pub v_max: f64,
}

impl Default for FreespaceParams {
    fn default() -> Self {
        FreespaceParams {
            phi_m: 500.0,
            splice_eps_m: 150.0,
            k: 4,
            alpha_m: 500.0,
            beta: 2.0,
            max_paths: 16,
            arrival_radius_m: 150.0,
            min_step_m: 120.0,
            v_max: 25.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CloudPoint {
    pos: Point,
    /// Reference index within the pair's reference set; `usize::MAX` marks
    /// the terminal.
    ref_idx: usize,
    id: usize,
}

impl Spatial for CloudPoint {
    fn bbox(&self) -> BBox {
        BBox::from_point(self.pos)
    }
}

/// Infers a free-space polyline route for `query` using only the archive.
///
/// Returns `None` for queries with fewer than 2 points. Pairs whose walks
/// fail fall back to the straight connector, so the result always spans the
/// whole query.
#[must_use]
pub fn infer_polyline(
    archive: &TrajectoryArchive,
    query: &Trajectory,
    params: &FreespaceParams,
) -> Option<Polyline> {
    if query.len() < 2 {
        return None;
    }
    let mut vertices: Vec<Point> = vec![query.points[0].pos];
    for w in query.points.windows(2) {
        let (qi, qj) = (w[0], w[1]);
        let dt = (qj.t - qi.t).max(1.0);
        let cfg = RefSearchConfig::new(params.phi_m, params.splice_eps_m);
        let refs = search_references(archive, qi.pos, qj.pos, dt, params.v_max, &cfg);
        let trace = best_walk(&refs, qi.pos, qj.pos, params);
        vertices.extend(trace);
        vertices.push(qj.pos);
    }
    // Collapse exact duplicates produced by empty traces.
    vertices.dedup_by(|a, b| a.dist(*b) < 1e-9);
    if vertices.len() < 2 {
        vertices.push(query.points.last()?.pos + Point::new(1e-6, 0.0));
    }
    Some(Polyline::new(vertices))
}

/// The constrained-kNN walk of Algorithm 2 in free space; returns the
/// intermediate trace points of the *best-supported* walk (may be empty,
/// meaning "go straight").
fn best_walk(
    refs: &crate::reference::ReferenceSet,
    qi: Point,
    qj: Point,
    params: &FreespaceParams,
) -> Vec<Point> {
    // Point cloud with provenance.
    let mut cloud: Vec<CloudPoint> = Vec::new();
    for (ri, r) in refs.refs.iter().enumerate() {
        for p in &r.points {
            cloud.push(CloudPoint {
                pos: p.pos,
                ref_idx: ri,
                id: cloud.len(),
            });
        }
    }
    let terminal = cloud.len();
    cloud.push(CloudPoint {
        pos: qj,
        ref_idx: usize::MAX,
        id: terminal,
    });
    let tree = RTree::bulk_load(cloud.clone());
    let d_qi_qj = qi.dist(qj);

    let expand = |from: Point| -> Vec<usize> {
        let d_c = from.dist(qj);
        let alpha_left = (params.alpha_m - (d_c - d_qi_qj).max(0.0)).max(0.0);
        let mut nn = Vec::new();
        for n in tree.nearest_iter(from, |p, q| p.pos.dist(q)) {
            if nn.len() >= params.k.max(1) {
                break;
            }
            let p = n.item;
            if p.id != terminal && p.pos.dist(from) < params.min_step_m {
                continue;
            }
            let d_p = p.pos.dist(qj);
            if d_p - alpha_left > d_c {
                continue;
            }
            if d_c > 1e-9 && (from.dist(p.pos) + d_p) / d_c > params.beta {
                continue;
            }
            if p.id == terminal {
                return vec![terminal];
            }
            nn.push(p.id);
        }
        // Destination-greedy ordering: explore the successor closest to
        // q_{i+1} first (the stack pops from the back, so sort descending).
        nn.sort_by(|&a, &b| cloud[b].pos.dist(qj).total_cmp(&cloud[a].pos.dist(qj)));
        nn
    };

    // DFS with memoised expansions (substructure sharing).
    let mut memo: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut paths: Vec<Vec<usize>> = Vec::new();
    let start = usize::MAX;
    let mut stack: Vec<(usize, Vec<usize>)> = vec![(start, Vec::new())];
    let mut budget = 2_000usize.max(cloud.len() * 4);
    while let Some((node, path)) = stack.pop() {
        if paths.len() >= params.max_paths.max(1) || budget == 0 {
            break;
        }
        budget -= 1;
        let pos = if node == start { qi } else { cloud[node].pos };
        // Arrival check: close enough to the destination ends the walk.
        if node != start && pos.dist(qj) <= params.arrival_radius_m {
            paths.push(path);
            continue;
        }
        let succs = if node != start {
            memo.entry(node).or_insert_with(|| expand(pos)).clone()
        } else {
            expand(pos)
        };
        for &next in &succs {
            if next == terminal {
                paths.push(path.clone());
                continue;
            }
            if path.contains(&next) {
                continue;
            }
            let mut np = path.clone();
            np.push(next);
            stack.push((next, np));
        }
    }

    if std::env::var("HRIS_FREESPACE_DEBUG").is_ok() {
        eprintln!(
            "cloud {} paths {} budget_left {} trace_lens {:?}",
            cloud.len() - 1,
            paths.len(),
            budget,
            paths.iter().map(Vec::len).take(6).collect::<Vec<_>>()
        );
    }
    // Pick the walk supported by the most distinct references (Observation
    // 2: complementary trajectories reinforcing one route); ties favour the
    // shorter trace.
    paths
        .into_iter()
        .max_by(|a, b| {
            let support = |p: &Vec<usize>| {
                let mut set = std::collections::HashSet::new();
                for &id in p {
                    set.insert(cloud[id].ref_idx);
                }
                set.len()
            };
            support(a).cmp(&support(b)).then(b.len().cmp(&a.len()))
        })
        .map(|p| p.into_iter().map(|id| cloud[id].pos).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hris_traj::{GpsPoint, TrajId};

    /// Archive of trajectories following an L-shaped corridor
    /// (0,0)→(1000,0)→(1000,1000), sampled sparsely at alternating phases.
    fn corridor_archive() -> TrajectoryArchive {
        let mut trips = Vec::new();
        for k in 0..8 {
            let offset = k as f64 * 37.0 % 250.0;
            let mut pts = Vec::new();
            let mut t = 0.0;
            // Along x.
            let mut d = offset;
            while d < 1000.0 {
                pts.push(GpsPoint::new(Point::new(d, (k % 3) as f64 * 8.0), t));
                t += 30.0;
                d += 250.0;
            }
            // Along y.
            let mut d = d - 1000.0;
            while d < 1000.0 {
                pts.push(GpsPoint::new(
                    Point::new(1000.0 - (k % 2) as f64 * 8.0, d),
                    t,
                ));
                t += 30.0;
                d += 250.0;
            }
            trips.push(Trajectory::new(TrajId(0), pts));
        }
        TrajectoryArchive::new(trips)
    }

    fn sparse_query() -> Trajectory {
        // Only the corners are observed, 5 minutes apart.
        Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(1000.0, 1000.0), 300.0),
            ],
        )
    }

    #[test]
    fn recovers_l_shape_from_history() {
        let archive = corridor_archive();
        let q = sparse_query();
        let inferred = infer_polyline(&archive, &q, &FreespaceParams::default()).unwrap();
        // The straight-line guess misses the corner by ~700 m; history
        // should pull the curve toward it.
        let corner = Point::new(1000.0, 0.0);
        let straight = Polyline::straight(q.points[0].pos, q.points[1].pos);
        assert!(straight.dist_to_point(corner) > 600.0);
        assert!(
            inferred.dist_to_point(corner) < 300.0,
            "corner missed by {:.0} m",
            inferred.dist_to_point(corner)
        );
        // Better overall deviation against the true corridor.
        let truth = Polyline::new(vec![
            Point::new(0.0, 0.0),
            corner,
            Point::new(1000.0, 1000.0),
        ]);
        let dev_inferred = hris_geo::mean_deviation(&truth, &inferred, 100);
        let dev_straight = hris_geo::mean_deviation(&truth, &straight, 100);
        assert!(
            dev_inferred < dev_straight * 0.7,
            "inferred {dev_inferred:.0} vs straight {dev_straight:.0}"
        );
    }

    #[test]
    fn empty_archive_degrades_to_straight_line() {
        let q = sparse_query();
        let inferred =
            infer_polyline(&TrajectoryArchive::empty(), &q, &FreespaceParams::default()).unwrap();
        // Only the two query points remain.
        assert_eq!(inferred.vertices().len(), 2);
    }

    #[test]
    fn degenerate_queries() {
        let archive = corridor_archive();
        let empty = Trajectory::new(TrajId(0), vec![]);
        assert!(infer_polyline(&archive, &empty, &FreespaceParams::default()).is_none());
        let single = Trajectory::new(TrajId(0), vec![GpsPoint::new(Point::new(1.0, 1.0), 0.0)]);
        assert!(infer_polyline(&archive, &single, &FreespaceParams::default()).is_none());
    }

    #[test]
    fn multi_pair_query_spans_all_points() {
        let archive = corridor_archive();
        let q = Trajectory::new(
            TrajId(0),
            vec![
                GpsPoint::new(Point::new(0.0, 0.0), 0.0),
                GpsPoint::new(Point::new(1000.0, 30.0), 150.0),
                GpsPoint::new(Point::new(1000.0, 1000.0), 300.0),
            ],
        );
        let inferred = infer_polyline(&archive, &q, &FreespaceParams::default()).unwrap();
        assert!(inferred.start().dist(q.points[0].pos) < 1e-6);
        assert!(inferred.end().dist(q.points[2].pos) < 1e-6);
        // Intermediate fix lies on the inferred curve.
        assert!(inferred.dist_to_point(q.points[1].pos) < 1e-6);
    }
}
