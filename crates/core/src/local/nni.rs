//! Nearest-Neighbor based Inference — Algorithm 2 of the paper.
//!
//! Starting from `q_i`, repeatedly transfer to up to `k₂` constrained
//! nearest reference points until `q_{i+1}` is reached. A candidate next
//! point `p` (seen from current point `c`) is admissible when:
//!
//! 1. it does not move away from the destination by more than the remaining
//!    tolerance `α` — `d(p, q_{i+1}) − α > d(c, q_{i+1})` rejects it
//!    (line 9); whenever we do move away, the deviation is deducted from
//!    `α` (line 20), so runs that keep heading backwards die out;
//! 2. it does not force a detour: `(d(c, p) + d(p, q_{i+1})) / d(c, q_{i+1})
//!    > β` rejects it (line 11).
//!
//! If `q_{i+1}` itself is admissible, it preempts all other candidates
//! (lines 13–16).
//!
//! **Sharing common substructures** (Figure 5): expanding a point means one
//! constrained-kNN search. With sharing enabled, expansions are memoised in
//! a *transit graph* so every point is searched at most once; without it,
//! every recursion-tree visit pays the search again (the paper's Figure 13b
//! ablation). Either way the set of enumerated `q_i → q_{i+1}` paths is the
//! same; each path's point trace is map-matched into a physical route.

use crate::local::{CandidateSoA, LocalStats};
use crate::params::HrisParams;
use crate::reference::ReferenceSet;
use hris_geo::{BBox, Point};
use hris_mapmatch::reconstruct_route;
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::{FxHashSet, RoadNetwork, Route};
use hris_rtree::{RTree, Spatial};

/// A reference point in the NNI point cloud.
#[derive(Debug, Clone, Copy)]
struct NniPoint {
    pos: Point,
    /// Index into the flat point list (the terminal gets the last index).
    id: usize,
}

impl Spatial for NniPoint {
    fn bbox(&self) -> BBox {
        BBox::from_point(self.pos)
    }
}

/// Runs NNI for one query pair. Returns candidate local routes and stats.
#[must_use]
pub fn nni(
    net: &RoadNetwork,
    refs: &ReferenceSet,
    qi_cands: &[CandidateEdge],
    qj_cands: &[CandidateEdge],
    params: &HrisParams,
) -> (Vec<Route>, LocalStats) {
    let mut stats = LocalStats {
        algorithm: "NNI",
        ..LocalStats::default()
    };
    let (Some(qi), Some(qj)) = (
        qi_cands.first().map(|c| c.closest),
        qj_cands.first().map(|c| c.closest),
    ) else {
        return (Vec::new(), stats);
    };

    // Flat point cloud: all reference points, then the terminal q_{i+1}.
    let mut cloud: Vec<Point> = refs
        .refs
        .iter()
        .flat_map(|r| r.points.iter().map(|p| p.pos))
        .collect();
    let terminal_id = cloud.len();
    cloud.push(qj);
    let tree = RTree::bulk_load(
        cloud
            .iter()
            .enumerate()
            .map(|(id, &pos)| NniPoint { pos, id })
            .collect(),
    );

    let d_qi_qj = qi.dist(qj);

    // Batch distance kernel: every admissibility test needs d(p, q_{i+1});
    // one linear SoA sweep precomputes them for the whole cloud instead of
    // re-deriving the same distance on every expansion that touches `p`.
    let soa = CandidateSoA::from_points(cloud.iter().copied());
    let d_to_qj: Vec<f64> = soa.dists_to(qj);

    // Expansion: constrained kNN of `from` (start node uses q_i itself).
    // α is *telescoped*: the remaining tolerance at a node depends only on
    // how much closer/further the node is than q_i, which makes expansions
    // node-local and therefore shareable across branches (the transit-graph
    // optimisation requires branch-independent expansions).
    let expand = |from: Point, searches: &mut usize| -> Vec<usize> {
        *searches += 1;
        let d_c = from.dist(qj);
        let alpha_left = (params.alpha_m - (d_c - d_qi_qj).max(0.0)).max(0.0);
        let mut nn = Vec::new();
        for n in tree.nearest_iter(from, |p, q| p.pos.dist(q)) {
            if nn.len() >= params.k2.max(1) {
                break;
            }
            let p = n.item;
            if p.pos.dist(from) < 1e-9 {
                continue; // the point itself (or a duplicate observation)
            }
            let d_p = d_to_qj[p.id];
            // Line 9: tolerated backward movement.
            if d_p - alpha_left > d_c {
                continue;
            }
            // Line 11: detour ratio.
            if d_c > 1e-9 && (from.dist(p.pos) + d_p) / d_c > params.beta {
                continue;
            }
            if p.id == terminal_id {
                // Lines 13–16: destination reached — it preempts everything.
                return vec![terminal_id];
            }
            nn.push(p.id);
        }
        nn
    };

    // DFS path enumeration with (optionally) memoised expansions. Node ids
    // are dense cloud indices, so the memo is a flat successor arena — spans
    // into one shared vector — instead of a hash map of cloned `Vec`s.
    let mut memo_spans: Vec<Option<(u32, u32)>> = vec![None; cloud.len()];
    let mut memo_flat: Vec<usize> = Vec::new();
    let mut paths: Vec<Vec<usize>> = Vec::new();
    // Start pseudo-node: usize::MAX denotes q_i.
    let start = usize::MAX;
    let mut stack: Vec<(usize, Vec<usize>)> = vec![(start, Vec::new())];
    // Bounded work: sparse clouds whose walks cannot reach the destination
    // would otherwise burn the whole recursion tree discovering nothing.
    let mut expansions_budget = 2_000usize.max(cloud.len() * 4);

    while let Some((node, path)) = stack.pop() {
        if paths.len() >= params.nni_max_paths.max(1) || expansions_budget == 0 {
            break;
        }
        let pos = if node == start { qi } else { cloud[node] };
        let fresh: Vec<usize>;
        let succs: &[usize] = if params.nni_share_substructures && node != start {
            let (lo, hi) = match memo_spans[node] {
                Some(span) => span,
                None => {
                    let s = expand(pos, &mut stats.knn_searches);
                    let lo = memo_flat.len() as u32;
                    memo_flat.extend_from_slice(&s);
                    let span = (lo, memo_flat.len() as u32);
                    memo_spans[node] = Some(span);
                    span
                }
            };
            &memo_flat[lo as usize..hi as usize]
        } else {
            fresh = expand(pos, &mut stats.knn_searches);
            &fresh
        };
        expansions_budget -= 1;
        for &next in succs {
            if next == terminal_id {
                paths.push(path.clone());
                continue;
            }
            if path.contains(&next) {
                continue; // loopless traces
            }
            let mut np = path.clone();
            np.push(next);
            stack.push((next, np));
        }
    }

    // Build physical routes from each dense trace. The trace points are
    // genuine on-road GPS observations spaced a couple hundred metres
    // apart, so nearest-candidate matching with shortest-path bridging
    // ("the map-matching techniques, whose accuracy is higher as there are
    // more intermediate points", Section III-B.2) recovers the route at a
    // fraction of a full probabilistic matcher's cost.
    let mut routes = Vec::new();
    let mut seen_matched: FxHashSet<Vec<hris_roadnet::SegmentId>> = FxHashSet::default();
    // Nearest-segment matching is a pure function of the (fixed) cloud
    // point, and distinct traces revisit the same points constantly —
    // memoise per cloud id, and match the shared endpoints exactly once.
    let qi_match = net.nearest_segment(qi);
    let mut nearest_memo: Vec<Option<Option<CandidateEdge>>> = vec![None; cloud.len()];
    for path in &paths {
        let mut matched: Vec<CandidateEdge> = Vec::with_capacity(path.len() + 2);
        if let Some(c) = qi_match {
            matched.push(c);
        }
        for &id in path.iter().chain(std::iter::once(&terminal_id)) {
            let c = *nearest_memo[id].get_or_insert_with(|| net.nearest_segment(cloud[id]));
            if let Some(c) = c {
                if matched.last().map(|m| m.segment) != Some(c.segment) {
                    matched.push(c);
                }
            }
        }
        if matched.is_empty() {
            continue;
        }
        // Distinct traces can collapse to the same matched-edge sequence;
        // reconstruct each sequence only once.
        if !seen_matched.insert(matched.iter().map(|m| m.segment).collect()) {
            continue;
        }
        routes.push(reconstruct_route(net, &matched));
    }
    (routes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{RefKind, RefTrajectory};
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{GpsPoint, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(4)
        })
    }

    fn corridor_refs(net: &RoadNetwork, count: u32, x_to: f64) -> ReferenceSet {
        let refs = (0..count)
            .map(|id| {
                let points = (0..10)
                    .map(|k| {
                        let x = x_to * (k as f64 + 0.5) / 10.0;
                        let snapped = net.nearest_segment(Point::new(x, 0.0)).unwrap().closest;
                        GpsPoint::new(snapped, k as f64 * 25.0)
                    })
                    .collect();
                RefTrajectory {
                    kind: RefKind::Simple,
                    sources: vec![TrajId(id)],
                    points,
                }
            })
            .collect();
        ReferenceSet { refs }
    }

    fn run(net: &RoadNetwork, params: &HrisParams) -> (Vec<Route>, LocalStats) {
        let refs = corridor_refs(net, 3, 800.0);
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(800.0, 0.0), 80.0);
        nni(net, &refs, &qi, &qj, params)
    }

    #[test]
    fn finds_route_along_corridor() {
        let net = net();
        let (routes, stats) = run(&net, &HrisParams::default());
        assert!(!routes.is_empty(), "NNI should reach the destination");
        assert!(stats.knn_searches > 0);
        for r in &routes {
            assert!(r.is_connected(&net));
        }
    }

    #[test]
    fn sharing_reduces_knn_searches() {
        let net = net();
        let shared = run(
            &net,
            &HrisParams {
                nni_share_substructures: true,
                ..HrisParams::default()
            },
        )
        .1;
        let plain = run(
            &net,
            &HrisParams {
                nni_share_substructures: false,
                ..HrisParams::default()
            },
        )
        .1;
        assert!(
            shared.knn_searches <= plain.knn_searches,
            "sharing must not increase searches ({} vs {})",
            shared.knn_searches,
            plain.knn_searches
        );
    }

    #[test]
    fn no_references_yields_no_routes() {
        let net = net();
        let refs = ReferenceSet::default();
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(5000.0, 5000.0), 80.0);
        let (routes, _) = nni(&net, &refs, &qi, &qj, &HrisParams::default());
        // Only the terminal is in the cloud; it is too far for β from q_i.
        assert!(routes.is_empty());
    }

    #[test]
    fn adjacent_points_connect_directly() {
        let net = net();
        // q_i and q_j one block apart with no references: the terminal
        // itself is an admissible nearest neighbour → direct route.
        let refs = ReferenceSet::default();
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(200.0, 0.0), 80.0);
        let (routes, _) = nni(&net, &refs, &qi, &qj, &HrisParams::default());
        assert!(!routes.is_empty());
    }

    #[test]
    fn empty_candidates_handled() {
        let net = net();
        let refs = corridor_refs(&net, 2, 500.0);
        let (routes, _) = nni(&net, &refs, &[], &[], &HrisParams::default());
        assert!(routes.is_empty());
    }

    #[test]
    fn beta_one_forbids_detours() {
        let net = net();
        // β = 1.0 admits only points exactly on the straight line; the grid
        // corridor deviates, so expect far fewer (possibly zero) routes.
        let strict = run(
            &net,
            &HrisParams {
                beta: 1.0001,
                ..HrisParams::default()
            },
        )
        .0;
        let loose = run(
            &net,
            &HrisParams {
                beta: 2.0,
                ..HrisParams::default()
            },
        )
        .0;
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn paths_are_capped() {
        let net = net();
        let (routes, _) = run(
            &net,
            &HrisParams {
                nni_max_paths: 2,
                ..HrisParams::default()
            },
        );
        assert!(routes.len() <= 2);
    }
}
