//! Traverse-Graph based Inference — Algorithm 1 of the paper.
//!
//! Nodes of the *traverse graph* are the road segments covered by some
//! reference (plus the query points' candidate edges, which serve as KSP
//! endpoints). A directed link `r → s` exists when `s` lies in `r`'s
//! λ-neighborhood (reachable in fewer than λ segment transitions,
//! Definition 8), weighted by the driving distance accumulated along the
//! hop path.
//!
//! Two subroutines make the algorithm practical:
//! - **Graph augmentation**: when the traverse graph is not strongly
//!   connected (sparse references, small λ), the closest node pairs across
//!   components are linked in both directions until it is — the `k = 1`
//!   connectivity-augmentation special case the paper reduces to a spanning
//!   construction.
//! - **Graph reduction**: a link `u → w` is transitively redundant when some
//!   intermediate `v` satisfies `h(u, w) = h(u, v) + h(v, w)`; removing
//!   redundant links keeps Yen's K-shortest-path search fast (Figure 11b).

use crate::local::{LocalStats, RefEdgeIndex};
use crate::params::HrisParams;
use hris_geo::Point;
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::{CostModel, CsrView, DiGraph, DijkstraScratch, RoadNetwork, Route, SegmentId};

/// Runs TGI for one query pair. Returns candidate local routes and stats.
#[must_use]
pub fn tgi(
    net: &RoadNetwork,
    edge_index: &RefEdgeIndex,
    qi_cands: &[CandidateEdge],
    qj_cands: &[CandidateEdge],
    params: &HrisParams,
) -> (Vec<Route>, LocalStats) {
    let mut stats = LocalStats {
        algorithm: "TGI",
        ..LocalStats::default()
    };

    // --- node set: traverse edges + query candidate edges ----------------
    // Dense interning table indexed by segment id: the per-pair graph is
    // tiny but this map is probed once per λ-neighborhood hit, so a flat
    // array beats any hash map.
    let mut node_of: Vec<u32> = vec![u32::MAX; net.num_segments()];
    // One bit per segment mirroring `node_of` occupancy: the λ scan below
    // probes membership for every neighborhood entry, and the bitmask keeps
    // those probes inside a few cache lines where the full u32 table would
    // miss to L2 on nearly every lookup.
    let mut in_set: Vec<u64> = vec![0; net.num_segments().div_ceil(64)];
    let mut segs: Vec<SegmentId> = Vec::new();
    let mut intern = |seg: SegmentId, segs: &mut Vec<SegmentId>| -> usize {
        let slot = &mut node_of[seg.index()];
        if *slot == u32::MAX {
            segs.push(seg);
            *slot = (segs.len() - 1) as u32;
            in_set[seg.index() >> 6] |= 1 << (seg.index() & 63);
        }
        *slot as usize
    };
    for &seg in edge_index.traverse_edges() {
        intern(seg, &mut segs);
    }
    let qi_nodes: Vec<usize> = qi_cands
        .iter()
        .take(params.max_query_candidates)
        .map(|c| intern(c.segment, &mut segs))
        .collect();
    let qj_nodes: Vec<usize> = qj_cands
        .iter()
        .take(params.max_query_candidates)
        .map(|c| intern(c.segment, &mut segs))
        .collect();
    stats.traverse_nodes = segs.len();
    if segs.is_empty() {
        return (Vec::new(), stats);
    }

    // --- links: λ-neighborhood hop search ---------------------------------
    // Flat link list sorted by (u, v). Each λ-neighborhood lists a target
    // segment at most once, so every (u, v) pair is produced at most once
    // and the list needs no dedup — only a per-source sort by target (the
    // outer loop already emits sources in ascending order). The weight is
    // the driving distance along the hop path, discounted by the coverage
    // of the target segment (γ = `tgi_popularity_weight`; 0 restores pure
    // distance).
    let gamma = params.tgi_popularity_weight.max(0.0);
    let mut edges = EdgeList::default();
    for (u, &seg_u) in segs.iter().enumerate() {
        // The λ-neighborhood only depends on the immutable network, so the
        // hop search is answered by the network-level memo shared across
        // pairs and queries.
        let start = edges.links.len();
        let soa = net.lambda_neighborhood_soa(seg_u, params.lambda);
        for (k, &seg_v) in soa.segs.iter().enumerate() {
            let i = seg_v.index();
            if in_set[i >> 6] & (1 << (i & 63)) != 0 {
                let weight =
                    soa.dists[k] * (1.0 + gamma / (1.0 + edge_index.covering_count(seg_v) as f64));
                edges.links.push(Link {
                    u: u as u32,
                    v: node_of[i],
                    hops: soa.hops[k] as usize,
                    weight,
                });
            }
        }
        edges.links[start..].sort_unstable_by_key(|l| l.v);
    }
    stats.traverse_edges_initial = edges.links.len();

    // --- augmentation: force strong connectivity --------------------------
    // Centroids go into a flat structure-of-arrays once (the arc-length
    // walk per segment geometry is the expensive part); the O(n²)
    // closest-pair scan then reads contiguous coordinates. Comparisons keep
    // the exact `Point::dist` values the per-comparison closure produced,
    // so tie-breaks are unchanged. Built lazily: the common strongly
    // connected case never needs them.
    let mut centroids: Option<CentroidSoA> = None;
    loop {
        let g = build_digraph(segs.len(), &edges);
        let comp = g.tarjan_scc();
        let num_comps = comp.iter().copied().max().map_or(0, |m| m + 1);
        if num_comps <= 1 {
            break;
        }
        let cents = centroids.get_or_insert_with(|| CentroidSoA::build(net, &segs));
        // Closest pair of nodes in different components.
        let mut best: Option<(usize, usize, f64)> = None;
        for u in 0..segs.len() {
            for v in (u + 1)..segs.len() {
                if comp[u] == comp[v] {
                    continue;
                }
                let d = cents.dist(u, v);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((u, v, d));
                }
            }
        }
        let Some((u, v, d)) = best else { break };
        // Two links, one per direction (paper's augmentation step). Large
        // hop count keeps them out of the reduction rule; the weight takes
        // the maximum (zero-coverage) popularity discount so augmentation
        // shortcuts never outcompete genuinely covered chains.
        let w = d * (1.0 + gamma);
        edges.insert_if_absent(u as u32, v as u32, usize::MAX / 4, w);
        edges.insert_if_absent(v as u32, u as u32, usize::MAX / 4, w);
        stats.augmentation_links += 2;
    }

    // --- reduction: drop transitively redundant links ---------------------
    if params.tgi_use_reduction {
        // A link is removed iff *some* intermediate decomposes it — the
        // removal set does not depend on scan order, so walking the sorted
        // list gives the same survivors as the old hash-map iteration.
        // Out-neighborhoods are contiguous runs of the sorted list; one
        // offsets pass makes every run lookup O(1).
        let mut starts = vec![0u32; segs.len() + 1];
        {
            let mut u = 0usize;
            for (i, l) in edges.links.iter().enumerate() {
                while u <= l.u as usize {
                    starts[u] = i as u32;
                    u += 1;
                }
            }
            while u <= segs.len() {
                starts[u] = edges.links.len() as u32;
                u += 1;
            }
        }
        let run = |u: u32| starts[u as usize] as usize..starts[u as usize + 1] as usize;
        // In-links `(source, hops)` grouped by target via counting sort;
        // within each target the sources come out ascending because the
        // link list itself is sorted by source. A link u → w decomposes
        // through v iff v appears in both u's out-run and w's in-run, so
        // the existence test is a merge walk over two sorted runs instead
        // of a binary search per out-neighbor.
        let mut in_starts = vec![0u32; segs.len() + 1];
        for l in &edges.links {
            in_starts[l.v as usize + 1] += 1;
        }
        for i in 0..segs.len() {
            in_starts[i + 1] += in_starts[i];
        }
        let mut cursor = in_starts.clone();
        let mut in_links: Vec<(u32, u32)> = vec![(0, 0); edges.links.len()];
        for l in &edges.links {
            let c = &mut cursor[l.v as usize];
            in_links[*c as usize] = (l.u, l.hops as u32);
            *c += 1;
        }
        let in_run = |w: u32| in_starts[w as usize] as usize..in_starts[w as usize + 1] as usize;
        let mut keep = vec![true; edges.links.len()];
        for (idx, l) in edges.links.iter().enumerate() {
            let (u, w, h_uw) = (l.u, l.v, l.hops);
            // A link of hop distance 1 can never decompose into two links
            // of hop distance ≥ 1 each — skip the bulk of the graph cheaply.
            if h_uw < 2 {
                continue;
            }
            let outs = &edges.links[run(u)];
            let ins = &in_links[in_run(w)];
            let (mut a, mut b) = (0usize, 0usize);
            while a < outs.len() && b < ins.len() {
                match outs[a].v.cmp(&ins[b].0) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let v = outs[a].v;
                        let h_uv = outs[a].hops;
                        if v != w
                            && v != u
                            && h_uv < h_uw
                            && h_uv.saturating_add(ins[b].1 as usize) == h_uw
                        {
                            keep[idx] = false;
                            break;
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        let mut idx = 0;
        edges.links.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
    stats.traverse_edges_final = edges.links.len();

    // --- K shortest paths between every endpoint pair ---------------------
    // The sorted link list IS the CSR: snapshot it directly (no intermediate
    // adjacency lists) and share one view + scratch across every endpoint
    // pair's Yen run.
    let csr =
        CsrView::from_sorted_edges(segs.len(), edges.links.iter().map(|l| (l.u, l.v, l.weight)));
    let mut scratch = DijkstraScratch::for_nodes(segs.len());
    let mut routes = Vec::new();
    for &src in &qi_nodes {
        for &dst in &qj_nodes {
            for path in csr.k_shortest_paths_with(&mut scratch, src, dst, params.k1) {
                if let Some(route) = project_path(net, &segs, &path.nodes) {
                    routes.push(route);
                }
            }
        }
    }
    (routes, stats)
}

/// Traverse-node centroids in structure-of-arrays layout: the arc-length
/// midpoint walk per geometry happens once per node, and the closest-pair
/// scan reads two flat coordinate arrays.
struct CentroidSoA {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl CentroidSoA {
    fn build(net: &RoadNetwork, segs: &[SegmentId]) -> Self {
        let mut xs = Vec::with_capacity(segs.len());
        let mut ys = Vec::with_capacity(segs.len());
        for &seg in segs {
            let g = &net.segment(seg).geometry;
            let c = g.point_at(g.length() / 2.0);
            xs.push(c.x);
            ys.push(c.y);
        }
        CentroidSoA { xs, ys }
    }

    /// `Point::dist` of two centroids — same operations, same rounding,
    /// same tie behaviour as computing the points on the fly.
    #[inline]
    fn dist(&self, u: usize, v: usize) -> f64 {
        Point::new(self.xs[u], self.ys[u]).dist(Point::new(self.xs[v], self.ys[v]))
    }
}

/// One traverse-graph link `u → v` with its hop distance and weight.
struct Link {
    u: u32,
    v: u32,
    hops: usize,
    weight: f64,
}

/// Traverse-graph links kept sorted by `(u, v)` — out-neighborhoods are
/// contiguous runs, membership is a binary search, and the digraph builds
/// without re-sorting.
#[derive(Default)]
struct EdgeList {
    links: Vec<Link>,
}

impl EdgeList {
    /// Inserts `u → v` unless the link already exists (augmentation step).
    fn insert_if_absent(&mut self, u: u32, v: u32, hops: usize, weight: f64) {
        if let Err(pos) = self.links.binary_search_by(|l| (l.u, l.v).cmp(&(u, v))) {
            self.links.insert(pos, Link { u, v, hops, weight });
        }
    }
}

fn build_digraph(n: usize, edges: &EdgeList) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    // Links are sorted by (u, v), so the insertion order — and hence Yen's
    // tie-breaking — matches the old sorted-map construction exactly.
    for l in &edges.links {
        g.add_edge(l.u as usize, l.v as usize, l.weight.max(0.0));
    }
    g
}

/// Projects a traverse-graph path (sequence of segments) to a physical
/// route by bridging consecutive segments with network shortest paths
/// (Algorithm 1, line 14).
fn project_path(net: &RoadNetwork, segs: &[SegmentId], nodes: &[usize]) -> Option<Route> {
    let mut route = Route::new(vec![segs[*nodes.first()?]]);
    for w in nodes.windows(2) {
        let prev = *route.segments().last().expect("non-empty");
        let next = segs[w[1]];
        if prev == next {
            continue;
        }
        let bridge = net
            .sp_oracle()
            .route_between(prev, next, CostModel::Distance)?;
        for &s in &bridge.segments()[1..] {
            route.push(s);
        }
    }
    Some(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{RefKind, RefTrajectory, ReferenceSet};
    use hris_geo::Point;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{GpsPoint, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(2)
        })
    }

    /// References along the y = 0 corridor from x=0 to x=1000.
    fn corridor_refs(net: &RoadNetwork, count: u32) -> ReferenceSet {
        let refs = (0..count)
            .map(|id| {
                let points = (0..12)
                    .map(|k| {
                        let x = 1000.0 * k as f64 / 11.0;
                        let snapped = net.nearest_segment(Point::new(x, 0.0)).unwrap().closest;
                        GpsPoint::new(snapped, k as f64 * 20.0)
                    })
                    .collect();
                RefTrajectory {
                    kind: RefKind::Simple,
                    sources: vec![TrajId(id)],
                    points,
                }
            })
            .collect();
        ReferenceSet { refs }
    }

    fn run(net: &RoadNetwork, params: &HrisParams) -> (Vec<Route>, LocalStats) {
        let refs = corridor_refs(net, 3);
        let idx = RefEdgeIndex::build(net, &refs, params.candidate_eps_m);
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(1000.0, 0.0), 80.0);
        assert!(!qi.is_empty() && !qj.is_empty());
        tgi(net, &idx, &qi, &qj, params)
    }

    #[test]
    fn produces_connected_routes_along_corridor() {
        let net = net();
        let (routes, stats) = run(&net, &HrisParams::default());
        assert!(!routes.is_empty());
        assert!(stats.traverse_nodes > 0);
        for r in &routes {
            assert!(r.is_connected(&net));
        }
        // The best route should track the corridor: its polyline must stay
        // near y = 0 at the midpoint.
        let best = &routes[0];
        let pl = best.polyline(&net).unwrap();
        let mid = pl.point_at(pl.length() / 2.0);
        assert!(mid.y.abs() < 450.0, "mid {mid}");
    }

    #[test]
    fn reduction_removes_edges() {
        let net = net();
        let with = run(
            &net,
            &HrisParams {
                tgi_use_reduction: true,
                lambda: 5,
                ..HrisParams::default()
            },
        )
        .1;
        let without = run(
            &net,
            &HrisParams {
                tgi_use_reduction: false,
                lambda: 5,
                ..HrisParams::default()
            },
        )
        .1;
        assert_eq!(with.traverse_edges_initial, without.traverse_edges_initial);
        assert!(with.traverse_edges_final < with.traverse_edges_initial);
        assert_eq!(without.traverse_edges_final, without.traverse_edges_initial);
    }

    #[test]
    fn reduction_preserves_routes_existence() {
        let net = net();
        let (with, _) = run(&net, &HrisParams::default());
        let (without, _) = run(
            &net,
            &HrisParams {
                tgi_use_reduction: false,
                ..HrisParams::default()
            },
        );
        assert!(!with.is_empty());
        assert!(!without.is_empty());
    }

    #[test]
    fn no_references_yields_empty() {
        let net = net();
        let idx = RefEdgeIndex::default();
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(1000.0, 0.0), 80.0);
        let (routes, stats) = tgi(&net, &idx, &qi, &qj, &HrisParams::default());
        // Only the query candidates are in the graph; augmentation links
        // them, so a route may still emerge — but with zero references the
        // caller (pipeline) falls back before calling TGI. Here we only
        // assert it does not panic and stats are consistent.
        assert!(stats.traverse_nodes >= 1);
        for r in &routes {
            assert!(r.is_connected(&net));
        }
    }

    #[test]
    fn lambda_neighborhood_dist_monotone_in_lambda() {
        let net = net();
        let seg = net.segments()[10].id;
        let n2 = net.lambda_neighborhood_with_dist(seg, 2);
        let n4 = net.lambda_neighborhood_with_dist(seg, 4);
        assert!(n4.len() > n2.len());
        for (s, h, d) in &n2 {
            assert!(*h == 1);
            assert!(*d > 0.0);
            assert!(n4.iter().any(|(s4, _, _)| s4 == s));
        }
    }

    #[test]
    fn augmentation_links_disconnected_components() {
        let net = net();
        // Two far-apart references with tiny λ produce a disconnected
        // traverse graph → augmentation must kick in.
        let mk = |x0: f64, id: u32| {
            let points = (0..4)
                .map(|k| {
                    let snapped = net
                        .nearest_segment(Point::new(x0 + k as f64 * 30.0, 0.0))
                        .unwrap()
                        .closest;
                    GpsPoint::new(snapped, k as f64 * 10.0)
                })
                .collect();
            RefTrajectory {
                kind: RefKind::Simple,
                sources: vec![TrajId(id)],
                points,
            }
        };
        let refs = ReferenceSet {
            refs: vec![mk(0.0, 0), mk(1200.0, 1)],
        };
        let params = HrisParams {
            lambda: 2,
            ..HrisParams::default()
        };
        let idx = RefEdgeIndex::build(&net, &refs, params.candidate_eps_m);
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(1300.0, 0.0), 80.0);
        let (_, stats) = tgi(&net, &idx, &qi, &qj, &params);
        assert!(stats.augmentation_links > 0);
    }
}
