//! Traverse-Graph based Inference — Algorithm 1 of the paper.
//!
//! Nodes of the *traverse graph* are the road segments covered by some
//! reference (plus the query points' candidate edges, which serve as KSP
//! endpoints). A directed link `r → s` exists when `s` lies in `r`'s
//! λ-neighborhood (reachable in fewer than λ segment transitions,
//! Definition 8), weighted by the driving distance accumulated along the
//! hop path.
//!
//! Two subroutines make the algorithm practical:
//! - **Graph augmentation**: when the traverse graph is not strongly
//!   connected (sparse references, small λ), the closest node pairs across
//!   components are linked in both directions until it is — the `k = 1`
//!   connectivity-augmentation special case the paper reduces to a spanning
//!   construction.
//! - **Graph reduction**: a link `u → w` is transitively redundant when some
//!   intermediate `v` satisfies `h(u, w) = h(u, v) + h(v, w)`; removing
//!   redundant links keeps Yen's K-shortest-path search fast (Figure 11b).

use crate::local::{LocalStats, RefEdgeIndex};
use crate::params::HrisParams;
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::shortest::route_between_segments;
use hris_roadnet::{CostModel, DiGraph, RoadNetwork, Route, SegmentId};
use std::collections::{HashMap, VecDeque};

/// Runs TGI for one query pair. Returns candidate local routes and stats.
#[must_use]
pub fn tgi(
    net: &RoadNetwork,
    edge_index: &RefEdgeIndex,
    qi_cands: &[CandidateEdge],
    qj_cands: &[CandidateEdge],
    params: &HrisParams,
) -> (Vec<Route>, LocalStats) {
    let mut stats = LocalStats {
        algorithm: "TGI",
        ..LocalStats::default()
    };

    // --- node set: traverse edges + query candidate edges ----------------
    let mut node_of: HashMap<SegmentId, usize> = HashMap::new();
    let mut segs: Vec<SegmentId> = Vec::new();
    let mut intern = |seg: SegmentId, segs: &mut Vec<SegmentId>| -> usize {
        *node_of.entry(seg).or_insert_with(|| {
            segs.push(seg);
            segs.len() - 1
        })
    };
    for seg in edge_index.traverse_edges() {
        intern(seg, &mut segs);
    }
    let qi_nodes: Vec<usize> = qi_cands
        .iter()
        .take(params.max_query_candidates)
        .map(|c| intern(c.segment, &mut segs))
        .collect();
    let qj_nodes: Vec<usize> = qj_cands
        .iter()
        .take(params.max_query_candidates)
        .map(|c| intern(c.segment, &mut segs))
        .collect();
    stats.traverse_nodes = segs.len();
    if segs.is_empty() {
        return (Vec::new(), stats);
    }

    // --- links: λ-neighborhood hop search ---------------------------------
    // edges[(u, v)] = (hops, weight). The weight is the driving distance
    // along the hop path, discounted by the coverage of the target segment
    // (γ = `tgi_popularity_weight`; 0 restores pure distance).
    let gamma = params.tgi_popularity_weight.max(0.0);
    let coverage = |seg: SegmentId| -> usize {
        edge_index
            .refs_on(seg)
            .map_or(0, std::collections::HashSet::len)
    };
    let mut edges: LinkMap = HashMap::new();
    for (u, &seg_u) in segs.iter().enumerate() {
        for (seg_v, hops, dist) in lambda_neighborhood_with_dist(net, seg_u, params.lambda) {
            if let Some(&v) = node_of.get(&seg_v) {
                let weight = dist * (1.0 + gamma / (1.0 + coverage(seg_v) as f64));
                let e = edges.entry((u, v)).or_insert((hops, weight));
                if weight < e.1 {
                    *e = (hops, weight);
                }
            }
        }
    }
    stats.traverse_edges_initial = edges.len();

    // --- augmentation: force strong connectivity --------------------------
    let centroid = |seg: SegmentId| {
        let g = &net.segment(seg).geometry;
        g.point_at(g.length() / 2.0)
    };
    loop {
        let g = build_digraph(segs.len(), &edges);
        let comp = g.tarjan_scc();
        let num_comps = comp.iter().copied().max().map_or(0, |m| m + 1);
        if num_comps <= 1 {
            break;
        }
        // Closest pair of nodes in different components.
        let mut best: Option<(usize, usize, f64)> = None;
        for u in 0..segs.len() {
            for v in (u + 1)..segs.len() {
                if comp[u] == comp[v] {
                    continue;
                }
                let d = centroid(segs[u]).dist(centroid(segs[v]));
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((u, v, d));
                }
            }
        }
        let Some((u, v, d)) = best else { break };
        // Two links, one per direction (paper's augmentation step). Large
        // hop count keeps them out of the reduction rule; the weight takes
        // the maximum (zero-coverage) popularity discount so augmentation
        // shortcuts never outcompete genuinely covered chains.
        let w = d * (1.0 + gamma);
        edges.entry((u, v)).or_insert((usize::MAX / 4, w));
        edges.entry((v, u)).or_insert((usize::MAX / 4, w));
        stats.augmentation_links += 2;
    }

    // --- reduction: drop transitively redundant links ---------------------
    if params.tgi_use_reduction {
        // Adjacency for the membership tests.
        let mut out_adj: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(u, v) in edges.keys() {
            out_adj.entry(u).or_default().push(v);
        }
        let mut to_remove = Vec::new();
        for (&(u, w), &(h_uw, _)) in &edges {
            // A link of hop distance 1 can never decompose into two links
            // of hop distance ≥ 1 each — skip the bulk of the graph cheaply.
            if h_uw < 2 {
                continue;
            }
            let Some(vs) = out_adj.get(&u) else { continue };
            for &v in vs {
                if v == w || v == u {
                    continue;
                }
                if let (Some(&(h_uv, _)), Some(&(h_vw, _))) =
                    (edges.get(&(u, v)), edges.get(&(v, w)))
                {
                    if h_uv < h_uw && h_uv.saturating_add(h_vw) == h_uw {
                        to_remove.push((u, w));
                        break;
                    }
                }
            }
        }
        for k in to_remove {
            edges.remove(&k);
        }
    }
    stats.traverse_edges_final = edges.len();

    // --- K shortest paths between every endpoint pair ---------------------
    let g = build_digraph(segs.len(), &edges);
    let mut routes = Vec::new();
    for &src in &qi_nodes {
        for &dst in &qj_nodes {
            for path in g.k_shortest_paths(src, dst, params.k1) {
                if let Some(route) = project_path(net, &segs, &path.nodes) {
                    routes.push(route);
                }
            }
        }
    }
    (routes, stats)
}

/// λ-neighborhood of `seg` with per-target hop count and accumulated driving
/// distance along the (shortest-hop) chain. Excludes `seg` itself.
fn lambda_neighborhood_with_dist(
    net: &RoadNetwork,
    seg: SegmentId,
    lambda: usize,
) -> Vec<(SegmentId, usize, f64)> {
    let mut out = Vec::new();
    if lambda <= 1 {
        return out;
    }
    let mut best: HashMap<SegmentId, f64> = HashMap::new();
    best.insert(seg, 0.0);
    let mut queue: VecDeque<(SegmentId, usize, f64)> = VecDeque::new();
    queue.push_back((seg, 0, 0.0));
    while let Some((cur, h, d)) = queue.pop_front() {
        if h + 1 >= lambda {
            continue;
        }
        for &next in net.next_segments(cur) {
            let nd = d + net.segment(next).length;
            if best.get(&next).is_none_or(|&b| nd < b) {
                let first_visit = !best.contains_key(&next);
                best.insert(next, nd);
                if first_visit {
                    out.push((next, h + 1, nd));
                    queue.push_back((next, h + 1, nd));
                } else {
                    // Improve the recorded distance in place.
                    if let Some(e) = out.iter_mut().find(|e| e.0 == next) {
                        e.2 = nd;
                    }
                }
            }
        }
    }
    out
}

/// Traverse-graph link map: `(u, v) → (hop distance, weight)`.
type LinkMap = HashMap<(usize, usize), (usize, f64)>;

fn build_digraph(n: usize, edges: &LinkMap) -> DiGraph {
    let mut g = DiGraph::with_nodes(n);
    // Deterministic edge order for reproducible Yen tie-breaking.
    let mut sorted: Vec<_> = edges.iter().collect();
    sorted.sort_by_key(|(&(u, v), _)| (u, v));
    for (&(u, v), &(_, d)) in sorted {
        g.add_edge(u, v, d.max(0.0));
    }
    g
}

/// Projects a traverse-graph path (sequence of segments) to a physical
/// route by bridging consecutive segments with network shortest paths
/// (Algorithm 1, line 14).
fn project_path(net: &RoadNetwork, segs: &[SegmentId], nodes: &[usize]) -> Option<Route> {
    let mut route = Route::new(vec![segs[*nodes.first()?]]);
    for w in nodes.windows(2) {
        let prev = *route.segments().last().expect("non-empty");
        let next = segs[w[1]];
        if prev == next {
            continue;
        }
        let bridge = route_between_segments(net, prev, next, CostModel::Distance)?;
        for &s in &bridge.segments()[1..] {
            route.push(s);
        }
    }
    Some(route)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{RefKind, RefTrajectory, ReferenceSet};
    use hris_geo::Point;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{GpsPoint, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(2)
        })
    }

    /// References along the y = 0 corridor from x=0 to x=1000.
    fn corridor_refs(net: &RoadNetwork, count: u32) -> ReferenceSet {
        let refs = (0..count)
            .map(|id| {
                let points = (0..12)
                    .map(|k| {
                        let x = 1000.0 * k as f64 / 11.0;
                        let snapped = net.nearest_segment(Point::new(x, 0.0)).unwrap().closest;
                        GpsPoint::new(snapped, k as f64 * 20.0)
                    })
                    .collect();
                RefTrajectory {
                    kind: RefKind::Simple,
                    sources: vec![TrajId(id)],
                    points,
                }
            })
            .collect();
        ReferenceSet { refs }
    }

    fn run(net: &RoadNetwork, params: &HrisParams) -> (Vec<Route>, LocalStats) {
        let refs = corridor_refs(net, 3);
        let idx = RefEdgeIndex::build(net, &refs, params.candidate_eps_m);
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(1000.0, 0.0), 80.0);
        assert!(!qi.is_empty() && !qj.is_empty());
        tgi(net, &idx, &qi, &qj, params)
    }

    #[test]
    fn produces_connected_routes_along_corridor() {
        let net = net();
        let (routes, stats) = run(&net, &HrisParams::default());
        assert!(!routes.is_empty());
        assert!(stats.traverse_nodes > 0);
        for r in &routes {
            assert!(r.is_connected(&net));
        }
        // The best route should track the corridor: its polyline must stay
        // near y = 0 at the midpoint.
        let best = &routes[0];
        let pl = best.polyline(&net).unwrap();
        let mid = pl.point_at(pl.length() / 2.0);
        assert!(mid.y.abs() < 450.0, "mid {mid}");
    }

    #[test]
    fn reduction_removes_edges() {
        let net = net();
        let with = run(
            &net,
            &HrisParams {
                tgi_use_reduction: true,
                lambda: 5,
                ..HrisParams::default()
            },
        )
        .1;
        let without = run(
            &net,
            &HrisParams {
                tgi_use_reduction: false,
                lambda: 5,
                ..HrisParams::default()
            },
        )
        .1;
        assert_eq!(with.traverse_edges_initial, without.traverse_edges_initial);
        assert!(with.traverse_edges_final < with.traverse_edges_initial);
        assert_eq!(without.traverse_edges_final, without.traverse_edges_initial);
    }

    #[test]
    fn reduction_preserves_routes_existence() {
        let net = net();
        let (with, _) = run(&net, &HrisParams::default());
        let (without, _) = run(
            &net,
            &HrisParams {
                tgi_use_reduction: false,
                ..HrisParams::default()
            },
        );
        assert!(!with.is_empty());
        assert!(!without.is_empty());
    }

    #[test]
    fn no_references_yields_empty() {
        let net = net();
        let idx = RefEdgeIndex::default();
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(1000.0, 0.0), 80.0);
        let (routes, stats) = tgi(&net, &idx, &qi, &qj, &HrisParams::default());
        // Only the query candidates are in the graph; augmentation links
        // them, so a route may still emerge — but with zero references the
        // caller (pipeline) falls back before calling TGI. Here we only
        // assert it does not panic and stats are consistent.
        assert!(stats.traverse_nodes >= 1);
        for r in &routes {
            assert!(r.is_connected(&net));
        }
    }

    #[test]
    fn lambda_neighborhood_dist_monotone_in_lambda() {
        let net = net();
        let seg = net.segments()[10].id;
        let n2 = lambda_neighborhood_with_dist(&net, seg, 2);
        let n4 = lambda_neighborhood_with_dist(&net, seg, 4);
        assert!(n4.len() > n2.len());
        for (s, h, d) in &n2 {
            assert!(*h == 1);
            assert!(*d > 0.0);
            assert!(n4.iter().any(|(s4, _, _)| s4 == s));
        }
    }

    #[test]
    fn augmentation_links_disconnected_components() {
        let net = net();
        // Two far-apart references with tiny λ produce a disconnected
        // traverse graph → augmentation must kick in.
        let mk = |x0: f64, id: u32| {
            let points = (0..4)
                .map(|k| {
                    let snapped = net
                        .nearest_segment(Point::new(x0 + k as f64 * 30.0, 0.0))
                        .unwrap()
                        .closest;
                    GpsPoint::new(snapped, k as f64 * 10.0)
                })
                .collect();
            RefTrajectory {
                kind: RefKind::Simple,
                sources: vec![TrajId(id)],
                points,
            }
        };
        let refs = ReferenceSet {
            refs: vec![mk(0.0, 0), mk(1200.0, 1)],
        };
        let params = HrisParams {
            lambda: 2,
            ..HrisParams::default()
        };
        let idx = RefEdgeIndex::build(&net, &refs, params.candidate_eps_m);
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(1300.0, 0.0), 80.0);
        let (_, stats) = tgi(&net, &idx, &qi, &qj, &params);
        assert!(stats.augmentation_links > 0);
    }
}
