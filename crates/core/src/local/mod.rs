//! Local route inference (Section III-B): given the references `C_i` of a
//! query pair, infer the candidate local routes `ℛ_i`.
//!
//! Two algorithms — [`tgi`](crate::local::tgi::tgi) (traverse graph,
//! Algorithm 1) and [`nni`](crate::local::nni::nni) (constrained nearest
//! neighbours, Algorithm 2) — plus the density-switched hybrid
//! ([`infer_local_routes`]).

pub mod nni;
pub mod tgi;

use crate::params::{HrisParams, HybridPolarity, LocalAlgorithm};
use crate::reference::ReferenceSet;
use hris_roadnet::network::CandidateEdge;
use hris_roadnet::{RoadNetwork, Route, SegmentId};
use std::collections::{HashMap, HashSet};

/// Per-pair instrumentation (drives the ablation figures 11b–13b).
#[derive(Debug, Clone, Default)]
pub struct LocalStats {
    /// Which algorithm actually ran ("TGI" / "NNI").
    pub algorithm: &'static str,
    /// Constrained-kNN searches performed (NNI; Figure 5's cost measure).
    pub knn_searches: usize,
    /// Traverse-graph node count (TGI).
    pub traverse_nodes: usize,
    /// Traverse-graph links before reduction (TGI).
    pub traverse_edges_initial: usize,
    /// Traverse-graph links after reduction (TGI; equal to initial when
    /// reduction is disabled).
    pub traverse_edges_final: usize,
    /// Links added by the strong-connectivity augmentation (TGI).
    pub augmentation_links: usize,
    /// Reference-point density ρ (points/km²) the hybrid switch saw.
    pub density: f64,
}

/// A local route with no scoring attached (scoring happens globally).
pub type LocalRoute = Route;

/// The outcome of local inference for one query pair.
#[derive(Debug, Clone)]
pub struct LocalInferenceResult {
    /// Candidate local routes `ℛ_i` (deduplicated).
    pub routes: Vec<LocalRoute>,
    /// Which references travel on which road segment (for scoring).
    pub edge_index: RefEdgeIndex,
    /// The reference set this inference consumed.
    pub refs: ReferenceSet,
    /// Instrumentation.
    pub stats: LocalStats,
}

/// Maps road segments to the references traversing them.
///
/// A reference *travels by* segment `r` when `r` is a candidate edge of one
/// of its points (Definition 9). This index is built once per pair and
/// drives both the traverse graph and the popularity function.
#[derive(Debug, Clone, Default)]
pub struct RefEdgeIndex {
    /// Segment → indices (into `ReferenceSet::refs`) of covering references.
    pub edge_refs: HashMap<SegmentId, HashSet<usize>>,
}

impl RefEdgeIndex {
    /// Builds the index by looking up candidate edges of every reference
    /// point within `eps` metres.
    #[must_use]
    pub fn build(net: &RoadNetwork, refs: &ReferenceSet, eps: f64) -> Self {
        let mut edge_refs: HashMap<SegmentId, HashSet<usize>> = HashMap::new();
        for (ri, r) in refs.refs.iter().enumerate() {
            for p in &r.points {
                for cand in net.candidate_edges(p.pos, eps) {
                    edge_refs.entry(cand.segment).or_default().insert(ri);
                }
            }
        }
        RefEdgeIndex { edge_refs }
    }

    /// References covering segment `r` (`C_i(r)`), empty set when none.
    #[must_use]
    pub fn refs_on(&self, seg: SegmentId) -> Option<&HashSet<usize>> {
        self.edge_refs.get(&seg)
    }

    /// Union of references covering any segment of `route` (`C_i(R)`).
    #[must_use]
    pub fn refs_on_route(&self, route: &Route) -> HashSet<usize> {
        let mut out = HashSet::new();
        for seg in route.segments() {
            if let Some(s) = self.edge_refs.get(seg) {
                out.extend(s.iter().copied());
            }
        }
        out
    }

    /// All traversed segments (the traverse-edge set `TE`).
    #[must_use]
    pub fn traverse_edges(&self) -> Vec<SegmentId> {
        let mut v: Vec<SegmentId> = self.edge_refs.keys().copied().collect();
        v.sort_unstable(); // determinism across HashMap orderings
        v
    }
}

/// Local-route popularity `f(R)` — Equation 1 with a normalised entropy.
///
/// The paper's raw entropy `Σ −x(r)·log x(r)` grows like `ln m` with the
/// number of covered segments `m`, so comparing routes of different lengths
/// systematically favours the longest one (harmless in the paper, where all
/// candidates of a pair are near-direct; decisive at our denser enumeration
/// scale — see DESIGN.md). We therefore use the *evenness* `entropy / ln m`
/// (∈ [0, 1], the paper's "uniformness of the distribution" reading, made
/// scale-free):
///
/// `f(R) = support(R) · (evenness + floor)`, where `support` is the mean
/// per-segment reference count `Σ_r |C_i(r)| / |R|` — again the scale-free
/// counterpart of the paper's `|⋃_r C_i(r)|`, which (like the raw entropy)
/// grows monotonically as segments are appended.
///
/// Reference support still dominates; evenness still prefers sustained
/// coverage over a single busy intersection (Figure 6); segments that no
/// reference travels drag the mean down, so routes straying off the
/// historical corridors lose; the floor keeps single-segment routes
/// (evenness defined as 1) and fully-concentrated distributions rankable.
///
/// This is the scoring kernel shared by route selection here and by the
/// global score in [`crate::global`].
#[must_use]
pub fn route_popularity(route: &Route, idx: &RefEdgeIndex, entropy_floor: f64) -> f64 {
    route_popularity_with(
        route,
        idx,
        entropy_floor,
        crate::params::PopularityModel::ScaleFree,
    )
}

/// [`route_popularity`] with an explicit [`PopularityModel`] — the ablation
/// entry point (`PaperLiteral` evaluates Equation 1 verbatim).
///
/// [`PopularityModel`]: crate::params::PopularityModel
#[must_use]
pub fn route_popularity_with(
    route: &Route,
    idx: &RefEdgeIndex,
    entropy_floor: f64,
    model: crate::params::PopularityModel,
) -> f64 {
    let union = idx.refs_on_route(route);
    if union.is_empty() {
        return 0.0;
    }
    let covered: Vec<usize> = route
        .segments()
        .iter()
        .map(|s| idx.refs_on(*s).map_or(0, HashSet::len))
        .filter(|&c| c > 0)
        .collect();
    let total: usize = covered.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut entropy = 0.0;
    for &c in &covered {
        let x = c as f64 / total as f64;
        entropy -= x * x.ln();
    }
    match model {
        crate::params::PopularityModel::PaperLiteral => {
            // Equation 1 verbatim (floor still applied so single-segment
            // routes stay rankable in the multiplicative global score).
            union.len() as f64 * (entropy + entropy_floor)
        }
        crate::params::PopularityModel::ScaleFree => {
            let evenness = if covered.len() < 2 {
                1.0
            } else {
                entropy / (covered.len() as f64).ln()
            };
            let support = total as f64 / route.len() as f64;
            support * (evenness + entropy_floor)
        }
    }
}

/// Runs local inference for one pair, dispatching per
/// [`HrisParams::local_algorithm`] (the hybrid uses the reference-point
/// density and `τ`, Section III-B.3).
#[must_use]
pub fn infer_local_routes(
    net: &RoadNetwork,
    refs: ReferenceSet,
    qi_cands: &[CandidateEdge],
    qj_cands: &[CandidateEdge],
    params: &HrisParams,
) -> LocalInferenceResult {
    let edge_index = RefEdgeIndex::build(net, &refs, params.candidate_eps_m);
    let density = refs.density_per_km2();

    let use_tgi = match params.local_algorithm {
        LocalAlgorithm::Tgi => true,
        LocalAlgorithm::Nni => false,
        LocalAlgorithm::Hybrid => match params.hybrid_polarity {
            // Figure 10: TGI overtakes NNI once density exceeds τ.
            HybridPolarity::Fig10 => density >= params.tau_per_km2,
            HybridPolarity::PaperText => density < params.tau_per_km2,
        },
    };

    let (mut routes, mut stats) = if use_tgi {
        tgi::tgi(net, &edge_index, qi_cands, qj_cands, params)
    } else {
        nni::nni(net, &refs, qi_cands, qj_cands, params)
    };
    stats.density = density;

    // The plain shortest-path routes between the endpoint candidates are
    // always candidates too — the "null hypothesis" the history must beat.
    // They also anchor the detour-plausibility bound.
    let mut sp_len = f64::INFINITY;
    for a in qi_cands.iter().take(2) {
        for b in qj_cands.iter().take(2) {
            if let Some(sp) = hris_roadnet::shortest::route_between_segments(
                net,
                a.segment,
                b.segment,
                hris_roadnet::CostModel::Distance,
            ) {
                sp_len = sp_len.min(sp.length(net));
                routes.push(sp);
            }
        }
    }

    // Deduplicate (after loop excision — graph projection can bridge via
    // backtracking), then keep the `max_local_routes` most *popular*
    // candidates — K-GRI ranks by popularity anyway, so the cap must not
    // discard the routes the history supports best.
    let routes = routes.into_iter().map(|r| r.without_loops(net)).collect();
    let mut routes = dedup_routes(routes, net, usize::MAX);
    // Plausibility bound: drop candidates detouring far beyond the shortest
    // network path between the pair's candidate edges.
    if sp_len.is_finite() {
        let bound = sp_len * params.max_detour_ratio.max(1.0);
        routes.retain(|r| r.length(net) <= bound);
    }
    routes.sort_by(|a, b| {
        route_popularity_with(
            b,
            &edge_index,
            params.entropy_floor,
            params.popularity_model,
        )
        .total_cmp(&route_popularity_with(
            a,
            &edge_index,
            params.entropy_floor,
            params.popularity_model,
        ))
    });
    routes.truncate(params.max_local_routes.max(1));

    LocalInferenceResult {
        routes,
        edge_index,
        refs,
        stats,
    }
}

/// Deduplicates routes and keeps connected ones, capping the count.
#[must_use]
pub fn dedup_routes(routes: Vec<Route>, net: &RoadNetwork, cap: usize) -> Vec<Route> {
    let mut seen: HashSet<Vec<SegmentId>> = HashSet::new();
    let mut out = Vec::new();
    for r in routes {
        if r.is_empty() || !r.is_connected(net) {
            continue;
        }
        if seen.insert(r.segments().to_vec()) {
            out.push(r);
            if out.len() >= cap.max(1) {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{RefKind, RefTrajectory};
    use hris_geo::Point;
    use hris_roadnet::{generator, NetworkConfig};
    use hris_traj::{GpsPoint, TrajId};

    fn net() -> RoadNetwork {
        generator::generate(&NetworkConfig {
            jitter_frac: 0.0,
            curve_frac: 0.0,
            removal_frac: 0.0,
            oneway_frac: 0.0,
            ..NetworkConfig::small(1)
        })
    }

    /// A reference walking from x=a to x=b, zig-zagging between two rows so
    /// the point cloud has a two-dimensional bounding box (finite density).
    fn make_ref(net: &RoadNetwork, a: f64, b: f64, id: u32) -> RefTrajectory {
        let n = 8;
        let points = (0..n)
            .map(|k| {
                let x = a + (b - a) * k as f64 / (n - 1) as f64;
                let y = if k % 2 == 0 { 0.0 } else { 200.0 };
                // Place points on the nearest road to keep candidates rich.
                let snapped = net.nearest_segment(Point::new(x, y)).unwrap().closest;
                GpsPoint::new(snapped, k as f64 * 30.0)
            })
            .collect();
        RefTrajectory {
            kind: RefKind::Simple,
            sources: vec![TrajId(id)],
            points,
        }
    }

    #[test]
    fn edge_index_links_refs_to_segments() {
        let net = net();
        let refs = ReferenceSet {
            refs: vec![make_ref(&net, 0.0, 800.0, 0), make_ref(&net, 0.0, 800.0, 1)],
        };
        let idx = RefEdgeIndex::build(&net, &refs, 40.0);
        assert!(!idx.edge_refs.is_empty());
        // Segments near the corridor should carry both references.
        let covered_by_both = idx.edge_refs.values().filter(|s| s.len() == 2).count();
        assert!(covered_by_both > 0);
        // Union over any covered route equals {0, 1} somewhere.
        let te = idx.traverse_edges();
        assert!(!te.is_empty());
    }

    #[test]
    fn dedup_removes_duplicates_and_disconnected() {
        let net = net();
        let r = net.segments()[0].id;
        let s = net.next_segments(r)[0];
        let good = Route::new(vec![r, s]);
        let dup = Route::new(vec![r, s]);
        // A disconnected route: two random segments that don't touch.
        let far = net
            .segments()
            .iter()
            .find(|x| x.from != net.segment(r).to && x.id != r)
            .unwrap()
            .id;
        let bad = Route::new(vec![r, far]);
        let out = dedup_routes(vec![good.clone(), dup, bad, Route::empty()], &net, 10);
        assert_eq!(out, vec![good]);
    }

    #[test]
    fn dedup_caps_count() {
        let net = net();
        let routes: Vec<Route> = net
            .segments()
            .iter()
            .take(30)
            .map(|s| Route::new(vec![s.id]))
            .collect();
        assert_eq!(dedup_routes(routes, &net, 5).len(), 5);
    }

    #[test]
    fn hybrid_dispatch_uses_density() {
        let net = net();
        // Dense reference cloud → Fig10 polarity picks TGI.
        let refs = ReferenceSet {
            refs: (0..30).map(|i| make_ref(&net, 0.0, 600.0, i)).collect(),
        };
        let qi = net.candidate_edges(Point::new(0.0, 0.0), 80.0);
        let qj = net.candidate_edges(Point::new(600.0, 0.0), 80.0);
        let params = HrisParams {
            tau_per_km2: 1.0, // anything is "dense"
            ..HrisParams::default()
        };
        let res = infer_local_routes(&net, refs.clone(), &qi, &qj, &params);
        assert_eq!(res.stats.algorithm, "TGI");

        let params = HrisParams {
            tau_per_km2: f64::INFINITY, // nothing is dense
            ..HrisParams::default()
        };
        let res = infer_local_routes(&net, refs, &qi, &qj, &params);
        assert_eq!(res.stats.algorithm, "NNI");
    }
}
